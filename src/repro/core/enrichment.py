"""Content enrichment — relays adding keyword annotations in transit.

An honest relay that "knows more about the content" adds keywords drawn
from the message's ground-truth content that nobody annotated yet (the
soldier recognising a face the cloud API missed).  A malicious relay
adds keywords *not* describing the content, hoping destinations with
matching interests will pay tag incentives for them — the attack the
DRM exists to punish.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import ConfigurationError
from repro.messages.keywords import KeywordUniverse
from repro.messages.message import Message

__all__ = ["EnrichmentPolicy"]


@dataclass
class EnrichmentPolicy:
    """Decides which tags a relay adds to an in-transit message.

    Attributes:
        universe: Keyword pool (source of irrelevant tags).
        honest_probability: Chance an honest relay enriches a message it
            relays (users only sometimes have something to add).
        malicious_probability: Chance a malicious relay injects
            irrelevant tags into a message it relays.
        max_tags: Maximum tags added per enrichment act.
    """

    universe: KeywordUniverse
    honest_probability: float = 0.3
    malicious_probability: float = 0.8
    max_tags: int = 2

    def __post_init__(self) -> None:
        for name in ("honest_probability", "malicious_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        if self.max_tags < 1:
            raise ConfigurationError("max_tags must be >= 1")

    def honest_tags(
        self, message: Message, rng: np.random.Generator
    ) -> List[str]:
        """Truthful tags an honest relay would add (possibly none)."""
        if rng.random() >= self.honest_probability:
            return []
        unannotated = sorted(message.content - message.keywords)
        if not unannotated:
            return []
        count = min(int(rng.integers(1, self.max_tags + 1)), len(unannotated))
        picked = rng.choice(len(unannotated), size=count, replace=False)
        return [unannotated[i] for i in sorted(picked)]

    def malicious_tags(
        self, message: Message, rng: np.random.Generator
    ) -> List[str]:
        """Irrelevant tags a malicious relay injects (possibly none)."""
        if rng.random() >= self.malicious_probability:
            return []
        count = int(rng.integers(1, self.max_tags + 1))
        exclude = sorted(message.content | message.keywords)
        candidates = [k for k in self.universe.keywords if k not in set(exclude)]
        if not candidates:
            return []
        count = min(count, len(candidates))
        picked = rng.choice(len(candidates), size=count, replace=False)
        return [candidates[i] for i in sorted(picked)]

    def tags_for(
        self, message: Message, malicious: bool, rng: np.random.Generator
    ) -> List[str]:
        """Tags the relay adds, honest or malicious per its behaviour."""
        if malicious:
            return self.malicious_tags(message, rng)
        return self.honest_tags(message, rng)
