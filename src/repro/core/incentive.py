"""Incentive calculation (Paper I Section 3.2, Algorithm 3).

The promise a sender attaches when forwarding combines:

* **Software factors** — message size and quality (data-centric), the
  receiver's interest level ``P_v``, the sender's role ``R_u`` and the
  source-set priority ``P_s`` (user-centric)::

      if P_v == 0 and R_u < R_v and P_s == HIGH:  I_s = I_m
      elif P_v != 0:
          I_s = (1/4 * (S/S_m + Q/Q_m) + 1/2 * (P_v / (R_u * P_s))) * I_m

  (The thesis writes ``P_u`` in the denominator but its symbol table
  only defines ``P_s``; we use ``P_s`` — see DESIGN.md.)

* **Hardware factors** — Friis-equation energy: a source delivering
  directly earns ``c * P_t * t``; a relay earns ``c * (P_t + P_r) * t``
  because it both received and retransmitted the message.

* **Tag incentives** — ``I_t = min(sum_k z * I_m, I_c)`` for the added
  tags a destination actually pays for.

The total promise is capped at the maximum incentive:
``I = min(I_s + I_h, I_m)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.messages.message import Priority

__all__ = [
    "IncentiveParams",
    "software_incentive",
    "hardware_incentive",
    "tag_incentive",
    "total_promise",
]


@dataclass(frozen=True)
class IncentiveParams:
    """All tunables of the incentive mechanism.

    Attributes:
        max_incentive: ``I_m`` — the per-message incentive ceiling.
        hardware_constant: ``c`` — tokens per joule-equivalent in the
            hardware term.
        tag_fraction: ``z`` in (0, 1) — per-tag reward as a fraction of
            ``I_m``.
        tag_cap: ``I_c`` — ceiling on the total added-tag reward.
        relay_threshold: Average tag weight above which a receiving
            relay pre-pays (Table 5.1: 0.8).
        relay_prepay_fraction: Fraction of the promise the receiving
            relay pays up front (DESIGN.md: default 0.2).
        alpha: DRM own-observation weight (must exceed 0.5).
        max_rating: ``r_m`` — the rating scale ceiling (paper: 5).
        default_rating: Rating assumed for nodes never rated yet.
        initial_tokens: Endowment per node (Table 5.1: 200).
    """

    max_incentive: float = 10.0
    hardware_constant: float = 0.5
    tag_fraction: float = 0.1
    tag_cap: float = 3.0
    relay_threshold: float = 0.8
    relay_prepay_fraction: float = 0.2
    alpha: float = 0.7
    max_rating: float = 5.0
    default_rating: float = 3.0
    initial_tokens: float = 200.0

    def __post_init__(self) -> None:
        if self.max_incentive <= 0:
            raise ConfigurationError("max_incentive must be > 0")
        if self.hardware_constant < 0:
            raise ConfigurationError("hardware_constant must be >= 0")
        if not 0.0 < self.tag_fraction < 1.0:
            raise ConfigurationError("tag_fraction z must satisfy 0 < z < 1")
        if self.tag_cap < 0:
            raise ConfigurationError("tag_cap must be >= 0")
        if not 0.0 <= self.relay_threshold <= 1.0:
            raise ConfigurationError("relay_threshold must be in [0, 1]")
        if not 0.0 <= self.relay_prepay_fraction <= 1.0:
            raise ConfigurationError(
                "relay_prepay_fraction must be in [0, 1]"
            )
        if not 0.5 < self.alpha <= 1.0:
            raise ConfigurationError(
                "alpha must be in (0.5, 1] — the paper requires alpha > 0.5"
            )
        if self.max_rating <= 0:
            raise ConfigurationError("max_rating must be > 0")
        if not 0.0 <= self.default_rating <= self.max_rating:
            raise ConfigurationError(
                "default_rating must be within [0, max_rating]"
            )
        if self.initial_tokens < 0:
            raise ConfigurationError("initial_tokens must be >= 0")


def software_incentive(
    params: IncentiveParams,
    *,
    sender_role: int,
    receiver_role: int,
    priority: Priority,
    interest_ratio: float,
    size: int,
    max_size: int,
    quality: float,
    max_quality: float,
) -> float:
    """``I_s`` from Algorithm 3.

    Args:
        params: Mechanism tunables (supplies ``I_m``).
        sender_role: ``R_u`` — sender's hierarchy rank (1 = top).
        receiver_role: ``R_v`` — receiver's rank.
        priority: ``P_s`` — source-set priority of the message.
        interest_ratio: ``P_v`` — the receiver's interest-weight sum for
            the message over the maximum such sum among the sender's
            currently connected devices, in [0, 1].
        size: ``S`` — message size in bytes.
        max_size: ``S_m`` — largest message size at the sender (>= size).
        quality: ``Q`` — message quality.
        max_quality: ``Q_m`` — highest quality among the sender's
            messages (>= quality, > 0).

    Returns:
        The software-factor promise, in ``[0, I_m]``.
    """
    if sender_role < 1 or receiver_role < 1:
        raise ConfigurationError("roles must be >= 1")
    if not 0.0 <= interest_ratio <= 1.0 + 1e-9:
        raise ConfigurationError(
            f"interest_ratio P_v must be in [0, 1], got {interest_ratio!r}"
        )
    if size <= 0 or max_size < size:
        raise ConfigurationError(
            f"need 0 < size <= max_size, got size={size}, max_size={max_size}"
        )
    if quality < 0 or max_quality <= 0 or quality > max_quality + 1e-9:
        raise ConfigurationError(
            f"need 0 <= quality <= max_quality, got quality={quality!r}, "
            f"max_quality={max_quality!r}"
        )
    if interest_ratio <= 1e-9:
        # The receiver cannot deliver right now; promise the maximum only
        # when a senior user pushes a high-priority message through it.
        # The threshold matches the validator's slop above: a P_v within
        # rounding noise of zero (e.g. 1e-12 from a float division) is
        # "no interest", not an epsilon-sized user term.
        if sender_role < receiver_role and priority is Priority.HIGH:
            return params.max_incentive
        return 0.0
    data_term = 0.25 * (size / max_size + quality / max_quality)
    user_term = 0.5 * (
        min(interest_ratio, 1.0) / (sender_role * int(priority))
    )
    return (data_term + user_term) * params.max_incentive


def hardware_incentive(
    params: IncentiveParams,
    *,
    transmit_power: float,
    received_power: float,
    transfer_time: float,
    is_relay: bool,
) -> float:
    """``I_h`` — the energy compensation term.

    A source delivering its own message is compensated for transmission
    only (``c * P_t * t``); a relay is also compensated for the power it
    spent receiving the message (``c * (P_t + P_r) * t``).
    """
    if transmit_power < 0 or received_power < 0:
        raise ConfigurationError("powers must be >= 0")
    if transfer_time < 0:
        raise ConfigurationError("transfer_time must be >= 0")
    power = transmit_power + (received_power if is_relay else 0.0)
    return params.hardware_constant * power * transfer_time


def tag_incentive(params: IncentiveParams, relevant_tags: int) -> float:
    """``I_t = min(sum_k z * I_m, I_c)`` for ``relevant_tags`` paid tags."""
    if relevant_tags < 0:
        raise ConfigurationError(
            f"relevant_tags must be >= 0, got {relevant_tags}"
        )
    raw = relevant_tags * params.tag_fraction * params.max_incentive
    return min(raw, params.tag_cap)


def total_promise(
    params: IncentiveParams, software: float, hardware: float
) -> float:
    """``I = min(I_s + I_h, I_m)``."""
    if software < 0 or hardware < 0:
        raise ConfigurationError("incentive terms must be >= 0")
    return min(software + hardware, params.max_incentive)
