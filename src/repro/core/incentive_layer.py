"""The incentive mechanism as a composable layer over any router.

The paper's credit + reputation + enrichment machinery is conceptually
a *layer* above a routing substrate: the substrate decides who is a
destination, which relays are worth using and in what order to offer
messages; the layer prices every offer, settles awards before
transfers, escrows in-flight payments and runs the Distributed
Reputation Model.  :class:`IncentiveLayer` implements exactly that
split — it wraps any :class:`~repro.routing.base.Router` through the
substrate hook contract (``prepare_contact`` / ``select_messages`` /
``classify`` / ``wants_as_relay`` / ``relay_affinity`` /
``relay_trust`` / custody hooks; see ``repro/routing/base.py``), so the
same mechanism composes over ChitChat (the paper's scheme,
:class:`~repro.core.protocol.IncentiveChitChatRouter`), epidemic
flooding, PRoPHET or Spray-and-Wait.

The substrate is bound to a :class:`RoutingContext` proxy whose
``send_message`` routes through the layer's payment pipeline, so even
substrate-initiated sends (ChitChat's retransmission path) cannot
bypass escrow and prepayment.

Payment flow (Paper I Section 3.3, unchanged from the inheritance-era
implementation):

1. On contact the substrate's per-encounter state updates run, stale
   escrow is reclaimed, and the two reputation books gossip.
2. The substrate's selected offers are re-ordered destinations-first,
   then by priority and quality.
3. Destination awards settle (escrow) *before* the transfer; a
   destination that cannot pay does not receive.
4. Relays above the relay-trust threshold pre-pay a fraction of the
   promise; others carry the promise for free.
5. Escrow is captured when the transfer lands, released when it aborts,
   and drained by :meth:`IncentiveLayer.finalize` at the end of a run.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.core.enrichment import EnrichmentPolicy
from repro.core.incentive import (
    IncentiveParams,
    hardware_incentive,
    software_incentive,
    tag_incentive,
    total_promise,
)
from repro.core.ledger import TokenLedger
from repro.core.reputation import RatingModel, ReputationSystem
from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.network.node import Node
from repro.routing.base import Router, RoutingContext
from repro.trace.recorder import NULL_RECORDER

__all__ = ["IncentiveLayer"]


class _SubstrateContext:
    """The world as seen by a wrapped substrate.

    Transparent except for ``send_message``, which routes through the
    incentive layer's payment pipeline — a substrate cannot queue a
    copy without the layer pricing it first.
    """

    __slots__ = (
        "_layer", "_world",
        # Bound-method fast paths (set eagerly in __init__ when the
        # world provides them): the substrate touches these once or
        # more per contact, and at half a million contacts per
        # simulated hour the __getattr__ round trip is measurable.  An
        # unset slot raises AttributeError on access, which falls back
        # to __getattr__ — so worlds (test stubs) lacking one of these
        # still work.
        "active_links", "open_links", "node", "deliver", "accept_relay",
        "can_send",
    )

    _FAST_PATHS = (
        "active_links", "open_links", "node", "deliver", "accept_relay",
        "can_send",
    )

    def __init__(self, layer: "IncentiveLayer", world: RoutingContext):
        self._layer = layer
        self._world = world
        for name in self._FAST_PATHS:
            try:
                object.__setattr__(self, name, getattr(world, name))
            except AttributeError:
                pass

    @property
    def now(self) -> float:
        # A property, not a cached slot: the clock is dynamic.
        return self._world.now

    def send_message(
        self, link: Link, sender: int, message: Message
    ) -> Optional[Transfer]:
        return self._layer.offer_from_substrate(link, sender, message)

    def __getattr__(self, name: str):
        return getattr(self._world, name)


class IncentiveLayer(Router):
    """Credit incentives + enrichment + the DRM over any substrate.

    Args:
        substrate: The routing substrate being incentivised.  Its
            forwarding preferences drive message selection; the layer
            prices and settles every transfer.
        params: Incentive mechanism tunables.
        enrichment: Tag-addition policy; ``None`` disables enrichment
            (ablation configurations use this).
        rating_model: The stochastic human-rater stand-in.
        ledger: Token ledger; a fresh one is created when omitted.
        reputation: Reputation system; fresh when omitted.
        best_relay_only: Forward each message only to the strongest
            currently-connected relay (operator *DecideBestRelay*,
            ranked by the substrate's ``relay_affinity``).
        relay_rating_probability: Chance a relay rates a received
            message and attaches the rating to the copy.
        destination_rating_probability: Chance a destination rates the
            message's source and annotators after reception.
        collusion: When True, malicious raters give *perfect* ratings to
            fellow malicious nodes (collusive praise) instead of random
            noise — the attack model studied by the ablation benches.
        class_multipliers: Optional mapping of population-class name to
            a positive award factor; a deliverer's award is scaled by
            its class's factor (unknown classes pay 1.0).  ``None`` —
            the default, and the only value homogeneous schemes pass —
            skips the lookup entirely, so legacy awards stay
            bit-identical.
        escrow_timeout: Seconds after which an uncaptured escrow hold is
            reclaimable by its payer (see
            :meth:`~repro.core.ledger.TokenLedger.expire_holds`).  A
            safety valve against holds stranded by faults the abort
            path never saw; ``None`` (default) disables the timeout.
    """

    def __init__(
        self,
        substrate: Router,
        *,
        params: Optional[IncentiveParams] = None,
        enrichment: Optional[EnrichmentPolicy] = None,
        rating_model: Optional[RatingModel] = None,
        ledger: Optional[TokenLedger] = None,
        reputation: Optional[ReputationSystem] = None,
        best_relay_only: bool = True,
        relay_rating_probability: float = 0.5,
        destination_rating_probability: float = 1.0,
        collusion: bool = False,
        escrow_timeout: Optional[float] = None,
        class_multipliers: Optional[Mapping[str, float]] = None,
    ):
        super().__init__()
        if isinstance(substrate, IncentiveLayer):
            raise ConfigurationError(
                "cannot stack one IncentiveLayer over another"
            )
        self.substrate = substrate
        self.name = f"incentive-{substrate.name}"
        self.params = params if params is not None else IncentiveParams()
        self.enrichment = enrichment
        self.rating_model = (
            rating_model if rating_model is not None
            else RatingModel(self.params)
        )
        self.ledger = ledger if ledger is not None else TokenLedger()
        self.reputation = (
            reputation if reputation is not None
            else ReputationSystem(self.params)
        )
        self.best_relay_only = bool(best_relay_only)
        for name, value in (
            ("relay_rating_probability", relay_rating_probability),
            ("destination_rating_probability", destination_rating_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")
        self.relay_rating_probability = float(relay_rating_probability)
        self.destination_rating_probability = float(destination_rating_probability)
        self.collusion = bool(collusion)
        if escrow_timeout is not None and escrow_timeout <= 0:
            raise ConfigurationError(
                f"escrow_timeout must be > 0 or None, got {escrow_timeout!r}"
            )
        self.escrow_timeout = escrow_timeout
        if class_multipliers is not None:
            for cls_name, factor in class_multipliers.items():
                if not factor > 0:
                    raise ConfigurationError(
                        f"class_multipliers[{cls_name!r}] must be > 0, "
                        f"got {factor!r}"
                    )
            class_multipliers = {
                str(k): float(v) for k, v in class_multipliers.items()
            }
        self.class_multipliers = class_multipliers

        # Promise a holder expects to collect at a destination:
        # (holder_id, uuid) -> tokens.
        self._promises: Dict[Tuple[int, str], float] = {}
        # Promise riding on an in-flight transfer: id(transfer) -> tokens.
        self._transfer_promises: Dict[int, float] = {}
        # Escrowed payments per in-flight transfer:
        # id(transfer) -> (hold_id, payee, amount, settlement_key).
        self._pending_payments: Dict[
            int, Tuple[int, int, float, str]
        ] = {}
        # Gossip merges already performed or planned by the tick
        # batcher: (a, b) -> (merged_a, merged_b, deferred) where
        # deferred is None for round-zero pairs (books written at batch
        # time) or the book-array assignments a later planned round
        # applies at the pair's sequential exchange point (where the
        # trace record is emitted either way).  Cleared at the start of
        # every batch; entries never outlive the contact-up engine
        # event that created them.
        self._pregossiped: Dict[
            Tuple[int, int], Tuple[int, int, Optional[tuple]]
        ] = {}
        self._trace = NULL_RECORDER

    def __getattr__(self, name: str):
        # Reached only for attributes not found on the layer itself:
        # delegate to the substrate so its protocol surface (ChitChat
        # interest tables, PRoPHET predictabilities, spray copy counts)
        # stays reachable on the composed router.
        try:
            substrate = object.__getattribute__(self, "substrate")
        except AttributeError:
            raise AttributeError(name) from None
        return getattr(substrate, name)

    def bind(self, world: RoutingContext) -> None:
        super().bind(world)
        self.substrate.bind(_SubstrateContext(self, world))
        # Fake worlds in unit tests may not carry a recorder.
        trace = getattr(world, "trace", None)
        self._trace = trace if trace is not None else NULL_RECORDER
        self.ledger.trace = self._trace
        self.reputation.attach_trace(self._trace, lambda: self.world.now)

    # ------------------------------------------------------------------
    # Substrate delegation
    # ------------------------------------------------------------------
    @property
    def destinations_also_relay(self) -> bool:
        """Whether the substrate re-buffers delivered messages."""
        return self.substrate.destinations_also_relay

    def classify(self, receiver_id: int, message: Message) -> str:
        """The substrate's *DecideDestOrRelay*."""
        return self.substrate.classify(receiver_id, message)

    def wants_as_relay(
        self, sender_id: int, receiver_id: int, message: Message
    ) -> bool:
        """The substrate's forwarding rule."""
        return self.substrate.wants_as_relay(sender_id, receiver_id, message)

    def relay_affinity(self, node_id: int, message: Message) -> float:
        """The substrate's relay preference signal."""
        return self.substrate.relay_affinity(node_id, message)

    def relay_trust(self, receiver_id: int, message: Message) -> float:
        """The substrate's prepay-confidence signal."""
        return self.substrate.relay_trust(receiver_id, message)

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------
    def ensure_account(self, node_id: int) -> None:
        """Open the node's token account lazily with the endowment."""
        if not self.ledger.has_account(node_id):
            now = self._world.now if self._world is not None else 0.0
            self.ledger.open_account(
                node_id, self.params.initial_tokens, time=now
            )

    def balance(self, node_id: int) -> float:
        """Current token balance of ``node_id``."""
        self.ensure_account(node_id)
        return self.ledger.balance(node_id)

    def _rng(self) -> np.random.Generator:
        return self.world.streams.get("incentive")

    def promise_held(self, node_id: int, uuid: str) -> float:
        """The promise ``node_id`` carries for message ``uuid``."""
        return self._promises.get((node_id, uuid), 0.0)

    # ------------------------------------------------------------------
    # Incentive computation (operator *ComputeIncentive*)
    # ------------------------------------------------------------------
    def compute_promise(
        self,
        sender: Node,
        receiver: Node,
        message: Message,
        link: Link,
        *,
        deliverer_is_relay: bool,
    ) -> float:
        """``I = min(I_s + I_h, I_m)`` for forwarding over ``link``.

        ``deliverer_is_relay`` selects the hardware compensation case:
        a relay is also paid for the power it spent receiving the copy.
        The interest ratio compares the receiver's relay affinity (the
        substrate's preference signal) against the best affinity among
        the sender's currently-connected peers.
        """
        # Memoised maxima instead of a full-buffer scan per promise;
        # the empty-buffer floor (0, 0.0) collapses to the message's
        # own size/quality exactly as the old ``or [message]`` did.
        buffered_size, buffered_quality = sender.buffer.size_quality_maxima()
        max_size = max(buffered_size, message.size)
        max_quality = max(buffered_quality, message.quality)
        if max_quality <= 0.0:
            max_quality = 1.0

        receiver_sum = self.substrate.relay_affinity(
            receiver.node_id, message
        )
        best_sum = receiver_sum
        relay_affinity = self.substrate.relay_affinity
        sender_id = sender.node_id
        # Zero-copy open-link view: affinity reads touch nothing that
        # could mutate the link set.
        for other_link in self.world.open_links(sender_id):
            peer_id = (
                other_link.b if other_link.a == sender_id else other_link.a
            )
            best_sum = max(best_sum, relay_affinity(peer_id, message))
        interest_ratio = receiver_sum / best_sum if best_sum > 0 else 0.0

        i_s = software_incentive(
            self.params,
            sender_role=sender.role,
            receiver_role=receiver.role,
            priority=message.priority,
            interest_ratio=interest_ratio,
            size=message.size,
            max_size=max_size,
            quality=message.quality,
            max_quality=max_quality,
        )
        energy = self.world.energy
        i_h = hardware_incentive(
            self.params,
            transmit_power=energy.transmit_power,
            received_power=energy.received_power(link.distance),
            transfer_time=link.transfer_time(message),
            is_relay=deliverer_is_relay,
        )
        return total_promise(self.params, i_s, i_h)

    def compute_award(
        self, deliverer: Node, destination: Node, message: Message, link: Link
    ) -> float:
        """``I_v`` — what ``destination`` owes ``deliverer`` on delivery.

        The base is the promise the deliverer carries (computed fresh
        when it is the source), plus tag incentives for the deliverer's
        added tags matching the destination's direct interests, scaled
        by the DRM multiplier.
        """
        promise = self._promises.get((deliverer.node_id, message.uuid))
        if promise is None:
            promise = self.compute_promise(
                deliverer, destination, message, link,
                deliverer_is_relay=message.source != deliverer.node_id,
            )
        added_by_deliverer = {
            a.keyword for a in message.annotations_by(deliverer.node_id)
            if deliverer.node_id != message.source
        }
        paid_tags = len(added_by_deliverer & destination.interests)
        i_t = tag_incentive(self.params, paid_tags)
        multiplier = self.reputation.book(destination.node_id).award_multiplier(
            deliverer.node_id, message.path_ratings.values()
        )
        award = multiplier * (promise + i_t)
        if self.class_multipliers is not None:
            award *= self.class_multipliers.get(
                self.node_class(deliverer.node_id), 1.0
            )
        return award

    # ------------------------------------------------------------------
    # Exchange
    # ------------------------------------------------------------------
    def select_messages(self, sender_id, receiver_id):
        """The substrate's selection, re-ordered by priority then quality.

        The paper's experiment F: "our approach prioritizes messages
        based on the quality as well as the assigned priority" — under
        short contacts the ordering decides which messages make it
        across, so the incentive scheme pushes HIGH priority (and higher
        quality) messages to the front of the transfer queue.
        """
        selected = self.substrate.select_messages(sender_id, receiver_id)
        if not selected:
            return selected
        return sorted(
            selected,
            key=lambda pair: (
                pair[1] != "destination",      # destinations first
                int(pair[0].priority),         # HIGH(1) before LOW(3)
                -pair[0].quality,
            ),
        )

    def _exchange(self, link: Link) -> None:
        self._expire_stale_holds()
        # RTSR+DR module: reputations travel with the interest exchange.
        # A pair the tick batcher merged in round zero (books already
        # written) only emits its deferred trace record here; a pair
        # from a later planned round additionally applies its deferred
        # book-array assignments now — its sequential exchange point —
        # so every interleaved read sees the book step through exactly
        # the per-pair states.  Unbatched pairs gossip as before.
        pregossiped = self._pregossiped.pop((link.a, link.b), None)
        if pregossiped is not None:
            merged_a, merged_b, deferred = pregossiped
            if deferred is not None:
                book_a, subj_a, val_a, book_b, subj_b, val_b = deferred
                book_a._subjects = subj_a
                book_a._values = val_a
                book_b._subjects = subj_b
                book_b._values = val_b
            self.reputation.record_gossip(link.a, link.b, merged_a, merged_b)
        else:
            self.reputation.exchange(link.a, link.b)
        for sender_id in link.pair:
            receiver_id = link.peer_of(sender_id)
            for message, role in self.select_messages(sender_id, receiver_id):
                self._offer(link, sender_id, receiver_id, message, role)

    def _hold_expiry(self) -> Optional[float]:
        if self.escrow_timeout is None:
            return None
        return self.world.now + self.escrow_timeout

    def _expire_stale_holds(self) -> None:
        """Reclaim escrow whose timeout lapsed (fault safety valve)."""
        if self.escrow_timeout is None:
            return
        reclaimed = self.ledger.expire_holds(self.world.now)
        if reclaimed > 0:
            self.world.metrics.on_escrow_reclaimed(reclaimed)

    def _offer(
        self,
        link: Link,
        sender_id: int,
        receiver_id: int,
        message: Message,
        role: str,
    ) -> Optional[Transfer]:
        sender = self.world.node(sender_id)
        receiver = self.world.node(receiver_id)
        self.ensure_account(sender_id)
        self.ensure_account(receiver_id)
        if not self.world.can_send(link, sender_id, message):
            return None
        if role == "destination":
            return self._offer_to_destination(link, sender, receiver, message)
        return self._offer_to_relay(link, sender, receiver, message)

    def _offer_to_destination(
        self, link: Link, sender: Node, receiver: Node, message: Message
    ) -> Optional[Transfer]:
        """Settle the award, then transfer (Section 3.3 data flow)."""
        award = self.compute_award(sender, receiver, message, link)
        if not self.ledger.can_pay(receiver.node_id, award):
            self.world.metrics.on_blocked_no_tokens()
            if self._trace.enabled:
                self._trace.emit({
                    "type": "offer-declined", "t": self.world.now,
                    "uuid": message.uuid, "sender": sender.node_id,
                    "receiver": receiver.node_id, "role": "destination",
                    "reason": "no-tokens",
                })
            return None
        transfer = self.world.send_message(link, sender.node_id, message)
        if transfer is None:  # pragma: no cover - guarded by can_send
            return None
        if self._trace.enabled:
            self._trace.emit({
                "type": "offer", "t": self.world.now, "uuid": message.uuid,
                "sender": sender.node_id, "receiver": receiver.node_id,
                "role": "destination", "award": award,
            })
        if award > 0:
            hold = self.ledger.escrow(
                receiver.node_id, award,
                time=self.world.now, reason="delivery-award",
                expires_at=self._hold_expiry(),
            )
            self._pending_payments[id(transfer)] = (
                hold, sender.node_id, award,
                f"award:{message.uuid}:{receiver.node_id}",
            )
        self.substrate.on_copy_sent(
            transfer, sender.node_id, message, "destination"
        )
        return transfer

    def _offer_to_relay(
        self, link: Link, sender: Node, receiver: Node, message: Message
    ) -> Optional[Transfer]:
        """Forward to a relay, pre-paying above the relay threshold."""
        if self.best_relay_only and not self._is_best_relay(
            sender.node_id, receiver.node_id, message
        ):
            if self._trace.enabled:
                self._trace.emit({
                    "type": "offer-declined", "t": self.world.now,
                    "uuid": message.uuid, "sender": sender.node_id,
                    "receiver": receiver.node_id, "role": "relay",
                    "reason": "not-best-relay",
                })
            return None
        promise = self.compute_promise(
            sender, receiver, message, link, deliverer_is_relay=True
        )
        trust = self.substrate.relay_trust(receiver.node_id, message)
        prepay = 0.0
        if trust > self.params.relay_threshold:
            prepay = self.params.relay_prepay_fraction * promise
            if not self.ledger.can_pay(receiver.node_id, prepay):
                self.world.metrics.on_blocked_no_tokens()
                if self._trace.enabled:
                    self._trace.emit({
                        "type": "offer-declined", "t": self.world.now,
                        "uuid": message.uuid, "sender": sender.node_id,
                        "receiver": receiver.node_id, "role": "relay",
                        "reason": "no-tokens",
                    })
                return None
        transfer = self.world.send_message(link, sender.node_id, message)
        if transfer is None:  # pragma: no cover - guarded by can_send
            return None
        if self._trace.enabled:
            self._trace.emit({
                "type": "offer", "t": self.world.now, "uuid": message.uuid,
                "sender": sender.node_id, "receiver": receiver.node_id,
                "role": "relay", "promise": promise, "prepay": prepay,
            })
        self._transfer_promises[id(transfer)] = promise
        if prepay > 0:
            hold = self.ledger.escrow(
                receiver.node_id, prepay,
                time=self.world.now, reason="relay-prepay",
                expires_at=self._hold_expiry(),
            )
            self._pending_payments[id(transfer)] = (
                hold, sender.node_id, prepay,
                f"prepay:{message.uuid}:{receiver.node_id}",
            )
        self.substrate.on_copy_sent(
            transfer, sender.node_id, message, "relay"
        )
        return transfer

    def _is_best_relay(
        self, sender_id: int, candidate_id: int, message: Message
    ) -> bool:
        """Operator *DecideBestRelay*: is the candidate the strongest
        currently-connected relay for this message?"""
        candidate_sum = self.substrate.relay_affinity(candidate_id, message)
        world = self.world
        node = world.node
        relay_affinity = self.substrate.relay_affinity
        uuid = message.uuid
        for link in world.open_links(sender_id):
            peer_id = link.b if link.a == sender_id else link.a
            if peer_id == candidate_id:
                continue
            if node(peer_id).has_seen(uuid):
                continue
            if relay_affinity(peer_id, message) > candidate_sum:
                return False
        return True

    # ------------------------------------------------------------------
    # World hooks (layer first, then the substrate's custody hooks)
    # ------------------------------------------------------------------
    def on_message_created(self, node_id: int, message: Message) -> None:
        self.substrate.on_message_created(node_id, message)

    def on_contact_start(self, link: Link) -> None:
        self.substrate.prepare_contact(link)
        self._exchange(link)

    def on_contact_end(self, link: Link) -> None:
        self.substrate.on_contact_end(link)

    # Batched contact hooks: the layer batches its own gossip exchange
    # across the tick's safe pairs, then hands the batch to the
    # substrate for the decay phase (offers still run per pair from
    # on_contact_start, through the payment pipeline unchanged).
    @property
    def supports_contact_batching(self) -> bool:
        return self.substrate.supports_contact_batching

    def prepare_contact_batch(self, pairs) -> None:
        # Gossip for the whole tick runs as grouped rounds.  Round-zero
        # pairs (both endpoints' first appearance of the tick) are
        # merged into the books immediately: no earlier pair's exchange
        # can have touched either book (book writes inside a contact-up
        # event come only from gossip; ratings settle with transfers at
        # strictly later events), and no earlier pair's offers read
        # them (compute_award only reads the offer receiver's book —
        # a member of that earlier pair).  Later rounds are planned on
        # scratch state and applied as deferred array assignments at
        # each pair's sequential exchange point in _exchange, so the
        # mid-tick book reads between exchanges see exactly the
        # sequential states.
        self._pregossiped.clear()
        # Alternative reputation systems (Bayesian) have no batched
        # exchange; their pairs all take the sequential path.
        batch_rounds = getattr(self.reputation, "exchange_batch_rounds", None)
        if pairs and batch_rounds is not None:
            for a, b, merged_a, merged_b, deferred in batch_rounds(pairs):
                self._pregossiped[(a, b)] = (merged_a, merged_b, deferred)
        self.substrate.prepare_contact_batch(pairs)

    def contact_end_batch(self, links) -> None:
        self.substrate.contact_end_batch(links)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        pending = self._pending_payments.pop(id(transfer), None)
        if pending is not None:
            hold, payee, amount, settlement_key = pending
            # The hold may have timed out and been reclaimed by
            # expire_holds; the payee then goes unpaid for this (very
            # late) landing.  Checked explicitly so a genuinely broken
            # hold id raises instead of being swallowed.
            if self.ledger.hold_exists(hold):
                transaction = self.ledger.capture(
                    hold, payee,
                    time=self.world.now, settlement_key=settlement_key,
                )
                if transaction is not None:
                    self.world.metrics.on_payment(amount)
        promise = self._transfer_promises.pop(id(transfer), 0.0)
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        self.ensure_account(receiver.node_id)
        role = self.classify(receiver.node_id, message)
        rng = self._rng()

        if role == "destination":
            delivered = self.world.deliver(receiver, message)
            if delivered and rng.random() < self.destination_rating_probability:
                self._rate_as_recipient(receiver, message, rng)
            accepted = False
            if self.destinations_also_relay:
                accepted = self.world.accept_relay(receiver, message)
                if accepted and promise > 0:
                    self._promises[(receiver.node_id, message.uuid)] = promise
            self.substrate.on_copy_received(
                transfer, receiver.node_id, message, "destination", accepted
            )
        else:
            accepted = self.world.accept_relay(receiver, message)
            self.substrate.on_copy_received(
                transfer, receiver.node_id, message, "relay", accepted
            )
            if not accepted:
                return
            # A zero promise is not stored: compute_award then derives a
            # fresh promise when this node later delivers (a destination
            # re-serving other destinations must still charge them).
            if promise > 0:
                self._promises[(receiver.node_id, message.uuid)] = promise
            self._enrich(receiver, message, rng)
            if rng.random() < self.relay_rating_probability:
                rating = self._rate_as_recipient(receiver, message, rng)
                if rating is not None:
                    message.attach_rating(receiver.node_id, rating)
        self._forward_onward(receiver.node_id, message)

    def _enrich(
        self, relay: Node, message: Message, rng: np.random.Generator
    ) -> None:
        """Operator *Enrich*: the relay may add tags to its copy."""
        if self.enrichment is None:
            return
        malicious = bool(
            relay.behavior is not None
            and getattr(relay.behavior, "malicious", False)
        )
        for keyword in self.enrichment.tags_for(message, malicious, rng):
            if message.annotate(keyword, relay.node_id, self.world.now):
                self.world.metrics.on_enrichment(
                    relevant=message.is_relevant(keyword)
                )
                if self._trace.enabled:
                    self._trace.emit({
                        "type": "enrichment", "t": self.world.now,
                        "uuid": message.uuid, "node": relay.node_id,
                        "keyword": keyword,
                        "relevant": message.is_relevant(keyword),
                    })

    def _is_malicious(self, node_id: int) -> bool:
        behavior = self.world.node(node_id).behavior
        return bool(behavior is not None
                    and getattr(behavior, "malicious", False))

    def _rate_as_recipient(
        self, recipient: Node, message: Message, rng: np.random.Generator
    ) -> Optional[float]:
        """Operators *RateMessage* / *RateNode* on reception.

        Returns:
            The overall message rating (to ride along with the copy), or
            ``None`` when the recipient skipped rating.
        """
        book = self.reputation.book(recipient.node_id)
        malicious_rater = bool(
            recipient.behavior is not None
            and getattr(recipient.behavior, "malicious", False)
        )
        if malicious_rater:
            if self.collusion and self._is_malicious(message.source):
                # Collusive praise: attackers vouch for each other.
                rating = self.params.max_rating
            else:
                # A malicious rater pollutes the DRM with random ratings.
                rating = float(rng.uniform(0.0, self.params.max_rating))
            if message.source != recipient.node_id:
                book.rate_message(message.source, rating)
            if self.collusion:
                for annotator in {
                    a.added_by for a in message.added_tags()
                    if a.added_by != recipient.node_id
                }:
                    if self._is_malicious(annotator):
                        book.rate_message(annotator, self.params.max_rating)
            return rating
        if message.source != recipient.node_id:
            source_rating = self.rating_model.rate_source(message, rng)
            book.rate_message(message.source, source_rating)
        else:
            source_rating = None
        annotators = {
            a.added_by for a in message.added_tags()
            if a.added_by != recipient.node_id
        }
        for annotator in sorted(annotators):
            rating = self.rating_model.rate_intermediate(
                message, annotator, rng
            )
            book.rate_message(annotator, rating)
        return source_rating

    def _forward_onward(self, holder_id: int, message: Message) -> None:
        """Incentive-aware re-offer on the holder's other active links.

        Iterates the world's zero-copy open-link view: offers only
        queue transfers (battery/link bookkeeping happens in transfer
        callbacks, not here), so nothing mutates the link set while we
        walk it — and this runs once per received copy, so the
        ``active_links`` list build it replaced was a real cost.
        """
        world = self.world
        holder = world.node(holder_id)
        uuid = message.uuid
        if uuid not in holder.buffer:
            return
        node = world.node
        classify = self.substrate.classify
        wants_as_relay = self.substrate.wants_as_relay
        offer = self._offer
        for link in world.open_links(holder_id):
            peer_id = link.b if link.a == holder_id else link.a
            if node(peer_id).has_seen(uuid):
                continue
            role = classify(peer_id, message)
            if role == "destination":
                offer(link, holder_id, peer_id, message, role)
            elif wants_as_relay(holder_id, peer_id, message):
                offer(link, holder_id, peer_id, message, "relay")

    # ------------------------------------------------------------------
    # Custody loss: promises die with the copy they rode on
    # ------------------------------------------------------------------
    def on_message_expired(self, node_id: int, message: Message) -> None:
        self._promises.pop((node_id, message.uuid), None)
        self.substrate.on_message_expired(node_id, message)

    def on_message_dropped(self, node_id: int, message: Message) -> None:
        self._promises.pop((node_id, message.uuid), None)
        self.substrate.on_message_dropped(node_id, message)

    def on_node_wiped(self, node_id: int) -> None:
        # The layer's own per-copy state (promises) already drained
        # through on_message_dropped while the world emptied the
        # buffer; accounts and reputation books survive a wipe by
        # design (they model the replicated ledger layer).  Only the
        # substrate's volatile protocol state remains to reset.
        self.substrate.on_node_wiped(node_id)

    # ------------------------------------------------------------------
    # Aborts: refund settled payments for transfers that never landed
    # ------------------------------------------------------------------
    def on_transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        self._transfer_promises.pop(id(transfer), None)
        pending = self._pending_payments.pop(id(transfer), None)
        if pending is not None:
            hold, _payee, _amount, _key = pending
            # A hold reclaimed by the escrow timeout was already
            # refunded; releasing it again would pay the payer twice.
            # The explicit existence check (rather than swallowing
            # LedgerError) also lets genuine double-release bugs raise.
            if self.ledger.hold_exists(hold):
                self.ledger.release(
                    hold, time=self.world.now, cause="abort"
                )
        # The substrate reclaims custody state (spray copies) and may
        # schedule a retransmission; a retry re-enters the payment
        # pipeline through the substrate context's send_message.
        self.substrate.on_transfer_aborted(transfer, link)

    def offer_from_substrate(
        self, link: Link, sender_id: int, message: Message
    ) -> Optional[Transfer]:
        """A substrate-initiated send, routed through the pipeline.

        ChitChat's retransmission path lands here via the substrate
        context: the prior attempt's escrow was released on abort, so
        the retry re-escrows under the *same* settlement key — if the
        payment meanwhile settled via another path, the idempotent
        capture refunds it instead of double-paying.
        """
        receiver_id = link.peer_of(sender_id)
        role = self.classify(receiver_id, message)
        return self._offer(link, sender_id, receiver_id, message, role)

    def _reoffer(
        self, link: Link, sender_id: int, receiver_id: int, message: Message
    ) -> Optional[Transfer]:
        """Retransmission runs the full payment pipeline again."""
        role = self.classify(receiver_id, message)
        return self._offer(link, sender_id, receiver_id, message, role)

    # ------------------------------------------------------------------
    # End of run: drain escrow so conservation is exact
    # ------------------------------------------------------------------
    def finalize(self, now: float) -> None:
        """Release every outstanding hold back to its payer.

        With no faults injected there is nothing left to release (every
        transfer completed or aborted and settled its own escrow), so
        this is a no-op for golden runs; under fault mixes it guarantees
        ``escrowed_total`` drains to exactly zero.
        """
        reclaimed = self.ledger.release_all(time=now)
        if reclaimed > 0:
            self.world.metrics.on_escrow_reclaimed(reclaimed)
        self._pending_payments.clear()
        self._transfer_promises.clear()
        self.substrate.finalize(now)
