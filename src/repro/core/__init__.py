"""The paper's contribution: credit + reputation incentive mechanism,
distributed reputation model, content enrichment, and the incentive-aware
ChitChat protocol that combines them."""

from repro.core.bayesian_reputation import BayesianReputationSystem
from repro.core.enrichment import EnrichmentPolicy
from repro.core.itrm import ItrmResult, RatingGraph, iterative_trust
from repro.core.incentive import (
    IncentiveParams,
    hardware_incentive,
    software_incentive,
    tag_incentive,
    total_promise,
)
from repro.core.incentive_layer import IncentiveLayer
from repro.core.ledger import TokenLedger, Transaction
from repro.core.operators import Operators
from repro.core.protocol import IncentiveChitChatRouter
from repro.core.reputation import RatingModel, ReputationBook, ReputationSystem

__all__ = [
    "TokenLedger",
    "Transaction",
    "IncentiveParams",
    "software_incentive",
    "hardware_incentive",
    "tag_incentive",
    "total_promise",
    "ReputationBook",
    "ReputationSystem",
    "RatingModel",
    "EnrichmentPolicy",
    "IncentiveChitChatRouter",
    "IncentiveLayer",
    "Operators",
    "BayesianReputationSystem",
    "RatingGraph",
    "ItrmResult",
    "iterative_trust",
]
