"""Iterative Trust and Reputation Management (ITRM) — Ayday & Fekri.

The thesis's related work [27] describes an iterative algorithm for
trust management and adversary detection "motivated by the prior success
of message passing techniques for decoding low-density parity-check
codes over bipartite graphs": service providers (rated nodes) on one
side, raters on the other, with edges weighted by ratings.  Each
iteration estimates every provider's quality as the *rater-weighted*
average of its ratings, then re-scores every rater by how consistent its
ratings are with those estimates; inconsistent raters (liars, colluders)
lose weight and their ratings stop mattering.

This implementation is a post-processing defence: feed it the raw
rating table a node (or an auditor) has accumulated and it returns
robust subject scores plus per-rater trustworthiness — the collusion
countermeasure benchmarked in ``benchmarks/test_reputation_models.py``'s
companion, ``test_itrm_defense``.

New ratings between the same (rater, subject) pair fold into the edge
with the fading parameter ``w`` the paper describes:
``edge = (new + w * old) / (1 + w)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple

from repro.errors import ConfigurationError

__all__ = ["RatingGraph", "ItrmResult", "iterative_trust"]


@dataclass
class ItrmResult:
    """Outcome of one ITRM run.

    Attributes:
        subject_scores: Robust estimated score per rated subject.
        rater_weights: Trustworthiness in [0, 1] per rater.
        iterations: Iterations executed before convergence/limit.
    """

    subject_scores: Dict[int, float]
    rater_weights: Dict[int, float]
    iterations: int

    def suspicious_raters(self, threshold: float = 0.5) -> Tuple[int, ...]:
        """Raters whose weight fell below ``threshold``."""
        return tuple(sorted(
            rater for rater, weight in self.rater_weights.items()
            if weight < threshold
        ))


class RatingGraph:
    """The bipartite rater/subject rating graph.

    Args:
        fading: The paper's fading parameter ``w`` — the weight of the
            previous edge value when a repeat rating arrives (>= 0).
    """

    def __init__(self, *, fading: float = 0.9):
        if fading < 0:
            raise ConfigurationError(f"fading must be >= 0, got {fading!r}")
        self.fading = float(fading)
        # (rater, subject) -> current edge rating.
        self._edges: Dict[Tuple[int, int], float] = {}

    def __len__(self) -> int:
        return len(self._edges)

    def add_rating(self, rater: int, subject: int, rating: float) -> None:
        """Insert or fold a rating into the edge.

        Raises:
            ConfigurationError: For self-ratings or negative ratings.
        """
        if rater == subject:
            raise ConfigurationError(
                f"self-ratings are not admissible (node {rater})"
            )
        if rating < 0:
            raise ConfigurationError(f"rating must be >= 0, got {rating!r}")
        key = (rater, subject)
        old = self._edges.get(key)
        if old is None:
            self._edges[key] = float(rating)
        else:
            self._edges[key] = (
                (float(rating) + self.fading * old) / (1.0 + self.fading)
            )

    def edge(self, rater: int, subject: int) -> float:
        """Current edge value, or raises if absent."""
        try:
            return self._edges[(rater, subject)]
        except KeyError:
            raise ConfigurationError(
                f"no rating from {rater} about {subject}"
            ) from None

    def raters(self) -> Tuple[int, ...]:
        """All rater ids."""
        return tuple(sorted({r for r, _ in self._edges}))

    def subjects(self) -> Tuple[int, ...]:
        """All rated subject ids."""
        return tuple(sorted({s for _, s in self._edges}))

    def edges(self) -> Mapping[Tuple[int, int], float]:
        """A read-only view of the edge table."""
        return dict(self._edges)


def iterative_trust(
    graph: RatingGraph,
    *,
    max_rating: float = 5.0,
    iterations: int = 20,
    tolerance: float = 1e-6,
    sharpness: float = 2.0,
) -> ItrmResult:
    """Run the ITRM message-passing iteration on ``graph``.

    Each round:

    1. ``score(s) = sum_r weight(r) * rating(r, s) / sum_r weight(r)``
       for every subject ``s``;
    2. every rater's *inconsistency* is its mean absolute deviation from
       the current scores, normalised by ``max_rating``; its weight
       becomes ``(1 - inconsistency) ** sharpness``.

    Raters start at weight 1.  The loop stops when scores move less
    than ``tolerance`` or after ``iterations`` rounds.

    Raises:
        ConfigurationError: For an empty graph or bad parameters.
    """
    if len(graph) == 0:
        raise ConfigurationError("cannot run ITRM on an empty rating graph")
    if max_rating <= 0:
        raise ConfigurationError(f"max_rating must be > 0, got {max_rating!r}")
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations!r}")
    if sharpness <= 0:
        raise ConfigurationError(f"sharpness must be > 0, got {sharpness!r}")

    edges = graph.edges()
    by_subject: Dict[int, list] = {}
    by_rater: Dict[int, list] = {}
    for (rater, subject), rating in edges.items():
        by_subject.setdefault(subject, []).append((rater, rating))
        by_rater.setdefault(rater, []).append((subject, rating))

    weights: Dict[int, float] = {rater: 1.0 for rater in by_rater}
    scores: Dict[int, float] = {}
    executed = 0
    for executed in range(1, iterations + 1):
        new_scores: Dict[int, float] = {}
        for subject, opinions in by_subject.items():
            mass = sum(weights[rater] for rater, _ in opinions)
            if mass <= 1e-12:
                # Every rater of this subject was discredited; fall back
                # to the unweighted mean rather than divide by zero.
                new_scores[subject] = (
                    sum(r for _, r in opinions) / len(opinions)
                )
            else:
                new_scores[subject] = (
                    sum(weights[rater] * rating
                        for rater, rating in opinions) / mass
                )
        moved = max(
            (abs(new_scores[s] - scores.get(s, new_scores[s]))
             for s in new_scores),
            default=0.0,
        )
        scores = new_scores
        for rater, opinions in by_rater.items():
            deviation = sum(
                abs(rating - scores[subject])
                for subject, rating in opinions
            ) / len(opinions)
            inconsistency = min(deviation / max_rating, 1.0)
            weights[rater] = (1.0 - inconsistency) ** sharpness
        if executed > 1 and moved < tolerance:
            break
    return ItrmResult(
        subject_scores=scores,
        rater_weights=weights,
        iterations=executed,
    )
