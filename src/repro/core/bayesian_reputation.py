"""REPSYS-style Bayesian reputation (Magaia et al., 2017) as a drop-in
alternative to the thesis's averaging DRM.

The thesis's related-work section describes REPSYS at length: a
distributed reputation system where each node maintains a Beta(alpha,
beta) belief about every other node, built from first-hand evidence with
exponential *fading*, and merges second-hand reports only when they pass
a *deviation test* — which is what makes it robust against false praise
and false accusation.

This module implements that model with the same duck-typed API as
:class:`repro.core.reputation.ReputationSystem` (``book``, ``exchange``,
``average_score_of``; books expose ``rate_message`` / ``merge_opinion``
/ ``score`` / ``award_multiplier``), so it plugs straight into
:class:`repro.core.protocol.IncentiveChitChatRouter` via the
``reputation=`` argument — the ``incentive-bayesian`` scheme in the
experiment runner.

Evidence conversion: a message rating ``r`` on the 0..r_m scale counts
as ``r / r_m`` of a success and ``1 - r / r_m`` of a failure, the
standard fractional Beta update.  The exposed ``score`` is the Beta mean
scaled back to the rating scale, so Fig 5.4-style series remain
comparable across reputation models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.core.incentive import IncentiveParams
from repro.errors import ConfigurationError
from repro.trace.recorder import NULL_RECORDER, TraceRecorder

__all__ = ["BetaBelief", "BayesianReputationBook", "BayesianReputationSystem"]


@dataclass
class BetaBelief:
    """A Beta(alpha, beta) belief about one subject.

    The uniform prior Beta(1, 1) encodes total ignorance; its mean 0.5
    maps to the middle of the rating scale.
    """

    alpha: float = 1.0
    beta: float = 1.0

    @property
    def mean(self) -> float:
        """Expected trustworthiness in [0, 1]."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def evidence(self) -> float:
        """Total evidence mass beyond the prior."""
        return self.alpha + self.beta - 2.0

    def observe(self, success_fraction: float) -> None:
        """Fold one interaction in (``success_fraction`` in [0, 1])."""
        self.alpha += success_fraction
        self.beta += 1.0 - success_fraction

    def fade(self, factor: float) -> None:
        """Exponential forgetting toward the uniform prior."""
        self.alpha = 1.0 + (self.alpha - 1.0) * factor
        self.beta = 1.0 + (self.beta - 1.0) * factor


class BayesianReputationBook:
    """One node's Beta beliefs about every other node."""

    def __init__(self, owner: int, params: IncentiveParams, *,
                 fading: float, deviation_threshold: float,
                 merge_weight: float):
        self.owner = int(owner)
        self._params = params
        self._fading = fading
        self._deviation_threshold = deviation_threshold
        self._merge_weight = merge_weight
        self._beliefs: Dict[int, BetaBelief] = {}
        self._rejected_reports = 0
        #: Event-trace sink plus a sim-clock accessor; wired by
        #: :meth:`BayesianReputationSystem.attach_trace` when tracing is on.
        self.trace: TraceRecorder = NULL_RECORDER
        self._clock: Optional[Callable[[], float]] = None

    @property
    def rejected_reports(self) -> int:
        """Second-hand reports discarded by the deviation test."""
        return self._rejected_reports

    def known_subjects(self) -> Iterable[int]:
        """Subjects with any evidence beyond the prior."""
        return tuple(
            subject for subject, belief in self._beliefs.items()
            if belief.evidence > 0.0
        )

    def has_opinion(self, subject: int) -> bool:
        """Whether any evidence about ``subject`` exists."""
        belief = self._beliefs.get(subject)
        return belief is not None and belief.evidence > 0.0

    def belief(self, subject: int) -> BetaBelief:
        """The belief record for ``subject`` (created at the prior)."""
        existing = self._beliefs.get(subject)
        if existing is None:
            existing = BetaBelief()
            self._beliefs[subject] = existing
        return existing

    def forget(self, subject: int) -> bool:
        """Drop every belief about ``subject`` (whitewashing support).

        Returns:
            Whether any belief existed.
        """
        return self._beliefs.pop(subject, None) is not None

    def score(self, subject: int) -> float:
        """Beta mean scaled to the 0..r_m rating scale."""
        return self.belief(subject).mean * self._params.max_rating

    def rate_message(self, subject: int, message_rating: float) -> float:
        """First-hand evidence from one received message."""
        r_m = self._params.max_rating
        if not 0.0 <= message_rating <= r_m + 1e-9:
            raise ConfigurationError(
                f"message rating must be in [0, {r_m}], got {message_rating!r}"
            )
        belief = self.belief(subject)
        belief.fade(self._fading)
        belief.observe(min(message_rating / r_m, 1.0))
        score = self.score(subject)
        if self.trace.enabled:
            self.trace.emit({
                "type": "rating",
                "t": self._clock() if self._clock is not None else 0.0,
                "rater": self.owner, "subject": subject,
                "rating": float(message_rating), "score": score,
            })
        return score

    def merge_opinion(self, subject: int, heard_score: float) -> float:
        """Second-hand report, admitted only through the deviation test.

        A report is *rejected* (false praise / accusation defence) when
        the owner already holds enough own evidence and the report
        deviates too far from it.  Accepted reports count as a fraction
        (``merge_weight``) of a first-hand observation.
        """
        if subject == self.owner:
            return self.score(subject)
        r_m = self._params.max_rating
        if not 0.0 <= heard_score <= r_m + 1e-9:
            raise ConfigurationError(
                f"heard score must be in [0, {r_m}], got {heard_score!r}"
            )
        heard_mean = heard_score / r_m
        belief = self.belief(subject)
        if belief.evidence >= 1.0:
            if abs(heard_mean - belief.mean) > self._deviation_threshold:
                self._rejected_reports += 1
                return self.score(subject)
        belief.alpha += self._merge_weight * heard_mean
        belief.beta += self._merge_weight * (1.0 - heard_mean)
        return self.score(subject)

    def award_multiplier(self, deliverer: int,
                         path_ratings: Iterable[float]) -> float:
        """Same award blend as the averaging DRM, over Beta scores."""
        alpha = self._params.alpha
        r_m = self._params.max_rating
        own_norm = self.score(deliverer) / r_m
        ratings = list(path_ratings)
        if ratings:
            path_norm = (sum(ratings) / len(ratings)) / r_m
        else:
            path_norm = own_norm
        multiplier = (1.0 - alpha) * path_norm + alpha * own_norm
        return min(max(multiplier, 0.0), 1.0)


class BayesianReputationSystem:
    """All nodes' Bayesian books plus the gossip exchange.

    Args:
        params: Shared mechanism tunables (rating scale, alpha).
        fading: Multiplier applied to existing evidence before each new
            first-hand observation (REPSYS's forgetting), in (0, 1].
        deviation_threshold: Maximum |report - own belief| (on the [0,1]
            mean scale) for a second-hand report to be accepted.
        merge_weight: Evidence mass granted to an accepted report,
            relative to a first-hand observation.
    """

    def __init__(
        self,
        params: IncentiveParams,
        *,
        fading: float = 0.98,
        deviation_threshold: float = 0.35,
        merge_weight: float = 0.5,
    ):
        if not 0.0 < fading <= 1.0:
            raise ConfigurationError(f"fading must be in (0, 1], got {fading!r}")
        if not 0.0 <= deviation_threshold <= 1.0:
            raise ConfigurationError(
                f"deviation_threshold must be in [0, 1], got "
                f"{deviation_threshold!r}"
            )
        if merge_weight < 0:
            raise ConfigurationError(
                f"merge_weight must be >= 0, got {merge_weight!r}"
            )
        self._params = params
        self._fading = float(fading)
        self._deviation_threshold = float(deviation_threshold)
        self._merge_weight = float(merge_weight)
        self._books: Dict[int, BayesianReputationBook] = {}
        self.trace: TraceRecorder = NULL_RECORDER
        self._clock: Optional[Callable[[], float]] = None

    def attach_trace(
        self, trace: TraceRecorder, clock: Callable[[], float]
    ) -> None:
        """Wire an event-trace recorder (and sim clock) into every book.

        Same duck-typed hook as
        :meth:`repro.core.reputation.ReputationSystem.attach_trace`.
        """
        self.trace = trace
        self._clock = clock
        for book in self._books.values():
            book.trace = trace
            book._clock = clock

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def book(self, node_id: int) -> BayesianReputationBook:
        """The book owned by ``node_id`` (created lazily)."""
        book = self._books.get(node_id)
        if book is None:
            book = BayesianReputationBook(
                node_id, self._params,
                fading=self._fading,
                deviation_threshold=self._deviation_threshold,
                merge_weight=self._merge_weight,
            )
            book.trace = self.trace
            book._clock = self._clock
            self._books[node_id] = book
        return book

    def exchange(self, a: int, b: int) -> None:
        """Contact-time gossip with deviation-tested admission."""
        book_a = self.book(a)
        book_b = self.book(b)
        reports_from_b = {
            subject: book_b.score(subject)
            for subject in book_b.known_subjects()
        }
        reports_from_a = {
            subject: book_a.score(subject)
            for subject in book_a.known_subjects()
        }
        merged_a = merged_b = 0
        for subject, score in reports_from_b.items():
            if subject not in (a, b):
                book_a.merge_opinion(subject, score)
                merged_a += 1
        for subject, score in reports_from_a.items():
            if subject not in (a, b):
                book_b.merge_opinion(subject, score)
                merged_b += 1
        if self.trace.enabled:
            self.trace.emit({
                "type": "gossip", "t": self._now(), "a": a, "b": b,
                "merged_a": merged_a, "merged_b": merged_b,
            })

    def forget_subject(self, subject: int) -> int:
        """Erase all beliefs about ``subject`` (whitewashing support)."""
        count = sum(
            1 for book in self._books.values() if book.forget(subject)
        )
        if self.trace.enabled:
            self.trace.emit({
                "type": "reputation-forget", "t": self._now(),
                "subject": subject, "books": count,
            })
        return count

    def average_score_of(self, subject: int,
                         observers: Iterable[int]) -> float:
        """Mean score among observers holding evidence (Fig 5.4 series)."""
        scores = [
            self._books[o].score(subject)
            for o in observers
            if o in self._books and self._books[o].has_opinion(subject)
        ]
        if not scores:
            # No evidence anywhere: the prior mean on the rating scale.
            return 0.5 * self._params.max_rating
        return sum(scores) / len(scores)

    def classify_misbehaving(
        self, observer: int, subject: int, *, threshold: float = 0.4
    ) -> bool:
        """REPSYS's Bayesian classification: misbehaving if the belief
        mean falls below ``threshold`` (on the [0, 1] scale)."""
        return self.book(observer).belief(subject).mean < threshold
