"""The full incentive + reputation protocol on top of ChitChat.

``IncentiveChitChatRouter`` is the paper's proposed scheme: ChitChat
routing decisions gated and rewarded by the credit mechanism, content
enrichment by relays, and the Distributed Reputation Model feeding the
award calculation.  The data flow between two connected devices follows
Paper I Section 3.3's closing walk-through:

1. On contact, the RTSR+DR module runs: weights decay/exchange/grow and
   the two nodes gossip their reputation books.
2. The sender partitions its buffered messages into those for which the
   peer is a *destination* and those for which it is a *relay*.
3. For destinations, the award ``I_v`` (reputation-scaled promise plus
   tag incentives) is settled **before** the transfer; a destination
   that cannot pay does not receive — the congestion-control lever.
4. For relays: when the peer's average tag weight exceeds the relay
   threshold (Table 5.1: 0.8), the peer pre-pays a fraction of the
   promise; otherwise the message travels free, carrying the promise.
5. On reception, a relay may enrich the message (honest: truthful tags;
   malicious: irrelevant ones) and rates it, the rating travelling with
   the copy for the destination's award formula.

Payments are held in escrow while the transfer is in flight: captured
by the payee when the transfer lands, released back to the payer when
the contact breaks first.  The paper does not discuss mid-transfer
disconnections; without escrow, tokens would leak to senders that
delivered nothing (DESIGN.md section 4).

The mechanism itself lives in
:class:`~repro.core.incentive_layer.IncentiveLayer`, which composes
over *any* routing substrate through the hook contract in
``repro/routing/base.py``.  This class is the canonical composition —
the layer over :class:`~repro.routing.chitchat.ChitChatRouter` — kept
as a named type for the paper's scheme and for backwards compatibility:
ChitChat tuning knobs arrive as keyword arguments rather than a
pre-built substrate, and the ChitChat protocol surface (interest
tables, ``interest_sum``, RTSR phases) remains reachable on the router
itself via the layer's delegation.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.enrichment import EnrichmentPolicy
from repro.core.incentive import IncentiveParams
from repro.core.incentive_layer import IncentiveLayer
from repro.core.ledger import TokenLedger
from repro.core.reputation import RatingModel, ReputationSystem
from repro.routing.chitchat import ChitChatRouter

__all__ = ["IncentiveChitChatRouter"]


class IncentiveChitChatRouter(IncentiveLayer):
    """ChitChat + credit incentives + enrichment + the DRM.

    Args:
        params: Incentive mechanism tunables.
        enrichment: Tag-addition policy; ``None`` disables enrichment
            (ablation configurations use this).
        rating_model: The stochastic human-rater stand-in.
        ledger: Token ledger; a fresh one is created when omitted.
        reputation: Reputation system; fresh when omitted.
        best_relay_only: Forward each message only to the strongest
            currently-connected relay (operator *DecideBestRelay*).
        relay_rating_probability: Chance a relay rates a received
            message and attaches the rating to the copy.
        destination_rating_probability: Chance a destination rates the
            message's source and annotators after reception.
        collusion: When True, malicious raters give *perfect* ratings to
            fellow malicious nodes (collusive praise) instead of random
            noise — the attack model studied by the ablation benches.
        escrow_timeout: Seconds after which an uncaptured escrow hold is
            reclaimable by its payer (see
            :meth:`~repro.core.ledger.TokenLedger.expire_holds`).  A
            safety valve against holds stranded by faults the abort
            path never saw; ``None`` (default) disables the timeout.
        class_multipliers: Optional population-class-name -> factor
            mapping scaling delivery awards by the deliverer's class
            (the heterogeneous schemes; see
            :class:`~repro.core.incentive_layer.IncentiveLayer`).
        **chitchat_kwargs: Passed through to :class:`ChitChatRouter`.
    """

    name = "incentive-chitchat"

    def __init__(
        self,
        *,
        params: Optional[IncentiveParams] = None,
        enrichment: Optional[EnrichmentPolicy] = None,
        rating_model: Optional[RatingModel] = None,
        ledger: Optional[TokenLedger] = None,
        reputation: Optional[ReputationSystem] = None,
        best_relay_only: bool = True,
        relay_rating_probability: float = 0.5,
        destination_rating_probability: float = 1.0,
        collusion: bool = False,
        escrow_timeout: Optional[float] = None,
        class_multipliers: Optional[Mapping[str, float]] = None,
        **chitchat_kwargs,
    ):
        super().__init__(
            ChitChatRouter(**chitchat_kwargs),
            params=params,
            enrichment=enrichment,
            rating_model=rating_model,
            ledger=ledger,
            reputation=reputation,
            best_relay_only=best_relay_only,
            relay_rating_probability=relay_rating_probability,
            destination_rating_probability=destination_rating_probability,
            collusion=collusion,
            escrow_timeout=escrow_timeout,
            class_multipliers=class_multipliers,
        )
