"""The Distributed Reputation Model (DRM) — Paper I Section 3.3.

Recipients rate received messages; the *source* of a message is rated
for quality and tag truthfulness, while *intermediate* annotators are
rated only for the tags they added::

    source:        R_i = 1/2 * (R_t * C / C_m) + 1/2 * R_q
    intermediate:  R_i = R_t * C / C_m

A node's rating at an observer is the running average of the message
ratings the observer assigned to that node's contributions (case 1), and
opinions heard from other nodes are merged with an own-opinion weight
``alpha > 0.5`` (case 2)::

    r_{v,u} = (1 - alpha) * r_{v,z} + alpha * r_{v,u}

The reputation-scaled award a destination ``u`` pays deliverer ``v`` is::

    I_v = ((1 - alpha) * avg(r_{m_v,x}) / r_m + alpha * r_{v,u} / r_m)
          * (I + I_t)

(both terms normalised by ``r_m`` so the multiplier lies in [0, 1] — see
DESIGN.md section 4).

Human judgement is replaced by a stochastic :class:`RatingModel` that
observes the ground-truth content keywords, exactly the signal a person
inspecting the image would produce (DESIGN.md substitutions table).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

import numpy as np

from repro.core.incentive import IncentiveParams
from repro.errors import ConfigurationError
from repro.messages.message import Annotation, Message
from repro.trace.recorder import NULL_RECORDER, TraceRecorder

__all__ = [
    "source_message_rating",
    "intermediate_message_rating",
    "ReputationBook",
    "ReputationSystem",
    "RatingModel",
]


def source_message_rating(
    tag_rating: float, confidence: float, max_confidence: float,
    quality_rating: float,
) -> float:
    """``R_i`` for the message source: half tags, half quality."""
    if max_confidence <= 0:
        raise ConfigurationError("max_confidence must be > 0")
    if not 0.0 <= confidence <= max_confidence:
        raise ConfigurationError(
            f"confidence must be in [0, {max_confidence}], got {confidence!r}"
        )
    return 0.5 * (tag_rating * confidence / max_confidence) + 0.5 * quality_rating


def intermediate_message_rating(
    tag_rating: float, confidence: float, max_confidence: float
) -> float:
    """``R_i`` for an enriching relay: tags only."""
    if max_confidence <= 0:
        raise ConfigurationError("max_confidence must be > 0")
    if not 0.0 <= confidence <= max_confidence:
        raise ConfigurationError(
            f"confidence must be in [0, {max_confidence}], got {confidence!r}"
        )
    return tag_rating * confidence / max_confidence


class ReputationBook:
    """One node's view of every other node's reputation.

    Own message ratings are kept as a running average (case 1); remote
    opinions fold in via the alpha-weighted merge (case 2).
    """

    def __init__(self, owner: int, params: IncentiveParams):
        self.owner = int(owner)
        self._params = params
        # Running average of *own* message ratings per subject.
        self._own_sum: Dict[int, float] = {}
        self._own_count: Dict[int, int] = {}
        # Current combined score (own average merged with hearsay),
        # held as a sorted subject-id array with parallel values: the
        # gossip exchange — the hot path, whose cost grows with the
        # population — merges whole books with a few ufuncs instead of
        # a dict pass per subject (see ReputationSystem.exchange).
        # Single-subject updates (rating, hearsay, forget) are the cold
        # path and pay an O(n) insert/delete only on membership change.
        self._subjects: np.ndarray = np.empty(0, dtype=np.int64)
        self._values: np.ndarray = np.empty(0, dtype=np.float64)
        #: Event-trace sink plus a sim-clock accessor; wired by
        #: :meth:`ReputationSystem.attach_trace` when tracing is on.
        self.trace: TraceRecorder = NULL_RECORDER
        self._clock: Optional[Callable[[], float]] = None

    def _position(self, subject: int) -> int:
        """``subject``'s index in the sorted arrays, or -1 if absent."""
        subjects = self._subjects
        pos = int(np.searchsorted(subjects, subject))
        if pos < subjects.size and subjects[pos] == subject:
            return pos
        return -1

    def _set_score(self, subject: int, value: float) -> None:
        subjects = self._subjects
        pos = int(np.searchsorted(subjects, subject))
        if pos < subjects.size and subjects[pos] == subject:
            self._values[pos] = value
        else:
            # Hand-rolled single insert: np.insert's generic machinery
            # (index normalisation, fancy-index dispatch) dominates at
            # this call volume.  Same layout, same dtype.
            values = self._values
            n = subjects.size
            new_subjects = np.empty(n + 1, dtype=subjects.dtype)
            new_subjects[:pos] = subjects[:pos]
            new_subjects[pos] = subject
            new_subjects[pos + 1:] = subjects[pos:]
            new_values = np.empty(n + 1, dtype=values.dtype)
            new_values[:pos] = values[:pos]
            new_values[pos] = value
            new_values[pos + 1:] = values[pos:]
            self._subjects = new_subjects
            self._values = new_values

    def known_subjects(self) -> Iterable[int]:
        """Node ids this book holds an opinion about (ascending)."""
        return tuple(self._subjects.tolist())

    def has_opinion(self, subject: int) -> bool:
        """Whether any rating (own or heard) exists for ``subject``."""
        return self._position(subject) >= 0

    def score(self, subject: int) -> float:
        """Current rating of ``subject`` (default when unknown)."""
        pos = self._position(subject)
        if pos < 0:
            return self._params.default_rating
        return float(self._values[pos])

    def own_average(self, subject: int) -> Optional[float]:
        """Average of own message ratings for ``subject`` (None if none)."""
        count = self._own_count.get(subject, 0)
        if count == 0:
            return None
        return self._own_sum[subject] / count

    def rate_message(self, subject: int, message_rating: float) -> float:
        """Case 1: fold one own message rating into ``subject``'s score.

        Returns:
            The updated score ``r_{subject, owner}``.
        """
        if not 0.0 <= message_rating <= self._params.max_rating + 1e-9:
            raise ConfigurationError(
                f"message rating must be in [0, {self._params.max_rating}], "
                f"got {message_rating!r}"
            )
        self._own_sum[subject] = (
            self._own_sum.get(subject, 0.0) + message_rating
        )
        self._own_count[subject] = self._own_count.get(subject, 0) + 1
        # Case 1 defines the node rating as the average of own message
        # ratings; hearsay is layered on top whenever it arrives.
        score = self._own_sum[subject] / self._own_count[subject]
        self._set_score(subject, score)
        if self.trace.enabled:
            self.trace.emit({
                "type": "rating",
                "t": self._clock() if self._clock is not None else 0.0,
                "rater": self.owner, "subject": subject,
                "rating": float(message_rating),
                "score": score,
            })
        return score

    def forget(self, subject: int) -> bool:
        """Erase every opinion this book holds about ``subject``.

        Supports the whitewashing attack model: a node that abandons a
        ruined identity must look brand-new to every observer, so both
        the combined score *and* the own-rating running average are
        dropped — :meth:`score` returns the default and
        :meth:`own_average` returns ``None`` afterwards.

        Returns:
            Whether any opinion (own or heard) existed.
        """
        pos = self._position(subject)
        existed = pos >= 0
        if existed:
            self._subjects = np.delete(self._subjects, pos)
            self._values = np.delete(self._values, pos)
        self._own_sum.pop(subject, None)
        self._own_count.pop(subject, None)
        return existed

    def merge_opinion(self, subject: int, heard_score: float) -> float:
        """Case 2: merge a score heard from another node.

        With no prior opinion the heard score is adopted outright
        (there is nothing to weight it against).
        """
        if subject == self.owner:
            return self.score(subject)
        if not 0.0 <= heard_score <= self._params.max_rating + 1e-9:
            raise ConfigurationError(
                f"heard score must be in [0, {self._params.max_rating}], "
                f"got {heard_score!r}"
            )
        alpha = self._params.alpha
        pos = self._position(subject)
        if pos >= 0:
            merged = (1.0 - alpha) * heard_score + alpha * float(
                self._values[pos]
            )
            self._values[pos] = merged
            return merged
        self._set_score(subject, heard_score)
        return heard_score

    def award_multiplier(
        self, deliverer: int, path_ratings: Iterable[float]
    ) -> float:
        """The reputation multiplier applied to ``(I + I_t)``.

        ``(1 - alpha) * avg(path ratings)/r_m + alpha * r_{v,u}/r_m``;
        when the copy carries no path ratings, the observer's own score
        stands in for the missing term (DESIGN.md section 4).
        """
        alpha = self._params.alpha
        r_m = self._params.max_rating
        own_norm = self.score(deliverer) / r_m
        ratings = list(path_ratings)
        if ratings:
            path_norm = (sum(ratings) / len(ratings)) / r_m
        else:
            path_norm = own_norm
        multiplier = (1.0 - alpha) * path_norm + alpha * own_norm
        return min(max(multiplier, 0.0), 1.0)


class _PlannedBook:
    """Scratch holder for a planned (not yet applied) book state.

    Duck-types the two attributes :meth:`ReputationSystem._exchange_sides`
    touches, so later gossip rounds can be merged without disturbing the
    real books mid-tick (award computations read them between exchanges).
    """

    __slots__ = ("_subjects", "_values")

    def __init__(self, subjects: np.ndarray, values: np.ndarray):
        self._subjects = subjects
        self._values = values


class ReputationSystem:
    """All nodes' reputation books plus the gossip exchange."""

    def __init__(self, params: IncentiveParams):
        self._params = params
        self._books: Dict[int, ReputationBook] = {}
        self.trace: TraceRecorder = NULL_RECORDER
        self._clock: Optional[Callable[[], float]] = None

    def attach_trace(
        self, trace: TraceRecorder, clock: Callable[[], float]
    ) -> None:
        """Wire an event-trace recorder (and sim clock) into every book.

        Called by the incentive router when it binds to a traced world;
        books created later inherit the recorder via :meth:`book`.
        """
        self.trace = trace
        self._clock = clock
        for book in self._books.values():
            book.trace = trace
            book._clock = clock

    def _now(self) -> float:
        return self._clock() if self._clock is not None else 0.0

    def book(self, node_id: int) -> ReputationBook:
        """The book owned by ``node_id`` (created lazily)."""
        book = self._books.get(node_id)
        if book is None:
            book = ReputationBook(node_id, self._params)
            book.trace = self.trace
            book._clock = self._clock
            self._books[node_id] = book
        return book

    @staticmethod
    def _merge_arrays(
        subjects: np.ndarray,
        values: np.ndarray,
        peer_subjects: np.ndarray,
        peer_values: np.ndarray,
        alpha: float,
        one_minus_alpha: float,
        a: int,
        b: int,
    ) -> tuple:
        """One side of the gossip merge, as fresh arrays.

        Returns ``(new_subjects, new_values, merged_count)``.  Pure with
        respect to its inputs — both sides of an exchange are computed
        from the pre-exchange arrays before either book is written,
        which is the snapshot discipline that keeps gossip symmetric.
        The EWMA ``(1 - alpha) * heard + alpha * mine`` is kept verbatim
        per element, and a subject unknown to the receiver adopts the
        heard score outright — exactly
        :meth:`ReputationBook.merge_opinion`, minus the per-subject
        call.  Opinions about the interlocutors ``a``/``b`` are dropped
        before merging (the self-praise guard).
        """
        keep = (peer_subjects != a) & (peer_subjects != b)
        if not keep.all():
            peer_subjects = peer_subjects[keep]
            peer_values = peer_values[keep]
        merged_count = int(peer_subjects.size)
        if merged_count == 0:
            return subjects, values, 0
        if subjects.size == 0:
            return peer_subjects.copy(), peer_values.copy(), merged_count
        pos = np.searchsorted(subjects, peer_subjects)
        clipped = np.minimum(pos, subjects.size - 1)
        found = subjects[clipped] == peer_subjects
        if found.any():
            where = clipped[found]
            merged = (
                one_minus_alpha * peer_values[found]
                + alpha * values[where]
            )
            new_values = values.copy()
            new_values[where] = merged
        else:
            new_values = values
        adopt = ~found
        if adopt.any():
            # Hand-rolled multi-insert (np.insert is generic and slow
            # on this path): ``pos`` is nondecreasing because
            # ``peer_subjects`` is sorted, so the k-th adopted subject
            # lands at output index ``positions[k] + k`` and the old
            # elements fill the remaining slots in order — the exact
            # layout ``np.insert(subjects, positions, ...)`` produces.
            positions = pos[adopt]
            n_add = positions.size
            total = subjects.size + n_add
            ins = positions + np.arange(n_add)
            old = np.ones(total, dtype=bool)
            old[ins] = False
            new_subjects = np.empty(total, dtype=subjects.dtype)
            new_subjects[ins] = peer_subjects[adopt]
            new_subjects[old] = subjects
            out_values = np.empty(total, dtype=new_values.dtype)
            out_values[ins] = peer_values[adopt]
            out_values[old] = new_values
            new_values = out_values
        else:
            new_subjects = subjects
        return new_subjects, new_values, merged_count

    def exchange(self, a: int, b: int) -> None:
        """Contact-time gossip: each side merges the other's opinions.

        Opinions about the interlocutors themselves are skipped — a node
        neither rates itself nor lets the peer vouch for itself
        (self-praise would be the obvious whitewashing channel).

        This is the hot path at scale: books grow with the population,
        so the merge runs as array ops over the sorted books (one
        ``searchsorted`` plus a handful of ufuncs per side) rather than
        a dict pass per subject.  Scores are floats under the identical
        EWMA expression, so results are bit-identical to the historical
        per-subject loop; only membership *order* differs (sorted
        instead of insertion order), which nothing consumes.
        """
        book_a = self.book(a)
        book_b = self.book(b)
        alpha = self._params.alpha
        one_minus_alpha = 1.0 - alpha
        merge = self._merge_arrays
        new_subjects_a, new_values_a, merged_a = merge(
            book_a._subjects, book_a._values,
            book_b._subjects, book_b._values,
            alpha, one_minus_alpha, a, b,
        )
        new_subjects_b, new_values_b, merged_b = merge(
            book_b._subjects, book_b._values,
            book_a._subjects, book_a._values,
            alpha, one_minus_alpha, a, b,
        )
        book_a._subjects = new_subjects_a
        book_a._values = new_values_a
        book_b._subjects = new_subjects_b
        book_b._values = new_values_b
        self.record_gossip(a, b, merged_a, merged_b)

    def record_gossip(
        self, a: int, b: int, merged_a: int, merged_b: int
    ) -> None:
        """Emit the per-exchange gossip trace record.

        One record per exchange (not per subject) keeps gossip from
        dominating the trace volume at paper scale.  Split out of
        :meth:`exchange` so a merge performed early by
        :meth:`exchange_batch` can still surface its record at the
        moment the sequential schedule would have run the exchange,
        keeping traced batched runs record-for-record identical.
        """
        if self.trace.enabled:
            self.trace.emit({
                "type": "gossip", "t": self._now(), "a": a, "b": b,
                "merged_a": merged_a, "merged_b": merged_b,
            })

    def exchange_batch(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Tuple[int, int, int, int]]:
        """Gossip for many *disjoint* contact pairs in one grouped pass.

        The caller must guarantee no node id appears in more than one
        pair (the tick batcher only submits first-occurrence pairs), so
        every book is read and written by exactly one side-pair and the
        pre-exchange snapshot discipline of :meth:`exchange` holds
        trivially: all giver arrays are captured before any book is
        written.

        Instead of two :meth:`_merge_arrays` calls per pair (each with
        its own ``searchsorted`` + ufunc set-up), the 2·N receiver
        books are concatenated into one pair of arrays with each block
        offset by ``block_id * BASE`` — subject ids are nonnegative and
        bounded, so the encoded array is globally strictly increasing
        and a *single* ``searchsorted`` locates every heard opinion in
        every book at once.  Per-element clipping to the owning block's
        end keeps lookups in-block, the EWMA runs verbatim as one ufunc
        over all found positions, and the adopted subjects multi-insert
        with the same ``positions + rank`` layout ``_merge_arrays``
        uses, generalised across blocks with a ``bincount``/``cumsum``
        rank.  Every written book gets freshly copied arrays, so no two
        books ever alias storage (``forget`` on one cannot disturb
        another).

        No trace records are emitted here — the returned
        ``(a, b, merged_a, merged_b)`` tuples are replayed through
        :meth:`record_gossip` by the caller at each pair's sequential
        exchange point.

        Falls back to the per-side scalar merge if any subject id is
        negative (the offset encoding requires nonnegative ids); the
        results are identical either way.
        """
        # Capture every side up front: (receiver book, receiver
        # subjects/values, giver subjects/values, a, b).
        sides: list = []
        for a, b in pairs:
            book_a = self.book(a)
            book_b = self.book(b)
            sides.append((
                book_a, book_a._subjects, book_a._values,
                book_b._subjects, book_b._values, a, b,
            ))
            sides.append((
                book_b, book_b._subjects, book_b._values,
                book_a._subjects, book_a._values, a, b,
            ))
        return self._exchange_sides(sides, pairs)

    def exchange_batch_rounds(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[Tuple[int, int, int, int, Optional[tuple]]]:
        """Gossip for *all* same-tick pairs, decomposed into rounds.

        :meth:`exchange_batch` requires disjoint pairs; this driver
        lifts that restriction with the same round decomposition the
        growth batch uses: a pair's round is one past the latest round
        either endpoint already sits in, so within a round every node
        appears at most once and each node's merges replay in per-pair
        order.  Round zero (both endpoints' first appearance of the
        tick) is applied to the books immediately — no earlier pair of
        the tick reads or writes those books, so the merge commutes to
        the head of the tick.  Later rounds CANNOT be applied early:
        award computations of earlier pairs read member books between
        exchanges.  Their merges are therefore *planned* here on
        scratch holders (each round's inputs are the previous round's
        outputs) and returned as deferred array assignments the caller
        applies at each pair's sequential exchange point — the book
        then steps through exactly the states the per-pair path would
        produce, visible to every interleaved read at the right time.

        Returns ``(a, b, merged_a, merged_b, deferred)`` per pair,
        where ``deferred`` is ``None`` for round-zero pairs (already
        applied) or ``(book_a, subjects_a, values_a, book_b,
        subjects_b, values_b)`` to assign at the exchange point.  The
        deferred arrays are either the book's own current arrays (a
        side that heard nothing) or fresh merge outputs, so the
        no-aliasing discipline of :meth:`exchange_batch` carries over.
        """
        last_round: Dict[int, int] = {}
        rounds: List[list] = []
        for pair in pairs:
            a, b = pair
            r = last_round.get(a, -1)
            r_b = last_round.get(b, -1)
            if r_b > r:
                r = r_b
            r += 1
            if r == len(rounds):
                rounds.append([])
            rounds[r].append(pair)
            last_round[a] = r
            last_round[b] = r
        out: List[Tuple[int, int, int, int, Optional[tuple]]] = []
        if not rounds:
            return out
        for a, b, merged_a, merged_b in self.exchange_batch(rounds[0]):
            out.append((a, b, merged_a, merged_b, None))
        if len(rounds) == 1:
            return out
        planned: Dict[int, _PlannedBook] = {}
        planned_get = planned.get
        for round_pairs in rounds[1:]:
            sides: list = []
            for a, b in round_pairs:
                state_a = planned_get(a)
                if state_a is None:
                    book = self.book(a)
                    planned[a] = state_a = _PlannedBook(
                        book._subjects, book._values
                    )
                state_b = planned_get(b)
                if state_b is None:
                    book = self.book(b)
                    planned[b] = state_b = _PlannedBook(
                        book._subjects, book._values
                    )
                sides.append((
                    state_a, state_a._subjects, state_a._values,
                    state_b._subjects, state_b._values, a, b,
                ))
                sides.append((
                    state_b, state_b._subjects, state_b._values,
                    state_a._subjects, state_a._values, a, b,
                ))
            for a, b, merged_a, merged_b in self._exchange_sides(
                sides, round_pairs
            ):
                state_a = planned[a]
                state_b = planned[b]
                out.append((a, b, merged_a, merged_b, (
                    self.book(a), state_a._subjects, state_a._values,
                    self.book(b), state_b._subjects, state_b._values,
                )))
        return out

    def _exchange_sides(
        self, sides: list, pairs: Sequence[Tuple[int, int]]
    ) -> List[Tuple[int, int, int, int]]:
        """Grouped-merge core shared by :meth:`exchange_batch` (writing
        real books) and :meth:`exchange_batch_rounds` (writing scratch
        holders): ``sides[0]`` only needs ``_subjects``/``_values``
        attributes."""
        alpha = self._params.alpha
        one_minus_alpha = 1.0 - alpha
        n_sides = len(sides)
        giver_sizes = np.fromiter(
            (side[3].size for side in sides), dtype=np.int64, count=n_sides,
        )
        total_giver = int(giver_sizes.sum())
        if total_giver == 0:
            return [(a, b, 0, 0) for a, b in pairs]
        G = np.concatenate([side[3] for side in sides])
        GV = np.concatenate([side[4] for side in sides])
        seg_ids = np.repeat(np.arange(n_sides), giver_sizes)
        negative = bool((G < 0).any()) or any(
            side[1].size and side[1][0] < 0 for side in sides
        )
        if negative:
            counts: list = []
            for book, subjects, values, g_subj, g_val, a, b in sides:
                new_s, new_v, count = self._merge_arrays(
                    subjects, values, g_subj, g_val,
                    alpha, one_minus_alpha, a, b,
                )
                book._subjects = new_s
                book._values = new_v
                counts.append(count)
            return [
                (pairs[i][0], pairs[i][1], counts[2 * i], counts[2 * i + 1])
                for i in range(len(pairs))
            ]
        # Self-praise guard for every side in one vector op.
        A_rep = np.repeat(
            np.fromiter((s[5] for s in sides), dtype=np.int64, count=n_sides),
            giver_sizes,
        )
        B_rep = np.repeat(
            np.fromiter((s[6] for s in sides), dtype=np.int64, count=n_sides),
            giver_sizes,
        )
        keep = (G != A_rep) & (G != B_rep)
        kept_counts = np.bincount(seg_ids[keep], minlength=n_sides)
        # Partition sides: untouched (nothing heard), whole-adopt
        # (empty receiver), and grouped-merge (the common case).
        grouped_idx: list = []
        for i, side in enumerate(sides):
            kept = int(kept_counts[i])
            if kept == 0:
                continue
            if side[1].size == 0:
                sel = keep & (seg_ids == i)
                side[0]._subjects = G[sel].copy()
                side[0]._values = GV[sel].copy()
            else:
                grouped_idx.append(i)
        if grouped_idx:
            self._merge_blocks(
                sides, grouped_idx, G, GV, seg_ids, keep,
                kept_counts, alpha, one_minus_alpha,
            )
        return [
            (pairs[i][0], pairs[i][1],
             int(kept_counts[2 * i]), int(kept_counts[2 * i + 1]))
            for i in range(len(pairs))
        ]

    @staticmethod
    def _merge_blocks(
        sides: list,
        grouped_idx: list,
        G: np.ndarray,
        GV: np.ndarray,
        seg_ids: np.ndarray,
        keep: np.ndarray,
        kept_counts: np.ndarray,
        alpha: float,
        one_minus_alpha: float,
    ) -> None:
        """The grouped searchsorted/EWMA/multi-insert over all blocks.

        Each block is one (receiver book, kept giver opinions) side with
        a nonempty receiver.  Mirrors :meth:`_merge_arrays` branch for
        branch; see :meth:`exchange_batch` for the encoding argument.
        """
        m = len(grouped_idx)
        block_of_seg = np.full(len(sides), -1, dtype=np.int64)
        block_of_seg[grouped_idx] = np.arange(m)
        g_sel = keep & (block_of_seg[seg_ids] >= 0)
        P = G[g_sel]
        PV = GV[g_sel]
        pblock = block_of_seg[seg_ids[g_sel]]
        r_sizes = np.fromiter(
            (sides[i][1].size for i in grouped_idx),
            dtype=np.int64, count=m,
        )
        R = np.concatenate([sides[i][1] for i in grouped_idx])
        RV = np.concatenate([sides[i][2] for i in grouped_idx])
        r_starts = np.concatenate(([0], np.cumsum(r_sizes)[:-1]))
        r_ends = r_starts + r_sizes
        base = int(max(R.max(), P.max())) + 1
        r_off = np.repeat(np.arange(m) * base, r_sizes)
        pos = np.searchsorted(R + r_off, P + pblock * base)
        # searchsorted can land one past the block (subject greater
        # than everything the receiver knows); clip into the block so
        # the found-comparison below reads the right book.
        clipped = np.minimum(pos, r_ends[pblock] - 1)
        found = R[clipped] == P
        RV_new = RV
        if found.any():
            where = clipped[found]
            RV_new = RV.copy()
            RV_new[where] = (
                one_minus_alpha * PV[found] + alpha * RV[where]
            )
        adopt = ~found
        positions = (pos - r_starts[pblock])[adopt]
        ablock = pblock[adopt]
        add_counts = np.bincount(ablock, minlength=m)
        add_starts = np.concatenate(([0], np.cumsum(add_counts)[:-1]))
        rank = np.arange(positions.size) - add_starts[ablock]
        out_sizes = r_sizes + add_counts
        out_starts = np.concatenate(([0], np.cumsum(out_sizes)[:-1]))
        total_out = int(out_sizes.sum())
        out_subjects = np.empty(total_out, dtype=np.int64)
        out_values = np.empty(total_out, dtype=np.float64)
        ins = out_starts[ablock] + positions + rank
        old = np.ones(total_out, dtype=bool)
        old[ins] = False
        out_subjects[ins] = P[adopt]
        out_subjects[old] = R
        out_values[ins] = PV[adopt]
        out_values[old] = RV_new
        for j, i in enumerate(grouped_idx):
            start = int(out_starts[j])
            end = start + int(out_sizes[j])
            sides[i][0]._subjects = out_subjects[start:end].copy()
            sides[i][0]._values = out_values[start:end].copy()

    def forget_subject(self, subject: int) -> int:
        """Erase every node's opinion about ``subject``.

        Models a *whitewashing* attack (related work [27] in Paper I): a
        node with a ruined reputation abandons its identity and rejoins
        under a fresh one, so all books start from scratch for it.

        Returns:
            The number of books that held an opinion.
        """
        count = sum(
            1 for book in self._books.values() if book.forget(subject)
        )
        if self.trace.enabled:
            self.trace.emit({
                "type": "reputation-forget", "t": self._now(),
                "subject": subject, "books": count,
            })
        return count

    def average_score_of(
        self, subject: int, observers: Iterable[int]
    ) -> float:
        """Mean score of ``subject`` across ``observers`` with opinions.

        Observers without an opinion are excluded; if none has one, the
        default rating is returned.  This is the Fig. 5.4 series:
        "average rating of malicious nodes in non-malicious nodes".
        """
        scores = [
            self._books[o].score(subject)
            for o in observers
            if o in self._books and self._books[o].has_opinion(subject)
        ]
        if not scores:
            return self._params.default_rating
        return sum(scores) / len(scores)


@dataclass
class RatingModel:
    """Stochastic stand-in for the human rater (DESIGN.md substitution).

    An honest rater scores tag truthfulness as the fraction of a
    contributor's tags that match the ground-truth content, and message
    quality as the message's quality attribute, both scaled to the
    rating ceiling with zero-mean noise.  Confidence is drawn uniformly
    from ``[confidence_low, 1] * C_m``.

    Attributes:
        params: Mechanism tunables (rating ceiling).
        noise: Standard deviation of the rating noise, in rating units.
        confidence_low: Lower bound of the confidence draw, in [0, 1].
    """

    params: IncentiveParams
    noise: float = 0.25
    confidence_low: float = 0.6

    def __post_init__(self) -> None:
        if self.noise < 0:
            raise ConfigurationError("noise must be >= 0")
        if not 0.0 <= self.confidence_low <= 1.0:
            raise ConfigurationError("confidence_low must be in [0, 1]")

    def _clamp(self, value: float) -> float:
        return min(max(value, 0.0), self.params.max_rating)

    def _noisy(self, value: float, rng: np.random.Generator) -> float:
        if self.noise == 0.0:
            return self._clamp(value)
        return self._clamp(value + rng.normal(0.0, self.noise))

    def tag_rating(
        self,
        message: Message,
        annotations: Iterable[Annotation],
        rng: np.random.Generator,
    ) -> float:
        """``R_t`` for one contributor's annotations on ``message``."""
        tags = list(annotations)
        if not tags:
            # Nothing to judge: neutral truthfulness.
            return self._noisy(self.params.max_rating / 2.0, rng)
        relevant = sum(1 for a in tags if message.is_relevant(a.keyword))
        fraction = relevant / len(tags)
        return self._noisy(fraction * self.params.max_rating, rng)

    def quality_rating(
        self, message: Message, rng: np.random.Generator
    ) -> float:
        """``R_q`` — perceived message quality."""
        return self._noisy(message.quality * self.params.max_rating, rng)

    def confidence(self, rng: np.random.Generator) -> float:
        """``C`` — the rater's confidence in its tag judgement."""
        return float(
            rng.uniform(self.confidence_low, 1.0) * self.params.max_rating
        )

    @property
    def max_confidence(self) -> float:
        """``C_m`` — the confidence ceiling (same scale as ratings)."""
        return self.params.max_rating

    def rate_source(
        self, message: Message, rng: np.random.Generator
    ) -> float:
        """Full ``R_i`` for the message source."""
        source_tags = message.annotations_by(message.source)
        return self._clamp(
            source_message_rating(
                self.tag_rating(message, source_tags, rng),
                self.confidence(rng),
                self.max_confidence,
                self.quality_rating(message, rng),
            )
        )

    def rate_intermediate(
        self, message: Message, annotator: int, rng: np.random.Generator
    ) -> float:
        """Full ``R_i`` for an enriching relay's added tags."""
        tags = message.annotations_by(annotator)
        return self._clamp(
            intermediate_message_rating(
                self.tag_rating(message, tags, rng),
                self.confidence(rng),
                self.max_confidence,
            )
        )
