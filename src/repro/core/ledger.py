"""The incentive token ledger.

Every node is assigned the same initial token endowment (Table 5.1: 200
tokens).  Tokens only ever move between accounts — nothing mints or
burns them mid-run — so the total supply is invariant, which a property
test enforces.  A node that cannot pay is simply refused: that refusal
is the paper's congestion-control lever ("a device with no incentive to
offer cannot act as a destination").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import (
    ConfigurationError,
    InsufficientTokensError,
    LedgerError,
    UnknownAccountError,
)

__all__ = ["Transaction", "TokenLedger"]


@dataclass(frozen=True)
class Transaction:
    """One settled token transfer.

    Attributes:
        time: Simulation time of settlement.
        payer: Paying node id.
        payee: Receiving node id.
        amount: Tokens moved (> 0).
        reason: Audit tag, e.g. ``"delivery-award"`` or ``"relay-prepay"``.
    """

    time: float
    payer: int
    payee: int
    amount: float
    reason: str


class TokenLedger:
    """Append-only token accounting for all nodes.

    Example:
        >>> ledger = TokenLedger()
        >>> ledger.open_account(1, 200.0)
        >>> ledger.open_account(2, 200.0)
        >>> _ = ledger.transfer(1, 2, 50.0, time=0.0, reason="award")
        >>> ledger.balance(1), ledger.balance(2)
        (150.0, 250.0)
    """

    def __init__(self) -> None:
        self._balances: Dict[int, float] = {}
        self._initial: Dict[int, float] = {}
        self._transactions: List[Transaction] = []
        self._holds: Dict[int, Tuple[int, float, str]] = {}
        self._next_hold = 1

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------
    def open_account(self, node_id: int, initial_tokens: float) -> None:
        """Create an account holding ``initial_tokens``.

        Raises:
            ConfigurationError: If the account exists or the endowment is
                negative.
        """
        if node_id in self._balances:
            raise ConfigurationError(f"account {node_id} already exists")
        if initial_tokens < 0:
            raise ConfigurationError(
                f"initial tokens must be >= 0, got {initial_tokens!r}"
            )
        self._balances[node_id] = float(initial_tokens)
        self._initial[node_id] = float(initial_tokens)

    def has_account(self, node_id: int) -> bool:
        """Whether an account exists for ``node_id``."""
        return node_id in self._balances

    def balance(self, node_id: int) -> float:
        """Current balance of ``node_id``.

        Raises:
            UnknownAccountError: If no such account exists.
        """
        try:
            return self._balances[node_id]
        except KeyError:
            raise UnknownAccountError(f"no account for node {node_id}") from None

    def initial_balance(self, node_id: int) -> float:
        """The endowment ``node_id`` started with."""
        try:
            return self._initial[node_id]
        except KeyError:
            raise UnknownAccountError(f"no account for node {node_id}") from None

    def can_pay(self, node_id: int, amount: float) -> bool:
        """Whether ``node_id`` holds at least ``amount`` tokens."""
        return self.balance(node_id) >= amount

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def transfer(
        self,
        payer: int,
        payee: int,
        amount: float,
        *,
        time: float,
        reason: str = "",
    ) -> Transaction:
        """Move ``amount`` tokens from ``payer`` to ``payee``.

        Zero-amount transfers are recorded (they document a settled
        promise of zero); negative amounts are rejected.

        Raises:
            InsufficientTokensError: If the payer cannot cover ``amount``.
            ConfigurationError: For negative amounts or payer == payee.
            UnknownAccountError: If either account is missing.
        """
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount!r}")
        if payer == payee:
            raise ConfigurationError(
                f"payer and payee must differ, both were {payer}"
            )
        payer_balance = self.balance(payer)
        self.balance(payee)  # validate the payee account exists
        if payer_balance < amount:
            raise InsufficientTokensError(str(payer), amount, payer_balance)
        self._balances[payer] = payer_balance - amount
        self._balances[payee] += amount
        transaction = Transaction(
            time=float(time), payer=payer, payee=payee,
            amount=float(amount), reason=reason,
        )
        self._transactions.append(transaction)
        return transaction

    # ------------------------------------------------------------------
    # Escrow
    # ------------------------------------------------------------------
    def escrow(
        self, payer: int, amount: float, *, time: float, reason: str = ""
    ) -> int:
        """Debit ``payer`` and hold the tokens in escrow.

        The incentive protocol settles payments *before* a transfer;
        escrow keeps the tokens out of circulation until the transfer
        either completes (:meth:`capture`) or aborts (:meth:`release`),
        so a refund can never fail because the payee already spent it.

        Returns:
            A hold id for :meth:`capture` / :meth:`release`.

        Raises:
            InsufficientTokensError: If the payer cannot cover ``amount``.
        """
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount!r}")
        balance = self.balance(payer)
        if balance < amount:
            raise InsufficientTokensError(str(payer), amount, balance)
        self._balances[payer] = balance - amount
        hold_id = self._next_hold
        self._next_hold += 1
        self._holds[hold_id] = (payer, float(amount), reason)
        return hold_id

    def capture(self, hold_id: int, payee: int, *, time: float) -> Transaction:
        """Pay escrowed tokens out to ``payee`` (the transfer landed)."""
        payer, amount, reason = self._pop_hold(hold_id)
        self.balance(payee)  # validate the payee account exists
        self._balances[payee] += amount
        transaction = Transaction(
            time=float(time), payer=payer, payee=payee,
            amount=amount, reason=reason,
        )
        self._transactions.append(transaction)
        return transaction

    def release(self, hold_id: int, *, time: float) -> None:
        """Return escrowed tokens to the payer (the transfer aborted)."""
        payer, amount, _reason = self._pop_hold(hold_id)
        self._balances[payer] += amount

    def _pop_hold(self, hold_id: int) -> Tuple[int, float, str]:
        try:
            return self._holds.pop(hold_id)
        except KeyError:
            raise LedgerError(
                f"escrow hold {hold_id} does not exist or was already settled"
            ) from None

    def escrowed_total(self) -> float:
        """Tokens currently held in escrow."""
        return sum(amount for _, amount, _ in self._holds.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> Tuple[Transaction, ...]:
        """All settled transfers in order."""
        return tuple(self._transactions)

    def total_supply(self) -> float:
        """Sum of all balances plus escrow (equals the endowment sum)."""
        return sum(self._balances.values()) + self.escrowed_total()

    def total_endowment(self) -> float:
        """Sum of all initial endowments."""
        return sum(self._initial.values())

    def balances(self) -> Dict[int, float]:
        """A snapshot of every balance."""
        return dict(self._balances)

    def earnings(self, node_id: int) -> float:
        """Net tokens gained (or lost, negative) since the endowment."""
        return self.balance(node_id) - self.initial_balance(node_id)

    def volume_by_reason(self) -> Dict[str, float]:
        """Total tokens moved per audit reason."""
        volume: Dict[str, float] = {}
        for transaction in self._transactions:
            volume[transaction.reason] = (
                volume.get(transaction.reason, 0.0) + transaction.amount
            )
        return volume
