"""The incentive token ledger.

Every node is assigned the same initial token endowment (Table 5.1: 200
tokens).  Tokens only ever move between accounts — nothing mints or
burns them mid-run — so the total supply is invariant, which a property
test enforces.  A node that cannot pay is simply refused: that refusal
is the paper's congestion-control lever ("a device with no incentive to
offer cannot act as a destination").

Under fault injection (lossy links, node churn) the same logical
settlement can be attempted more than once — a retransmitted delivery,
or a crashed node re-receiving a copy whose receipt it already paid
for.  *Settlement keys* make those paths idempotent: a transfer or
escrow capture tagged with a key settles at most once; a duplicate
attempt moves no tokens (a duplicate capture refunds its escrow to the
payer) and is counted in :attr:`TokenLedger.duplicate_settlements`,
which robustness sweeps assert stays at the number of *blocked*
duplicates while actual double-payments stay at zero.  Escrow holds may
also carry an expiry time so tokens promised to a transfer that never
resolves (a crashed holder, a hung exchange) are reclaimable via
:meth:`TokenLedger.expire_holds` instead of stranding forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import (
    ConfigurationError,
    InsufficientTokensError,
    LedgerError,
    UnknownAccountError,
)
from repro.trace.recorder import NULL_RECORDER

__all__ = ["Transaction", "TokenLedger"]


@dataclass(frozen=True)
class Transaction:
    """One settled token transfer.

    Attributes:
        time: Simulation time of settlement.
        payer: Paying node id.
        payee: Receiving node id.
        amount: Tokens moved (> 0).
        reason: Audit tag, e.g. ``"delivery-award"`` or ``"relay-prepay"``.
        settlement_key: Optional idempotence key this settlement was
            recorded under (``None`` for unkeyed transfers).
    """

    time: float
    payer: int
    payee: int
    amount: float
    reason: str
    settlement_key: Optional[str] = None


class TokenLedger:
    """Append-only token accounting for all nodes.

    Example:
        >>> ledger = TokenLedger()
        >>> ledger.open_account(1, 200.0)
        >>> ledger.open_account(2, 200.0)
        >>> _ = ledger.transfer(1, 2, 50.0, time=0.0, reason="award")
        >>> ledger.balance(1), ledger.balance(2)
        (150.0, 250.0)
    """

    def __init__(self) -> None:
        self._balances: Dict[int, float] = {}
        self._initial: Dict[int, float] = {}
        self._transactions: List[Transaction] = []
        self._holds: Dict[int, Tuple[int, float, str]] = {}
        self._hold_expiries: Dict[int, float] = {}
        self._next_hold = 1
        self._settled: Set[str] = set()
        #: Settlement attempts blocked by an already-settled key.
        self.duplicate_settlements = 0
        #: Event-trace sink; the world wires a real recorder in when
        #: tracing is enabled (see :meth:`IncentiveChitChatRouter.bind`).
        self.trace = NULL_RECORDER

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------
    def open_account(
        self, node_id: int, initial_tokens: float, *, time: float = 0.0
    ) -> None:
        """Create an account holding ``initial_tokens``.

        Args:
            time: Simulation time of the opening (trace timestamp only;
                accounts opened lazily mid-run record when they joined
                the economy).

        Raises:
            ConfigurationError: If the account exists or the endowment is
                negative.
        """
        if node_id in self._balances:
            raise ConfigurationError(f"account {node_id} already exists")
        if initial_tokens < 0:
            raise ConfigurationError(
                f"initial tokens must be >= 0, got {initial_tokens!r}"
            )
        self._balances[node_id] = float(initial_tokens)
        self._initial[node_id] = float(initial_tokens)
        if self.trace.enabled:
            self.trace.emit({
                "type": "account-open", "t": float(time),
                "node": node_id, "amount": float(initial_tokens),
            })

    def has_account(self, node_id: int) -> bool:
        """Whether an account exists for ``node_id``."""
        return node_id in self._balances

    def balance(self, node_id: int) -> float:
        """Current balance of ``node_id``.

        Raises:
            UnknownAccountError: If no such account exists.
        """
        try:
            return self._balances[node_id]
        except KeyError:
            raise UnknownAccountError(f"no account for node {node_id}") from None

    def initial_balance(self, node_id: int) -> float:
        """The endowment ``node_id`` started with."""
        try:
            return self._initial[node_id]
        except KeyError:
            raise UnknownAccountError(f"no account for node {node_id}") from None

    def can_pay(self, node_id: int, amount: float) -> bool:
        """Whether ``node_id`` holds at least ``amount`` tokens."""
        return self.balance(node_id) >= amount

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def was_settled(self, settlement_key: str) -> bool:
        """Whether ``settlement_key`` has already settled."""
        return settlement_key in self._settled

    @property
    def settled_keys(self) -> Tuple[str, ...]:
        """All settlement keys recorded so far (unordered snapshot)."""
        return tuple(self._settled)

    def transfer(
        self,
        payer: int,
        payee: int,
        amount: float,
        *,
        time: float,
        reason: str = "",
        settlement_key: Optional[str] = None,
    ) -> Optional[Transaction]:
        """Move ``amount`` tokens from ``payer`` to ``payee``.

        Zero-amount transfers are recorded (they document a settled
        promise of zero); negative amounts are rejected.  When
        ``settlement_key`` is given and was already settled, the
        transfer is an idempotent no-op: no tokens move, ``None`` is
        returned, and :attr:`duplicate_settlements` is incremented.

        Raises:
            InsufficientTokensError: If the payer cannot cover ``amount``.
            ConfigurationError: For negative amounts or payer == payee.
            UnknownAccountError: If either account is missing.
        """
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount!r}")
        if payer == payee:
            raise ConfigurationError(
                f"payer and payee must differ, both were {payer}"
            )
        payer_balance = self.balance(payer)
        self.balance(payee)  # validate the payee account exists
        if settlement_key is not None and settlement_key in self._settled:
            self.duplicate_settlements += 1
            if self.trace.enabled:
                self.trace.emit({
                    "type": "transfer-duplicate", "t": float(time),
                    "payer": payer, "payee": payee,
                    "amount": float(amount), "key": settlement_key,
                })
            return None
        if payer_balance < amount:
            raise InsufficientTokensError(str(payer), amount, payer_balance)
        self._balances[payer] = payer_balance - amount
        self._balances[payee] += amount
        if settlement_key is not None:
            self._settled.add(settlement_key)
        transaction = Transaction(
            time=float(time), payer=payer, payee=payee,
            amount=float(amount), reason=reason,
            settlement_key=settlement_key,
        )
        self._transactions.append(transaction)
        if self.trace.enabled:
            record = {
                "type": "transfer-payment", "t": float(time),
                "payer": payer, "payee": payee,
                "amount": float(amount), "reason": reason,
            }
            if settlement_key is not None:
                record["key"] = settlement_key
            self.trace.emit(record)
        return transaction

    # ------------------------------------------------------------------
    # Escrow
    # ------------------------------------------------------------------
    def escrow(
        self,
        payer: int,
        amount: float,
        *,
        time: float,
        reason: str = "",
        expires_at: Optional[float] = None,
    ) -> int:
        """Debit ``payer`` and hold the tokens in escrow.

        The incentive protocol settles payments *before* a transfer;
        escrow keeps the tokens out of circulation until the transfer
        either completes (:meth:`capture`) or aborts (:meth:`release`),
        so a refund can never fail because the payee already spent it.

        Args:
            expires_at: Optional absolute time after which
                :meth:`expire_holds` may reclaim the hold for the
                payer — the safety valve against escrow stranded by a
                holder that died mid-exchange.

        Returns:
            A hold id for :meth:`capture` / :meth:`release`.

        Raises:
            InsufficientTokensError: If the payer cannot cover ``amount``.
        """
        if amount < 0:
            raise ConfigurationError(f"amount must be >= 0, got {amount!r}")
        balance = self.balance(payer)
        if balance < amount:
            raise InsufficientTokensError(str(payer), amount, balance)
        self._balances[payer] = balance - amount
        hold_id = self._next_hold
        self._next_hold += 1
        self._holds[hold_id] = (payer, float(amount), reason)
        if expires_at is not None:
            self._hold_expiries[hold_id] = float(expires_at)
        if self.trace.enabled:
            record = {
                "type": "escrow-hold", "t": float(time),
                "hold": hold_id, "payer": payer,
                "amount": float(amount), "reason": reason,
            }
            if expires_at is not None:
                record["expires_at"] = float(expires_at)
            self.trace.emit(record)
        return hold_id

    def capture(
        self,
        hold_id: int,
        payee: int,
        *,
        time: float,
        settlement_key: Optional[str] = None,
    ) -> Optional[Transaction]:
        """Pay escrowed tokens out to ``payee`` (the transfer landed).

        When ``settlement_key`` is given and was already settled, the
        capture is idempotent: the hold is *refunded to the payer*
        instead of paying the payee twice, ``None`` is returned, and
        :attr:`duplicate_settlements` is incremented.
        """
        payer, amount, reason = self._pop_hold(hold_id)
        self.balance(payee)  # validate the payee account exists
        if settlement_key is not None and settlement_key in self._settled:
            self._balances[payer] += amount
            self.duplicate_settlements += 1
            if self.trace.enabled:
                self.trace.emit({
                    "type": "escrow-duplicate", "t": float(time),
                    "hold": hold_id, "payer": payer, "payee": payee,
                    "amount": amount, "key": settlement_key,
                })
            return None
        self._balances[payee] += amount
        if settlement_key is not None:
            self._settled.add(settlement_key)
        transaction = Transaction(
            time=float(time), payer=payer, payee=payee,
            amount=amount, reason=reason,
            settlement_key=settlement_key,
        )
        self._transactions.append(transaction)
        if self.trace.enabled:
            record = {
                "type": "escrow-capture", "t": float(time),
                "hold": hold_id, "payer": payer, "payee": payee,
                "amount": amount, "reason": reason,
            }
            if settlement_key is not None:
                record["key"] = settlement_key
            self.trace.emit(record)
        return transaction

    def hold_exists(self, hold_id: int) -> bool:
        """Whether ``hold_id`` is still outstanding.

        The abort path checks this before releasing: a hold that
        :meth:`expire_holds` already reclaimed must not be refunded a
        second time, and an explicit check distinguishes that expected
        race from a genuine bookkeeping bug (which should raise).
        """
        return hold_id in self._holds

    def release(
        self, hold_id: int, *, time: float, cause: str = "abort"
    ) -> None:
        """Return escrowed tokens to the payer.

        Args:
            cause: Audit tag for the trace — ``"abort"`` (the transfer
                died), ``"expiry"`` (the hold timed out) or
                ``"finalize"`` (end-of-run drain).
        """
        payer, amount, _reason = self._pop_hold(hold_id)
        self._balances[payer] += amount
        if self.trace.enabled:
            self.trace.emit({
                "type": "escrow-release", "t": float(time),
                "hold": hold_id, "payer": payer,
                "amount": amount, "cause": cause,
            })

    def expire_holds(self, now: float) -> float:
        """Release every hold whose expiry time has passed.

        Returns:
            Total tokens returned to their payers.
        """
        due = sorted(
            hold_id for hold_id, expires_at in self._hold_expiries.items()
            if expires_at <= now and hold_id in self._holds
        )
        reclaimed = 0.0
        for hold_id in due:
            _payer, amount, _reason = self._holds[hold_id]
            self.release(hold_id, time=now, cause="expiry")
            reclaimed += amount
        return reclaimed

    def release_all(self, *, time: float) -> float:
        """Release every outstanding hold (end-of-run escrow drain).

        Returns:
            Total tokens returned to their payers.
        """
        reclaimed = 0.0
        for hold_id in sorted(self._holds):
            _payer, amount, _reason = self._holds[hold_id]
            self.release(hold_id, time=time, cause="finalize")
            reclaimed += amount
        return reclaimed

    def _pop_hold(self, hold_id: int) -> Tuple[int, float, str]:
        self._hold_expiries.pop(hold_id, None)
        try:
            return self._holds.pop(hold_id)
        except KeyError:
            raise LedgerError(
                f"escrow hold {hold_id} does not exist or was already settled"
            ) from None

    def escrowed_total(self) -> float:
        """Tokens currently held in escrow."""
        return sum(amount for _, amount, _ in self._holds.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def transactions(self) -> Tuple[Transaction, ...]:
        """All settled transfers in order."""
        return tuple(self._transactions)

    def total_supply(self) -> float:
        """Sum of all balances plus escrow (equals the endowment sum)."""
        return sum(self._balances.values()) + self.escrowed_total()

    def total_endowment(self) -> float:
        """Sum of all initial endowments."""
        return sum(self._initial.values())

    def balances(self) -> Dict[int, float]:
        """A snapshot of every balance."""
        return dict(self._balances)

    def earnings(self, node_id: int) -> float:
        """Net tokens gained (or lost, negative) since the endowment."""
        return self.balance(node_id) - self.initial_balance(node_id)

    def volume_by_reason(self) -> Dict[str, float]:
        """Total tokens moved per audit reason."""
        volume: Dict[str, float] = {}
        for transaction in self._transactions:
            volume[transaction.reason] = (
                volume.get(transaction.reason, 0.0) + transaction.amount
            )
        return volume
