"""The operator functions of Paper I Section 4 as a public facade.

The thesis specifies eleven user/system functions (Annotate, Subscribe,
DecayWeights, IncrementWeights, GetMessagesToForward, DecideDestOrRelay,
DecideBestRelay, ComputeIncentive, RateMessage, RateNode, Enrich).  The
:class:`Operators` facade exposes each one against a running
:class:`~repro.core.protocol.IncentiveChitChatRouter`, so applications
(and the examples in ``examples/``) can drive the mechanism exactly the
way the Android demo app of Paper II does.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.protocol import IncentiveChitChatRouter
from repro.errors import ConfigurationError
from repro.messages.message import Message, Priority

__all__ = ["Operators"]


class Operators:
    """Paper I Section 4 operator functions over a bound protocol.

    Args:
        protocol: An :class:`IncentiveChitChatRouter` already bound to a
            world (i.e. after the world was constructed with it).
    """

    def __init__(self, protocol: IncentiveChitChatRouter):
        self._protocol = protocol

    @property
    def _world(self):
        return self._protocol.world

    # -- Function 1: Annotate ------------------------------------------
    def annotate(
        self,
        source: int,
        content: Iterable[str],
        labels: Sequence[str],
        *,
        size: int = 1_000_000,
        quality: float = 0.8,
        priority: Priority = Priority.MEDIUM,
        location: Optional[Tuple[float, float]] = None,
    ) -> Message:
        """Create and inject an annotated message (operator *Annotate*).

        ``content`` is the ground truth of what the image shows (the
        cloud-vision + human-knowledge union); ``labels`` are the
        keywords the user saved, each starting at ChitChat weight 0.5.
        """
        message = Message(
            source=source,
            created_at=self._world.now,
            size=size,
            quality=quality,
            priority=priority,
            content=frozenset(content),
            keywords=tuple(labels),
            location=location,
        )
        self._world.inject_message(message)
        return message

    # -- Function 2: Subscribe -----------------------------------------
    def subscribe(self, node_id: int, interests: Sequence[str]) -> None:
        """Add direct keyword subscriptions for a user."""
        node = self._world.node(node_id)
        node.interests = frozenset(node.interests) | frozenset(interests)
        table = self._protocol.table(node_id)
        for keyword in interests:
            table.add_direct(keyword, self._world.now)

    # -- Function 3: DecayWeights --------------------------------------
    def decay_weights(self, node_id: int) -> dict:
        """Run the ChitChat decay phase; returns keyword -> new weight."""
        table = self._protocol.table(node_id)
        connected = self._protocol._connected_keywords(node_id)
        table.decay(self._world.now, connected, beta=self._protocol.beta)
        return {k: table.weight(k) for k in table.keywords}

    # -- Function 4: IncrementWeights ----------------------------------
    def increment_weights(
        self, node_id: int, peer_id: int, elapsed: float
    ) -> dict:
        """Run the ChitChat growth phase against a peer's table."""
        table = self._protocol.table(node_id)
        peer_table = self._protocol.table(peer_id)
        table.grow_from(
            peer_table, self._world.now, elapsed,
            growth_scale=self._protocol.growth_scale,
            elapsed_cap=self._protocol.growth_elapsed_cap,
        )
        return {k: table.weight(k) for k in table.keywords}

    # -- Function 5: GetMessagesToForward ------------------------------
    def get_messages_to_forward(
        self, sender_id: int, receiver_id: int
    ) -> List[Message]:
        """Messages the sender should offer the receiver."""
        return [
            message for message, _role in
            self._protocol.select_messages(sender_id, receiver_id)
        ]

    # -- Function 6: DecideDestOrRelay ---------------------------------
    def decide_dest_or_relay(self, message: Message, node_id: int) -> str:
        """``"destination"`` or ``"relay"`` for the connected node."""
        return self._protocol.classify(node_id, message)

    # -- Function 7: DecideBestRelay -----------------------------------
    def decide_best_relay(
        self, candidates: Sequence[int], message: Message
    ) -> int:
        """The candidate with the strongest interest in the message.

        Raises:
            ConfigurationError: For an empty candidate list.
        """
        if not candidates:
            raise ConfigurationError("candidates must be non-empty")
        return max(
            candidates,
            key=lambda node_id: (
                self._protocol.interest_sum(node_id, message), -node_id
            ),
        )

    # -- Function 8: ComputeIncentive ----------------------------------
    def compute_incentive(
        self, message: Message, sender_id: int, receiver_id: int
    ) -> float:
        """The promise for forwarding ``message`` to the connected node.

        Requires an open link between the two devices (incentives are
        negotiated in-contact).
        """
        link = self._world.link_between(sender_id, receiver_id)
        if link is None:
            raise ConfigurationError(
                f"nodes {sender_id} and {receiver_id} are not connected"
            )
        sender = self._world.node(sender_id)
        receiver = self._world.node(receiver_id)
        return self._protocol.compute_promise(
            sender, receiver, message, link,
            deliverer_is_relay=message.source != sender_id,
        )

    # -- Function 9: RateMessage ---------------------------------------
    def rate_message(
        self, rater_id: int, message: Message,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Rate a received message (quality + tag truthfulness).

        Updates the rater's reputation book for the source and returns
        the message rating ``R_i``.
        """
        generator = rng if rng is not None else self._world.streams.get(
            "incentive"
        )
        rating = self._protocol.rating_model.rate_source(message, generator)
        if message.source != rater_id:
            self._protocol.reputation.book(rater_id).rate_message(
                message.source, rating
            )
        return rating

    # -- Function 10: RateNode -----------------------------------------
    def rate_node(self, observer_id: int, subject_id: int) -> float:
        """Current device rating of ``subject`` at ``observer``."""
        return self._protocol.reputation.book(observer_id).score(subject_id)

    # -- Whole-population analytics ------------------------------------
    def interest_matrix(self) -> Tuple[List[int], List[str], np.ndarray]:
        """Dense ``[node x keyword]`` snapshot of current weights.

        Returns ``(node_ids, keywords, weights)`` where
        ``weights[i, j]`` is node ``node_ids[i]``'s ChitChat weight for
        ``keywords[j]`` (0.0 for keywords the node holds no record of).
        Over the fused interest store (``SoAWorld``) this is a single
        row gather from the shared 2-D array; over per-node tables it
        is a scalar walk producing the same floats — absent rows hold
        exactly 0.0 in both backends.
        """
        node_ids = self._world.node_ids()
        # Materialise every table first: creation interns the node's
        # direct interests, and the keyword axis must cover them all.
        tables = [self._protocol.table(node_id) for node_id in node_ids]
        index = self._protocol.keyword_index
        keywords = [index.name_of(kid) for kid in range(len(index))]
        weights = np.zeros((len(node_ids), len(keywords)))
        for i, table in enumerate(tables):
            present = table._present[:len(keywords)]
            weights[i, np.flatnonzero(present)] = (
                table._weight[:len(keywords)][present]
            )
        return node_ids, keywords, weights

    # -- Function 11: Enrich -------------------------------------------
    def enrich(
        self, node_id: int, message: Message, annotations: Sequence[str]
    ) -> List[str]:
        """Add user-supplied annotations to an in-transit message.

        Returns:
            The keywords actually added (duplicates are skipped).
        """
        added: List[str] = []
        for keyword in annotations:
            if message.annotate(keyword, node_id, self._world.now):
                added.append(keyword)
                self._world.metrics.on_enrichment(
                    relevant=message.is_relevant(keyword)
                )
        return added
