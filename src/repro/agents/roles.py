"""User role hierarchies.

The incentive formula divides by the sending user's rank ``R_u`` (1 is
the top of the hierarchy — a Sergeant in the paper's battlefield
example, with Soldiers at 2, and so on), so senior users' messages
carry larger promises.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["RoleHierarchy"]


class RoleHierarchy:
    """Named ranks with a population distribution.

    Args:
        levels: Rank names ordered from the top (rank 1) downward, e.g.
            ``("sergeant", "soldier")``.
        fractions: Population share per rank; must sum to 1.

    Example:
        >>> hierarchy = RoleHierarchy(("sergeant", "soldier"), (0.1, 0.9))
        >>> hierarchy.rank_of("sergeant")
        1
    """

    def __init__(
        self,
        levels: Sequence[str] = ("sergeant", "soldier"),
        fractions: Sequence[float] = (0.1, 0.9),
    ):
        if not levels:
            raise ConfigurationError("at least one role level is required")
        if len(levels) != len(fractions):
            raise ConfigurationError(
                f"{len(levels)} levels but {len(fractions)} fractions"
            )
        if len(set(levels)) != len(levels):
            raise ConfigurationError("role names must be unique")
        if any(f < 0 for f in fractions):
            raise ConfigurationError("fractions must be >= 0")
        total = sum(fractions)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"role fractions must sum to 1, got {total!r}"
            )
        self._levels: Tuple[str, ...] = tuple(levels)
        self._fractions: Tuple[float, ...] = tuple(float(f) for f in fractions)

    @property
    def levels(self) -> Tuple[str, ...]:
        """Rank names from the top down."""
        return self._levels

    def rank_of(self, level: str) -> int:
        """Numeric rank of ``level`` (1 = top).

        Raises:
            ConfigurationError: For unknown level names.
        """
        try:
            return self._levels.index(level) + 1
        except ValueError:
            raise ConfigurationError(f"unknown role level {level!r}") from None

    def name_of(self, rank: int) -> str:
        """Name of numeric ``rank``."""
        if not 1 <= rank <= len(self._levels):
            raise ConfigurationError(
                f"rank must be in [1, {len(self._levels)}], got {rank}"
            )
        return self._levels[rank - 1]

    def assign(
        self, node_ids: Sequence[int], rng: np.random.Generator
    ) -> Dict[int, int]:
        """Randomly assign a rank to every node per the distribution."""
        ids: List[int] = list(node_ids)
        ranks = rng.choice(
            np.arange(1, len(self._levels) + 1),
            size=len(ids),
            p=np.array(self._fractions),
        )
        return {node_id: int(rank) for node_id, rank in zip(ids, ranks)}
