"""Attack models against the reputation system.

Two classic attacks the thesis's related work discusses:

* **Whitewashing** (Paper I ref [27], Ayday & Fekri): a node whose
  reputation has been ruined cancels its account and rejoins under a
  fresh identity, wiping every observer's opinion.  Whether that pays
  off depends entirely on what a *fresh* identity is worth — i.e. the
  DRM's ``default_rating`` — which :class:`WhitewashAttack` lets an
  experiment measure.
* **Collusive praise**: malicious raters give fellow attackers perfect
  ratings (instead of random noise), trying to prop up each other's
  reputation; the defence is the DRM's alpha-weighting of own
  observations over hearsay.  Collusion is a flag on
  :class:`~repro.core.protocol.IncentiveChitChatRouter`.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.engine import Engine
from repro.sim.process import PeriodicProcess

__all__ = ["WhitewashAttack"]


class WhitewashAttack:
    """Periodic identity-laundering by a set of attacker nodes.

    Every ``check_interval`` seconds, each attacker inspects its average
    reputation among the observer population; if it has fallen below
    ``wash_threshold``, the attacker "re-registers": every book's
    opinion of it is erased, so it is judged as an unknown node again.

    Args:
        engine: The simulation engine to schedule checks on.
        reputation: Any reputation system exposing ``average_score_of``
            and ``forget_subject`` (both the averaging DRM and the
            Bayesian variant qualify).
        attackers: Node ids performing the attack.
        observers: The population whose opinions are inspected/erased.
        wash_threshold: Reputation below which the attacker washes.
        check_interval: Seconds between checks.
    """

    def __init__(
        self,
        engine: Engine,
        reputation,
        attackers: Iterable[int],
        observers: Iterable[int],
        *,
        wash_threshold: float = 2.0,
        check_interval: float = 600.0,
    ):
        if check_interval <= 0:
            raise ConfigurationError(
                f"check_interval must be > 0, got {check_interval!r}"
            )
        if wash_threshold < 0:
            raise ConfigurationError(
                f"wash_threshold must be >= 0, got {wash_threshold!r}"
            )
        self._engine = engine
        self._reputation = reputation
        self._attackers = sorted(set(attackers))
        self._observers = sorted(set(observers))
        self.wash_threshold = float(wash_threshold)
        #: ``(time, attacker)`` log of successful washes.
        self.washes: List[Tuple[float, int]] = []
        self._process = PeriodicProcess(
            engine, check_interval, self._check,
            start_at=engine.now + check_interval, label="whitewash-attack",
        )

    @property
    def wash_count(self) -> int:
        """Total identity washes performed."""
        return len(self.washes)

    def start(self) -> None:
        """Arm the periodic reputation checks."""
        self._process.start()

    def stop(self) -> None:
        """Disarm the attack."""
        self._process.stop()

    def _check(self, now: float) -> None:
        for attacker in self._attackers:
            score = self._reputation.average_score_of(
                attacker, self._observers
            )
            if score < self.wash_threshold:
                erased = self._reputation.forget_subject(attacker)
                if erased:
                    self.washes.append((now, attacker))
