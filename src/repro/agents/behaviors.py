"""Node behaviour profiles.

The evaluation distinguishes three populations:

* **Honest** nodes cooperate fully.
* **Selfish** nodes keep their communication medium off for most
  encounters — the paper's experiment A has them participate "one out
  of ten times", which is why MDR never reaches zero even at 100 %
  selfish nodes.
* **Malicious** nodes generate low-quality messages and add irrelevant
  tags to in-transit messages, chasing tag incentives; the DRM exists
  to identify them (Fig. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["BehaviorProfile", "assign_behaviors"]


@dataclass(frozen=True)
class BehaviorProfile:
    """One node's disposition.

    Attributes:
        selfish: Whether the node's radio is mostly off.
        malicious: Whether the node games the incentive mechanism.
        participation_probability: Chance a selfish node participates in
            a given encounter (paper: 0.1).
        low_quality_probability: Chance a malicious node's generated
            message is low quality.
    """

    selfish: bool = False
    malicious: bool = False
    participation_probability: float = 0.1
    low_quality_probability: float = 0.8

    def __post_init__(self) -> None:
        for name in ("participation_probability", "low_quality_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")

    # The world duck-types against these two hooks.
    def contact_enabled(self, rng: np.random.Generator) -> bool:
        """Whether the node joins this encounter (radio on)."""
        if not self.selfish:
            return True
        return bool(rng.random() < self.participation_probability)

    def creates_low_quality(self, rng: np.random.Generator) -> bool:
        """Whether a generated message should be low quality."""
        if not self.malicious:
            return False
        return bool(rng.random() < self.low_quality_probability)


HONEST = BehaviorProfile()


def assign_behaviors(
    node_ids: Sequence[int],
    rng: np.random.Generator,
    *,
    selfish_fraction: float = 0.0,
    malicious_fraction: float = 0.0,
    participation_probability: float = 0.1,
    low_quality_probability: float = 0.8,
) -> Dict[int, BehaviorProfile]:
    """Randomly assign selfish / malicious profiles to a population.

    The selfish and malicious sets are drawn independently from disjoint
    pools (selfish first), matching the paper's experiments which vary
    one fraction at a time.

    Returns:
        ``node_id -> BehaviorProfile`` for every node.
    """
    for name, value in (
        ("selfish_fraction", selfish_fraction),
        ("malicious_fraction", malicious_fraction),
    ):
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1]")
    if selfish_fraction + malicious_fraction > 1.0 + 1e-9:
        raise ConfigurationError(
            "selfish and malicious fractions must sum to at most 1"
        )
    ids: List[int] = list(node_ids)
    n = len(ids)
    n_selfish = round(n * selfish_fraction)
    n_malicious = round(n * malicious_fraction)
    if n_selfish + n_malicious > n:
        n_malicious = n - n_selfish
    shuffled = list(ids)
    rng.shuffle(shuffled)
    selfish_ids = set(shuffled[:n_selfish])
    malicious_ids = set(shuffled[n_selfish:n_selfish + n_malicious])

    profiles: Dict[int, BehaviorProfile] = {}
    for node_id in ids:
        profiles[node_id] = BehaviorProfile(
            selfish=node_id in selfish_ids,
            malicious=node_id in malicious_ids,
            participation_probability=participation_probability,
            low_quality_probability=low_quality_probability,
        )
    return profiles
