"""Node behaviour profiles (honest / selfish / malicious) and role
hierarchies."""

from repro.agents.behaviors import BehaviorProfile, assign_behaviors
from repro.agents.roles import RoleHierarchy

__all__ = ["BehaviorProfile", "assign_behaviors", "RoleHierarchy"]
