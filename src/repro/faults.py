"""Deterministic fault injection for robustness studies.

The paper evaluates its incentive mechanism on *ideal* contacts: every
transfer that fits in a contact window succeeds, every delivery receipt
settles exactly once, and nodes never crash.  Real DTNs are defined by
the opposite regime — lossy links, devices that die and come back, and
batteries that run dry — and a credit/reputation layer is only
trustworthy if it degrades gracefully under those faults instead of
leaking tokens or double-paying.

This module provides that adversarial substrate.  All fault processes
are driven by dedicated named RNG streams (``"fault-loss"``,
``"fault-churn"``) derived from the run's master seed, so fault
scenarios are exactly as reproducible as fault-free ones, and a
:class:`FaultConfig` whose every knob is zero is *bit-identical* to no
fault injection at all (no streams are created, no events scheduled).

Three fault processes are modelled:

* **Link-layer loss / corruption** — each transfer that would complete
  independently fails with ``loss_probability`` or arrives corrupted
  with ``corruption_probability``.  Both are decided at the instant the
  transfer would finish (the bytes were sent; the frame was lost or
  mangled in flight), so energy is still spent and the abort is
  distinguishable from a mobility abort via
  :attr:`~repro.network.link.Transfer.abort_reason`.
* **Node churn** — each node alternates exponential uptime/downtime
  windows.  A crashed node tears down its links (abort reason
  ``"churn"``), forms no contacts, and originates no messages while
  down.  The state policy decides what a restart recovers:
  ``"wipe"`` clears the buffer and the dedup ``seen`` set (delivery
  receipts and reputation books survive, as they live in the
  distributed ledger abstraction), ``"persist"`` models flash-backed
  storage that survives the outage.
* **Energy blackouts** — when the world runs with finite batteries, a
  node whose battery depletes drops its links (abort reason
  ``"blackout"``) and stops participating; the optional recharge
  process tops batteries back up so blacked-out nodes eventually
  rejoin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Set

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.network.link import Transfer
    from repro.network.world import World

__all__ = ["FaultConfig", "FaultInjector", "CHURN_POLICIES"]

#: Valid crash/restart state policies.
CHURN_POLICIES = ("wipe", "persist")


@dataclass(frozen=True)
class FaultConfig:
    """Knobs for every fault process, all off by default.

    Attributes:
        loss_probability: Chance each completing transfer is lost in
            flight (aborted with reason ``"loss"``).
        corruption_probability: Chance each completing transfer arrives
            corrupted and is discarded (reason ``"corruption"``).
            ``loss_probability + corruption_probability`` must be <= 1.
        mean_uptime: Mean of the exponential uptime window between node
            crashes, seconds; ``0`` disables churn.
        mean_downtime: Mean of the exponential outage window, seconds.
        churn_policy: What a restart recovers — ``"wipe"`` loses the
            buffer and dedup memory, ``"persist"`` keeps both.
        recharge_interval: Period of the battery recharge process,
            seconds; ``0`` disables recharging.  Only meaningful when
            the world runs with ``battery_capacity`` set.
        recharge_amount: Joules restored per recharge tick (capped at
            the battery capacity).
    """

    loss_probability: float = 0.0
    corruption_probability: float = 0.0
    mean_uptime: float = 0.0
    mean_downtime: float = 600.0
    churn_policy: str = "wipe"
    recharge_interval: float = 0.0
    recharge_amount: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_probability", "corruption_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {value!r}"
                )
        if self.loss_probability + self.corruption_probability > 1.0:
            raise ConfigurationError(
                "loss_probability + corruption_probability must be <= 1, "
                f"got {self.loss_probability + self.corruption_probability!r}"
            )
        for name in ("mean_uptime", "mean_downtime", "recharge_interval",
                     "recharge_amount"):
            value = getattr(self, name)
            if value < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0, got {value!r}"
                )
        if self.mean_uptime > 0 and self.mean_downtime <= 0:
            raise ConfigurationError(
                "mean_downtime must be > 0 when churn is enabled"
            )
        if self.churn_policy not in CHURN_POLICIES:
            raise ConfigurationError(
                f"churn_policy must be one of {CHURN_POLICIES}, "
                f"got {self.churn_policy!r}"
            )

    @property
    def lossy(self) -> bool:
        """Whether any per-transfer fault can fire."""
        return self.loss_probability > 0.0 or self.corruption_probability > 0.0

    @property
    def churning(self) -> bool:
        """Whether node churn is enabled."""
        return self.mean_uptime > 0.0

    @property
    def recharging(self) -> bool:
        """Whether the battery recharge process is enabled."""
        return self.recharge_interval > 0.0 and self.recharge_amount > 0.0

    @property
    def enabled(self) -> bool:
        """Whether any fault process is active.

        An all-zero config is equivalent to no fault injection at all;
        the world skips the injector entirely, keeping fault-free runs
        bit-identical to pre-fault-subsystem behaviour.
        """
        return self.lossy or self.churning or self.recharging


class FaultInjector:
    """Drives the configured fault processes against one :class:`World`.

    Created by the world when its scenario carries an enabled
    :class:`FaultConfig`; never instantiated for fault-free runs.  All
    randomness comes from the world's named streams so fault draws do
    not perturb mobility, workload, or behaviour draws.
    """

    def __init__(self, world: "World", config: FaultConfig):
        self.config = config
        self._world = world
        self._down: Set[int] = set()
        if config.lossy:
            self._loss_rng = world.streams.get("fault-loss")
        if config.churning:
            self._churn_rng = world.streams.get("fault-churn")
            # Seed every node's first crash in sorted-id order so the
            # draw sequence is independent of dict iteration order.
            for node_id in world.node_ids():
                self._schedule_crash(node_id)

    # ------------------------------------------------------------------
    # Link-layer loss / corruption
    # ------------------------------------------------------------------
    def transfer_verdict(self, transfer: "Transfer") -> Optional[str]:
        """Fault verdict for a transfer about to complete.

        Returns ``"loss"``, ``"corruption"``, or ``None`` (success).
        Installed as the link's fault hook only when the config is
        lossy, so fault-free links never draw.
        """
        draw = self._loss_rng.random()
        if draw < self.config.loss_probability:
            return "loss"
        if draw < (self.config.loss_probability
                   + self.config.corruption_probability):
            return "corruption"
        return None

    # ------------------------------------------------------------------
    # Node churn
    # ------------------------------------------------------------------
    def is_down(self, node_id: int) -> bool:
        """Whether ``node_id`` is currently crashed."""
        return node_id in self._down

    def _schedule_crash(self, node_id: int) -> None:
        delay = float(
            self._churn_rng.exponential(self.config.mean_uptime)
        )
        self._world.engine.schedule_in(
            delay,
            lambda: self._crash(node_id),
            priority=0,
            label=f"node-crash {node_id}",
        )

    def _schedule_restart(self, node_id: int) -> None:
        delay = float(
            self._churn_rng.exponential(self.config.mean_downtime)
        )
        self._world.engine.schedule_in(
            delay,
            lambda: self._restart(node_id),
            priority=1,
            label=f"node-restart {node_id}",
        )

    def _crash(self, node_id: int) -> None:
        if node_id in self._down:  # pragma: no cover - defensive
            return
        self._down.add(node_id)
        trace = self._world.trace
        if trace.enabled:
            trace.emit({
                "type": "fault-crash", "t": self._world.engine.now,
                "node": node_id,
                "wiped": self.config.churn_policy == "wipe",
            })
        self._world.on_node_crashed(
            node_id, wipe_state=self.config.churn_policy == "wipe"
        )
        self._schedule_restart(node_id)

    def _restart(self, node_id: int) -> None:
        self._down.discard(node_id)
        trace = self._world.trace
        if trace.enabled:
            trace.emit({
                "type": "fault-restart", "t": self._world.engine.now,
                "node": node_id,
            })
        self._world.on_node_restarted(node_id)
        self._schedule_crash(node_id)
