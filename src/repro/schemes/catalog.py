"""The built-in scheme catalog.

Every scheme the harness ships is registered here, in the historical
order of the old ``runner.SCHEMES`` tuple (new compositions append at
the end), so ``scheme_names()`` is a drop-in replacement for it.

The incentive family shows the payoff of the
:class:`~repro.core.incentive_layer.IncentiveLayer` split: the paper's
scheme is the layer over ChitChat, and the ``incentive-epidemic`` /
``incentive-prophet`` / ``incentive-spray-and-wait`` compositions are
the *same mechanism* — same ledger, escrow, reputation and enrichment
machinery, same trace/audit guarantees — over other substrates, each a
one-registration addition.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.bayesian_reputation import BayesianReputationSystem
from repro.core.enrichment import EnrichmentPolicy
from repro.core.incentive_layer import IncentiveLayer
from repro.core.protocol import IncentiveChitChatRouter
from repro.core.reputation import RatingModel
from repro.network.buffer import DropPolicy
from repro.routing.chitchat import ChitChatRouter
from repro.routing.direct import DirectContactRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.epidemic_variants import (
    ImmuneEpidemicRouter,
    PriorityEpidemicRouter,
)
from repro.routing.minority_game import MinorityGameChitChat
from repro.routing.nectar import NectarRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.relics import RelicsRouter
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.routing.tft import TitForTatRouter
from repro.routing.two_hop import TwoHopRouter
from repro.routing.two_hop_reward import TwoHopRewardRouter
from repro.schemes.registry import register

__all__ = []  # everything is exposed through the registry


def _chitchat_kwargs(config) -> dict:
    return dict(
        beta=config.chitchat_beta,
        growth_scale=config.chitchat_growth_scale,
        max_retransmissions=config.max_retransmissions,
        retransmit_backoff=config.retransmit_backoff,
    )


def _enrichment(config, universe) -> Optional[EnrichmentPolicy]:
    if not config.enrichment_enabled:
        return None
    return EnrichmentPolicy(
        universe,
        honest_probability=config.honest_enrich_probability,
        malicious_probability=config.malicious_enrich_probability,
    )


def _incentive_kwargs(config, universe, *, enrichment: bool = True) -> dict:
    return dict(
        params=config.incentive,
        enrichment=_enrichment(config, universe) if enrichment else None,
        rating_model=RatingModel(config.incentive),
        best_relay_only=config.best_relay_only,
    )


def _incentive_chitchat(config, universe, **overrides):
    kwargs = _incentive_kwargs(
        config, universe, enrichment=overrides.pop("enrichment", True)
    )
    kwargs.update(overrides)
    return IncentiveChitChatRouter(**kwargs, **_chitchat_kwargs(config))


def _layer_over(substrate_builder: Callable) -> Callable:
    """Builder for the incentive mechanism composed over a substrate."""
    def build(config, universe):
        return IncentiveLayer(
            substrate_builder(config, universe),
            **_incentive_kwargs(config, universe),
        )
    return build


# ----------------------------------------------------------------------
# The paper's scheme and its ablations (historical order preserved)
# ----------------------------------------------------------------------
register(
    "incentive",
    lambda config, universe: _incentive_chitchat(config, universe),
    doc="The paper's scheme: ChitChat + credit incentives + enrichment "
        "+ the Distributed Reputation Model.",
    tags=("token", "reputation", "incentive-layer", "paper-comparison"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)
register(
    "incentive-no-enrichment",
    lambda config, universe: _incentive_chitchat(
        config, universe, enrichment=False
    ),
    doc="Ablation: full incentive scheme with content enrichment "
        "disabled.",
    tags=("token", "reputation", "incentive-layer", "ablation"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)
register(
    "incentive-no-reputation",
    # Nobody ever rates, so every award uses the default reputation —
    # pure credit mechanism.
    lambda config, universe: _incentive_chitchat(
        config, universe,
        relay_rating_probability=0.0,
        destination_rating_probability=0.0,
    ),
    doc="Ablation: pure credit mechanism; nobody rates, every award "
        "uses the default reputation.",
    tags=("token", "incentive-layer", "ablation"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)
register(
    "incentive-bayesian",
    # REPSYS-style Beta reputation instead of the averaging DRM.
    lambda config, universe: _incentive_chitchat(
        config, universe,
        reputation=BayesianReputationSystem(config.incentive),
    ),
    doc="Ablation: Beta (Bayesian) reputation instead of the averaging "
        "DRM.",
    tags=("token", "reputation", "incentive-layer", "ablation"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)
register(
    "incentive-collusion",
    # Malicious raters praise each other (attack study).
    lambda config, universe: _incentive_chitchat(
        config, universe, collusion=True
    ),
    doc="Attack study: malicious raters collude, praising each other "
        "perfectly.",
    tags=("token", "reputation", "incentive-layer", "ablation"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)

# ----------------------------------------------------------------------
# Routing substrates (no economic mechanism)
# ----------------------------------------------------------------------
register(
    "chitchat",
    lambda config, universe: ChitChatRouter(**_chitchat_kwargs(config)),
    doc="Bare ChitChat: data-centric RTSR routing without incentives.",
    tags=("substrate", "paper-comparison"),
)
register(
    "epidemic",
    lambda config, universe: EpidemicRouter(),
    doc="Epidemic flooding (Vahdat & Becker): maximum delivery, "
        "maximum overhead.",
    tags=("substrate",),
)
register(
    "epidemic-priority",
    lambda config, universe: PriorityEpidemicRouter(),
    doc="Epidemic flooding that offers high-priority messages first.",
    tags=("substrate",),
)
register(
    "epidemic-immune",
    lambda config, universe: ImmuneEpidemicRouter(),
    doc="Epidemic flooding with delivery immunity (anti-packets).",
    tags=("substrate",),
)
register(
    "direct",
    lambda config, universe: DirectContactRouter(),
    doc="Direct contact only: the source delivers in person.",
    tags=("substrate",),
)
register(
    "two-hop",
    lambda config, universe: TwoHopRouter(),
    doc="Two-hop relay: the source sprays, relays deliver only.",
    tags=("substrate",),
)
register(
    "spray-and-wait",
    lambda config, universe: SprayAndWaitRouter(),
    doc="Binary Spray-and-Wait (Spyropoulos et al.): bounded logical "
        "copies.",
    tags=("substrate",),
)
register(
    "prophet",
    lambda config, universe: ProphetRouter(),
    doc="PRoPHET (Lindgren et al.): delivery-predictability routing.",
    tags=("substrate",),
)
register(
    "nectar",
    lambda config, universe: NectarRouter(),
    doc="NECTAR: neighborhood-contact-history routing.",
    tags=("substrate",),
)
register(
    "tit-for-tat",
    lambda config, universe: TitForTatRouter(),
    doc="Tit-for-tat: pairwise forwarding reciprocity.",
    tags=("substrate",),
)
register(
    "relics",
    lambda config, universe: RelicsRouter(),
    doc="RELICS: energy-aware reciprocity ranking.",
    tags=("substrate",),
)
register(
    "two-hop-reward",
    lambda config, universe: TwoHopRewardRouter(
        initial_tokens=config.incentive.initial_tokens,
        reward=config.incentive.max_incentive,
    ),
    doc="Two-hop first-deliverer-wins reward baseline (Seregina et "
        "al.), settled on a ledger.",
    tags=("token",),
)

# ----------------------------------------------------------------------
# The incentive mechanism composed over other substrates
# ----------------------------------------------------------------------
register(
    "incentive-epidemic",
    _layer_over(lambda config, universe: EpidemicRouter()),
    doc="The full incentive mechanism composed over epidemic flooding.",
    tags=("token", "reputation", "incentive-layer"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)
register(
    "incentive-prophet",
    _layer_over(lambda config, universe: ProphetRouter()),
    doc="The full incentive mechanism composed over PRoPHET.",
    tags=("token", "reputation", "incentive-layer"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)
register(
    "incentive-spray-and-wait",
    _layer_over(lambda config, universe: SprayAndWaitRouter()),
    doc="The full incentive mechanism composed over binary "
        "Spray-and-Wait.",
    tags=("token", "reputation", "incentive-layer"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)

# ----------------------------------------------------------------------
# Heterogeneous-population schemes
# ----------------------------------------------------------------------

#: Default per-class award factors for the class-tuned scheme, in the
#: spirit of El-Azouzi et al.'s heterogeneous-reward analysis: classes
#: whose relaying is cheap (mains-powered infrastructure, vehicles)
#: are paid less per delivery than battery-constrained pedestrians.
_HETERO_MULTIPLIERS = (
    ("pedestrian", 1.0),
    ("vehicular", 0.75),
    ("infrastructure", 0.5),
)


def _hetero_multipliers(config) -> dict:
    """Spec defaults overlaid by the run's configured classes.

    A class appearing in ``config.population`` always wins — its
    ``reward_multiplier`` (default 1.0) is the experimenter's explicit
    choice for that class, preset-derived classes included.
    """
    merged = dict(_HETERO_MULTIPLIERS)
    for cls in config.resolved_population():
        merged[cls.name] = cls.reward_multiplier
    return merged


register(
    "incentive-chitchat-hetero",
    lambda config, universe: _incentive_chitchat(
        config, universe,
        class_multipliers=_hetero_multipliers(config),
    ),
    doc="The paper's scheme with per-class delivery awards: "
        "battery-constrained classes are paid more than mains/vehicular "
        "relays.",
    tags=("token", "reputation", "incentive-layer"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
    class_multipliers=_HETERO_MULTIPLIERS,
)
register(
    "minority-game",
    _layer_over(
        lambda config, universe: MinorityGameChitChat(
            **_chitchat_kwargs(config)
        )
    ),
    doc="The incentive mechanism over ChitChat with minority-game "
        "participation: nodes redraw participate/defect every epoch and "
        "reinforce the minority side.",
    tags=("token", "reputation", "incentive-layer"),
    drop_policy=DropPolicy.DROP_LOWEST_PRIORITY,
)
