"""Scheme registry: the single source of truth for scheme names.

Importing this package registers the built-in catalog.  To add a
scheme, write a builder ``(config, universe) -> Router`` and register
it (see ``repro/schemes/catalog.py``); the runner, CLI, figures and
tag-driven property tests pick it up with no further edits.
"""

from repro.schemes.registry import (
    KNOWN_TAGS,
    SchemeSpec,
    all_specs,
    register,
    resolve_scheme,
    scheme_names,
    tagged,
)

# Populate the registry with the built-in schemes.
from repro.schemes import catalog  # noqa: E402,F401  (import for effect)

__all__ = [
    "KNOWN_TAGS",
    "SchemeSpec",
    "register",
    "resolve_scheme",
    "scheme_names",
    "all_specs",
    "tagged",
]
