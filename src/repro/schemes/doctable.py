"""The documentation tables, generated from the code's registries.

The scheme tables in ``EXPERIMENTS.md`` and ``README.md`` live between
``<!-- scheme-table-begin -->`` / ``<!-- scheme-table-end -->`` markers
and are *generated* from the registry by ``scripts/sync_scheme_docs.py``
(``--check`` in CI, bare to rewrite).  Registering a scheme and
re-running the script is the entire documentation step; a drifted table
fails both the CI check and ``tests/test_schemes.py``.

The population-preset table works the same way between
``<!-- population-table-begin/end -->`` markers, generated from
:data:`repro.population.PRESET_CLASSES` — that block is optional per
file (only the docs that discuss heterogeneity carry it).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.population import preset_rows
from repro.schemes.registry import all_specs

__all__ = [
    "BEGIN_MARKER",
    "END_MARKER",
    "POPULATION_BEGIN_MARKER",
    "POPULATION_END_MARKER",
    "markdown_table",
    "population_markdown_table",
    "sync_file",
]

BEGIN_MARKER = "<!-- scheme-table-begin -->"
END_MARKER = "<!-- scheme-table-end -->"
POPULATION_BEGIN_MARKER = "<!-- population-table-begin -->"
POPULATION_END_MARKER = "<!-- population-table-end -->"

_BLOCK_RE = re.compile(
    re.escape(BEGIN_MARKER) + r".*?" + re.escape(END_MARKER), re.S
)
_POPULATION_BLOCK_RE = re.compile(
    re.escape(POPULATION_BEGIN_MARKER)
    + r".*?"
    + re.escape(POPULATION_END_MARKER),
    re.S,
)


def markdown_table() -> str:
    """One row per registered scheme, in registration order."""
    lines = [
        "| Scheme | Tags | Description |",
        "| --- | --- | --- |",
    ]
    for spec in all_specs():
        tags = ", ".join(sorted(spec.tags)) if spec.tags else "—"
        lines.append(f"| `{spec.name}` | {tags} | {spec.doc} |")
    return "\n".join(lines)


def population_markdown_table() -> str:
    """One row per population preset class."""
    header = (
        "Class", "Mobility", "Speed", "Radio radius", "Buffer",
        "Award multiplier",
    )
    lines = [
        "| " + " | ".join(header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in preset_rows():
        cells = [f"`{row[0]}`"] + [str(cell) for cell in row[1:]]
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def render_block() -> str:
    """The scheme block as it should appear in the docs."""
    return f"{BEGIN_MARKER}\n{markdown_table()}\n{END_MARKER}"


def render_population_block() -> str:
    """The population-preset block as it should appear in the docs."""
    return (
        f"{POPULATION_BEGIN_MARKER}\n"
        f"{population_markdown_table()}\n"
        f"{POPULATION_END_MARKER}"
    )


def sync_file(path: Path, *, check: bool = False) -> bool:
    """Regenerate the marker blocks in ``path``; return True if in sync.

    With ``check=True`` the file is never written — a stale table just
    returns False so the caller can fail CI.  The scheme block is
    mandatory; the population block is synced only where the markers
    exist.

    Raises:
        ValueError: If the file lacks the scheme marker pair (a
            silently missing table must not pass as "in sync").
    """
    text = path.read_text(encoding="utf-8")
    if not _BLOCK_RE.search(text):
        raise ValueError(
            f"{path} lacks the scheme-table markers "
            f"({BEGIN_MARKER} … {END_MARKER})"
        )
    updated = _BLOCK_RE.sub(lambda _match: render_block(), text)
    updated = _POPULATION_BLOCK_RE.sub(
        lambda _match: render_population_block(), updated
    )
    if updated == text:
        return True
    if not check:
        path.write_text(updated, encoding="utf-8")
    return False
