"""The documentation scheme table, generated from the registry.

The scheme tables in ``EXPERIMENTS.md`` and ``README.md`` live between
``<!-- scheme-table-begin -->`` / ``<!-- scheme-table-end -->`` markers
and are *generated* from the registry by ``scripts/sync_scheme_docs.py``
(``--check`` in CI, bare to rewrite).  Registering a scheme and
re-running the script is the entire documentation step; a drifted table
fails both the CI check and ``tests/test_schemes.py``.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.schemes.registry import all_specs

__all__ = ["BEGIN_MARKER", "END_MARKER", "markdown_table", "sync_file"]

BEGIN_MARKER = "<!-- scheme-table-begin -->"
END_MARKER = "<!-- scheme-table-end -->"

_BLOCK_RE = re.compile(
    re.escape(BEGIN_MARKER) + r".*?" + re.escape(END_MARKER), re.S
)


def markdown_table() -> str:
    """One row per registered scheme, in registration order."""
    lines = [
        "| Scheme | Tags | Description |",
        "| --- | --- | --- |",
    ]
    for spec in all_specs():
        tags = ", ".join(sorted(spec.tags)) if spec.tags else "—"
        lines.append(f"| `{spec.name}` | {tags} | {spec.doc} |")
    return "\n".join(lines)


def render_block() -> str:
    """The full marker-delimited block as it should appear in the docs."""
    return f"{BEGIN_MARKER}\n{markdown_table()}\n{END_MARKER}"


def sync_file(path: Path, *, check: bool = False) -> bool:
    """Regenerate the marker block in ``path``; return True if in sync.

    With ``check=True`` the file is never written — a stale table just
    returns False so the caller can fail CI.

    Raises:
        ValueError: If the file lacks the marker pair (a silently
            missing table must not pass as "in sync").
    """
    text = path.read_text(encoding="utf-8")
    if not _BLOCK_RE.search(text):
        raise ValueError(
            f"{path} lacks the scheme-table markers "
            f"({BEGIN_MARKER} … {END_MARKER})"
        )
    updated = _BLOCK_RE.sub(lambda _match: render_block(), text)
    if updated == text:
        return True
    if not check:
        path.write_text(updated, encoding="utf-8")
    return False
