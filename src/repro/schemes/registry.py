"""Declarative scheme registry.

A *scheme* is a named, fully-configured router construction: the string
users pass to ``run_scenario`` / ``repro-dtn run --scheme``.  The
registry is the single source of truth for scheme names — the CLI's
``choices``, the runner's dispatch, figure/sweep scheme lists and the
documentation tables are all derived from (and tested against) it, so
registering a scheme here is the *only* step needed to plug a new
router into the whole harness.

A registration is a :class:`SchemeSpec`:

* ``name`` — the public scheme name (kebab-case);
* ``builder`` — ``(config, universe) -> Router``, called once per run;
* ``tags`` — capability/grouping markers (see :data:`KNOWN_TAGS`);
  property tests iterate tags rather than hard-coded name lists, so a
  new ``token`` scheme is automatically covered by the conservation
  audit without editing any test;
* ``doc`` — one line for ``repro-dtn schemes`` and the docs tables;
* ``drop_policy`` — the buffer eviction policy the scheme's rational
  nodes use (token schemes evict low-priority messages first, since
  custody of a high-priority message is worth more).

Specs are resolved through :func:`resolve_scheme`, which raises
:class:`~repro.errors.ConfigurationError` naming every registered
scheme — the one place an unknown scheme name can fail, at config/parse
time rather than mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Tuple

from repro.errors import ConfigurationError
from repro.network.buffer import DropPolicy

__all__ = [
    "KNOWN_TAGS",
    "SchemeSpec",
    "register",
    "resolve_scheme",
    "scheme_names",
    "all_specs",
    "tagged",
]

#: The tag vocabulary.  Registration rejects unknown tags so a typo in
#: a new registration fails loudly instead of silently dropping the
#: scheme out of tag-driven test coverage.
KNOWN_TAGS: FrozenSet[str] = frozenset({
    # The scheme settles payments on a TokenLedger: covered by the
    # conservation + trace-audit property tests.
    "token",
    # The scheme runs a reputation system that actually receives
    # ratings (the no-reputation ablation is deliberately untagged).
    "reputation",
    # A plain routing substrate with no economic mechanism.
    "substrate",
    # Built as an IncentiveLayer composition over a substrate.
    "incentive-layer",
    # Ablation / attack-study variant of the paper's scheme.
    "ablation",
    # The head-to-head pair the paper's figures compare
    # (exactly: the proposed scheme and bare ChitChat).
    "paper-comparison",
})


@dataclass(frozen=True)
class SchemeSpec:
    """One registered scheme: everything the harness knows about it."""

    #: Public scheme name (what ``--scheme`` accepts).
    name: str
    #: ``(config, universe) -> Router`` — fresh router for one run.
    builder: Callable
    #: One-line description for ``repro-dtn schemes`` and docs tables.
    doc: str
    #: Capability/grouping markers from :data:`KNOWN_TAGS`.
    tags: FrozenSet[str] = field(default_factory=frozenset)
    #: Buffer eviction policy for nodes running this scheme.
    drop_policy: DropPolicy = DropPolicy.DROP_OLDEST
    #: Per-population-class award factors as ``(class_name, factor)``
    #: pairs; empty for class-blind schemes.  Class-aware builders merge
    #: these defaults with the run's configured class
    #: ``reward_multiplier`` overrides before handing the mapping to the
    #: :class:`~repro.core.incentive_layer.IncentiveLayer`.
    class_multipliers: Tuple[Tuple[str, float], ...] = ()


# Insertion-ordered: scheme_names() preserves registration order, which
# the catalog keeps aligned with the historical SCHEMES tuple.
_REGISTRY: Dict[str, SchemeSpec] = {}


def register(
    name: str,
    builder: Callable,
    *,
    doc: str,
    tags: Tuple[str, ...] = (),
    drop_policy: DropPolicy = DropPolicy.DROP_OLDEST,
    class_multipliers: Tuple[Tuple[str, float], ...] = (),
) -> SchemeSpec:
    """Register a scheme; returns the spec for convenience.

    Raises:
        ConfigurationError: On duplicate names, unknown tags, or
            non-positive class multipliers.
    """
    if name in _REGISTRY:
        raise ConfigurationError(f"scheme {name!r} is already registered")
    unknown = set(tags) - KNOWN_TAGS
    if unknown:
        raise ConfigurationError(
            f"unknown scheme tags {sorted(unknown)}; "
            f"known tags: {sorted(KNOWN_TAGS)}"
        )
    for cls_name, factor in class_multipliers:
        if not factor > 0:
            raise ConfigurationError(
                f"scheme {name!r}: class multiplier for {cls_name!r} "
                f"must be > 0, got {factor!r}"
            )
    spec = SchemeSpec(
        name=name,
        builder=builder,
        doc=doc,
        tags=frozenset(tags),
        drop_policy=drop_policy,
        class_multipliers=tuple(
            (str(c), float(f)) for c, f in class_multipliers
        ),
    )
    _REGISTRY[name] = spec
    return spec


def resolve_scheme(name: str) -> SchemeSpec:
    """Look up a scheme by name.

    Raises:
        ConfigurationError: Naming every registered scheme, so an
            unknown ``--scheme`` fails at parse/config time with the
            full menu rather than mid-run with a bare KeyError.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheme {name!r}; choose one of "
            f"{tuple(sorted(_REGISTRY))}"
        ) from None


def scheme_names() -> Tuple[str, ...]:
    """Every registered scheme name, in registration order."""
    return tuple(_REGISTRY)


def all_specs() -> Tuple[SchemeSpec, ...]:
    """Every registered spec, in registration order."""
    return tuple(_REGISTRY.values())


def tagged(tag: str) -> Tuple[str, ...]:
    """Names of schemes carrying ``tag``, in registration order.

    Raises:
        ConfigurationError: For tags outside :data:`KNOWN_TAGS` — a
            misspelled tag in a test or figure would otherwise return
            an empty tuple and silently skip coverage.
    """
    if tag not in KNOWN_TAGS:
        raise ConfigurationError(
            f"unknown scheme tag {tag!r}; known tags: {sorted(KNOWN_TAGS)}"
        )
    return tuple(
        spec.name for spec in _REGISTRY.values() if tag in spec.tags
    )
