"""Command-line interface.

Usage::

    repro-dtn table          # print Table 5.1
    repro-dtn schemes        # list every registered scheme
    repro-dtn figure 5.1     # regenerate one figure (scaled grid)
    repro-dtn figure all     # regenerate every figure
    repro-dtn run --scheme incentive --selfish 0.2 --seed 1
    repro-dtn run --trace out/run.jsonl      # + JSONL event trace
    repro-dtn trace audit out/run.jsonl      # replay + conservation audit
    repro-dtn trace contacts contacts.jsonl  # save a contact trace
    repro-dtn hetero         # 3-class population comparison + audit
    repro-dtn faults --losses 0 0.1 0.3 --churn --retransmissions 2
    repro-dtn bench --quick --baseline benchmarks/BENCH_optimized.json

Pass ``--paper-scale`` to use the full Table 5.1 scenario (500 nodes,
24 simulated hours — expect minutes of wall-clock per run).

Pass ``--workers N`` to fan seed-averaged runs out over ``N`` processes
(``--workers 0`` means one per CPU core; results are bit-identical to
serial execution), and ``--trace-cache DIR`` to cache built contact
traces on disk (also configurable via the ``REPRO_TRACE_CACHE``
environment variable).
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from pathlib import Path
from typing import List, Optional

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import (
    fig5_1_mdr_vs_selfish,
    fig5_2_traffic_reduction,
    fig5_3_initial_tokens,
    fig5_4_malicious_ratings,
    fig5_5_mdr_vs_users,
    fig5_6_priority_mdr,
    table5_1_parameters,
)
from repro.experiments.runner import SCHEMES, run_scenario
from repro.metrics.reports import format_table
from repro.schemes import KNOWN_TAGS, all_specs, tagged

__all__ = ["main"]

_FIGURES = {
    "5.1": fig5_1_mdr_vs_selfish,
    "5.2": fig5_2_traffic_reduction,
    "5.3": fig5_3_initial_tokens,
    "5.4": fig5_4_malicious_ratings,
    "5.5": fig5_5_mdr_vs_users,
    "5.6": fig5_6_priority_mdr,
}


def _base_config(args: argparse.Namespace) -> ScenarioConfig:
    if args.paper_scale:
        return ScenarioConfig.paper_scale()
    return ScenarioConfig.small()


def _workers(args: argparse.Namespace) -> Optional[int]:
    """Map the --workers flag to the runner argument (0 -> all cores)."""
    return None if args.workers == 0 else args.workers


def _cmd_table(args: argparse.Namespace) -> int:
    # Table 5.1 is the paper's parameter table; always print the
    # paper-scale values (the scaled bench config is a harness detail).
    print(table5_1_parameters(ScenarioConfig.paper_scale()))
    return 0


def _cmd_schemes(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError

    specs = all_specs()
    if args.tag is not None:
        try:
            wanted = set(tagged(args.tag))
        except ConfigurationError:
            # Exit non-zero with the full vocabulary: a typo in a
            # script must fail loudly, not print an empty table.
            print(
                f"unknown scheme tag {args.tag!r}; known tags: "
                + " ".join(sorted(KNOWN_TAGS)),
                file=sys.stderr,
            )
            return 2
        specs = tuple(spec for spec in specs if spec.name in wanted)
    print(format_table(
        ["scheme", "tags", "description"],
        [
            [spec.name, ",".join(sorted(spec.tags)), spec.doc]
            for spec in specs
        ],
        title=f"{len(specs)} registered scheme(s)"
              + (f" tagged {args.tag!r}" if args.tag else ""),
    ))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    names = list(_FIGURES) if args.figure == "all" else [args.figure]
    unknown = [n for n in names if n not in _FIGURES]
    if unknown:
        print(
            f"unknown figure(s) {unknown}; choose from "
            f"{sorted(_FIGURES)} or 'all'",
            file=sys.stderr,
        )
        return 2
    seeds = tuple(range(1, args.seeds + 1))
    base = _base_config(args)
    for name in names:
        result = _FIGURES[name](base, seeds=seeds, workers=_workers(args))
        print(result.format())
        print()
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = _base_config(args).replace(
        selfish_fraction=args.selfish,
        malicious_fraction=args.malicious,
    )
    if args.nodes is not None:
        config = config.replace(n_nodes=args.nodes)
    if args.duration is not None:
        config = config.replace(duration=args.duration)
    result = run_scenario(
        config, args.scheme, args.seed, trace_path=args.trace
    )
    rows = sorted(result.summary().items())
    print(
        format_table(
            ["metric", "value"],
            [[key, value] for key, value in rows],
            title=f"scheme={args.scheme} seed={args.seed}",
        )
    )
    if result.trace_path is not None:
        print(f"wrote event trace to {result.trace_path}")
    return 0


def _cmd_trace_contacts(args: argparse.Namespace) -> int:
    from repro.experiments.runner import build_contact_trace
    from repro.mobility.one_trace import save_one_trace

    config = _base_config(args).replace(mobility=args.mobility)
    if args.nodes is not None:
        config = config.replace(n_nodes=args.nodes)
    if args.duration is not None:
        config = config.replace(duration=args.duration)
    trace = build_contact_trace(config, seed=args.seed)
    if args.format == "one":
        save_one_trace(trace, args.out)
    else:
        trace.save(args.out)
    print(
        f"wrote {len(trace)} contacts ({trace.total_contact_time():.0f} s "
        f"of contact time over {config.duration:.0f} s, "
        f"{config.n_nodes} nodes, {config.mobility}) to {args.out}"
    )
    return 0


def _cmd_trace_audit(args: argparse.Namespace) -> int:
    import json as json_module

    from repro.errors import TraceError
    from repro.trace.audit import replay_trace

    try:
        audit = replay_trace(args.trace_file)
    except TraceError as exc:
        print(f"invalid trace: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json_module.dumps(audit.to_json(), indent=2, sort_keys=True))
    else:
        header = ", ".join(
            f"{key}={value}" for key, value in sorted(audit.header.items())
        )
        print(
            f"{args.trace_file}: {audit.records_read} records"
            + (f" ({header})" if header else "")
        )
        print(format_table(
            ["event", "count"],
            [[name, count] for name, count in sorted(audit.counts.items())],
            title="record counts",
        ))
        if audit.flows:
            flows = sorted(
                audit.flows.values(), key=lambda f: (-f.net, f.node)
            )
            shown = flows[: args.top]
            print(format_table(
                ["node", "endowment", "earned", "spent", "balance", "net"],
                [
                    [
                        flow.node,
                        f"{flow.endowment:.3f}",
                        f"{flow.earned:.3f}",
                        f"{flow.spent:.3f}",
                        f"{flow.balance:.3f}",
                        f"{flow.net:+.3f}",
                    ]
                    for flow in shown
                ],
                title=f"token flows (top {len(shown)} of "
                      f"{len(flows)} accounts by net)",
            ))
            print(
                f"endowment={audit.endowment:.3f} "
                f"final supply={audit.final_supply:.3f} "
                f"escrow={audit.final_escrow:.3f} "
                f"payments={audit.token_payments} "
                f"tokens moved={audit.tokens_moved:.3f}"
            )
        if audit.reputation:
            events = sum(len(s) for s in audit.reputation.values())
            print(
                f"reputation: {events} rating events across "
                f"{len(audit.reputation)} subjects"
            )
        if audit.ok:
            print(
                f"conservation audit passed: balances+escrow == endowment "
                f"at every token event ({audit.conservation_checks} checks)"
            )
    for violation in audit.violations:
        print(f"AUDIT VIOLATION: {violation}", file=sys.stderr)
    return 0 if audit.ok else 1


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_comparison
    from repro.metrics.analysis import summarize, welch_t_test

    config = _base_config(args).replace(
        selfish_fraction=args.selfish,
        malicious_fraction=args.malicious,
    )
    seeds = list(range(1, args.seeds + 1))
    series = {scheme: {"mdr": [], "traffic": []} for scheme in args.schemes}
    for seed in seeds:
        results = run_comparison(
            config, args.schemes, seed=seed, workers=_workers(args)
        )
        for scheme, result in results.items():
            series[scheme]["mdr"].append(result.mdr)
            series[scheme]["traffic"].append(float(result.traffic))

    rows = []
    for scheme in args.schemes:
        mdr = summarize(series[scheme]["mdr"])
        traffic = summarize(series[scheme]["traffic"])
        rows.append([
            scheme,
            f"{mdr.mean:.4f} +/- {mdr.half_width:.4f}",
            f"{traffic.mean:.0f} +/- {traffic.half_width:.0f}",
        ])
    print(format_table(
        ["scheme", "MDR (95% CI)", "traffic (95% CI)"],
        rows,
        title=f"{len(seeds)} seeds, selfish={args.selfish:.0%}, "
              f"malicious={args.malicious:.0%}",
    ))

    reference = args.schemes[0]
    if len(seeds) >= 2:
        for scheme in args.schemes[1:]:
            _t, p_value = welch_t_test(
                series[reference]["mdr"], series[scheme]["mdr"],
            )
            verdict = "significant" if p_value < 0.05 else "not significant"
            print(f"MDR {reference} vs {scheme}: Welch p={p_value:.4f} "
                  f"({verdict} at 5%)")
    return 0


@contextlib.contextmanager
def _maybe_profile(args: argparse.Namespace, label: str):
    """cProfile the suite when ``--profile``; dump pstats next to the
    report.

    The dump (``BENCH_<label>.pstats``) is the raw :mod:`pstats` format
    — load it with ``python -m pstats`` or ``snakeviz`` — so the next
    perf PR starts from measured hot paths instead of guesses.
    """
    if not getattr(args, "profile", False):
        yield
        return
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield
    finally:
        profiler.disable()
        out = Path(args.out)
        out.mkdir(parents=True, exist_ok=True)
        pstats_path = out / f"BENCH_{label}.pstats"
        profiler.dump_stats(pstats_path)
        print(f"wrote {pstats_path}")


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.bench import (
        compare,
        load_report,
        run_suite,
        save_report,
    )

    if args.suite == "scale":
        return _bench_scale(args)

    label = args.label or ("quick" if args.quick else "full")
    with _maybe_profile(args, label):
        report = run_suite(
            quick=args.quick,
            rounds=args.rounds,
            include_paper=not args.no_paper,
        )
    rows = [
        [name, f"{data['mean'] * 1e3:.3f}", f"{data['stddev'] * 1e3:.3f}",
         f"{data['best'] * 1e3:.3f}", f"{data['rounds']:.0f}"]
        for name, data in sorted(report["benchmarks"].items())
    ]
    print(format_table(
        ["benchmark", "mean (ms)", "stddev (ms)", "best (ms)", "rounds"],
        rows,
        title=f"bench label={label} "
              f"calibration={report['machine']['calibration_seconds']:.4f}s",
    ))
    path = save_report(report, args.out, label)
    print(f"wrote {path}")
    if not args.no_root:
        # The canonical root-level report: CI and the PR trajectory
        # expect BENCH_<label>.json at the repo root, not only the
        # benchmarks/ copy.
        root_path = save_report(report, args.root_out, label)
        if root_path != path:
            print(f"wrote {root_path}")
    if args.baseline is None:
        return 0
    baseline = load_report(args.baseline)
    failed = False
    regressions = compare(report, baseline, threshold=args.threshold)
    if regressions:
        for reg in regressions:
            print(
                f"REGRESSION {reg.name}: {reg.ratio:.2f}x slower than "
                f"baseline (calibrated; {reg.baseline_mean * 1e3:.3f} ms "
                f"-> {reg.current_mean * 1e3:.3f} ms)",
                file=sys.stderr,
            )
        failed = True
    else:
        print(
            f"no benchmark regressed more than {args.threshold:.1f}x "
            f"against {args.baseline}"
        )
    if args.paper_threshold is not None:
        # A tighter gate on the end-to-end paper probes — the watchline
        # for per-event overhead creep (e.g. the disabled trace path).
        current_cal = float(report["machine"]["calibration_seconds"])
        baseline_cal = float(baseline["machine"]["calibration_seconds"])
        for name, base in sorted(baseline["benchmarks"].items()):
            if not name.startswith("paper_"):
                continue
            now = report["benchmarks"].get(name)
            if now is None or float(base["mean"]) <= 0.0:
                continue
            ratio = (
                (float(now["mean"]) / current_cal)
                / (float(base["mean"]) / baseline_cal)
            )
            print(
                f"paper probe {name}: {ratio:.4f}x baseline (calibrated)"
            )
        paper_regressions = compare(
            report, baseline,
            threshold=args.paper_threshold, name_prefix="paper_",
        )
        if paper_regressions:
            for reg in paper_regressions:
                print(
                    f"PAPER-PROBE REGRESSION {reg.name}: {reg.ratio:.4f}x "
                    f"slower than baseline (gate {args.paper_threshold:.2f}x)",
                    file=sys.stderr,
                )
            failed = True
        else:
            print(
                f"paper probes within {args.paper_threshold:.2f}x of "
                f"{args.baseline}"
            )
    return 1 if failed else 0


def _bench_scale(args: argparse.Namespace) -> int:
    """The ``repro-dtn bench scale`` suite (see bench_scale module)."""
    from repro.experiments.bench import (
        compare,
        load_report,
        save_report,
        speedups,
    )
    from repro.experiments.bench_scale import run_scale_suite

    baseline_points = None
    if args.baseline_points:
        baseline_points = [
            (float(pair.split(":")[0]), float(pair.split(":")[1]))
            for pair in args.baseline_points
        ]
    label = args.label or "scale"
    with _maybe_profile(args, label):
        report = run_scale_suite(
            tiers=args.tiers,
            audit=args.audit,
            baseline_points=baseline_points,
            baseline_label=args.baseline_label,
            detect_regions=args.regions,
            detect_workers=args.detect_workers,
        )
    rows = [
        [name,
         f"{probe['wall_seconds']:.1f}",
         f"{probe['n_nodes']:.0f}",
         f"{probe['sim_seconds']:.0f}",
         f"{probe['node_sim_seconds_per_wall_second']:.0f}",
         f"{probe['mdr']:.4f}"]
        for name, probe in sorted(report["scale"].items())
    ]
    print(format_table(
        ["tier", "wall (s)", "nodes", "sim (s)",
         "node-sim-s / wall-s", "mdr"],
        rows,
        title=f"bench scale "
              f"calibration={report['machine']['calibration_seconds']:.4f}s",
    ))
    if "audit" in report:
        verdict = report["audit"]
        status = "CLEAN" if verdict["ok"] else "VIOLATIONS"
        print(f"conservation audit [{verdict['tier']}]: {status} "
              f"({verdict['records']} records)")
        if not verdict["ok"]:
            return 1
    if "baseline" in report:
        fit = report["baseline"]["fit"]
        print(f"object-core baseline fit: wall = {fit['c']:.3e} "
              f"* n**{fit['k']:.3f}")
        for name, entry in sorted(
            report["baseline"]["extrapolated"].items()
        ):
            print(f"  {name}: extrapolated {entry['wall_seconds']:.1f}s "
                  f"-> measured "
                  f"{report['scale'][name]['wall_seconds']:.1f}s "
                  f"({entry['improvement']:.1f}x throughput/node)")
    path = save_report(report, args.out, label)
    print(f"wrote {path}")
    if not args.no_root:
        root_path = save_report(report, args.root_out, label)
        if root_path != path:
            print(f"wrote {root_path}")
    if args.baseline is None:
        return 0
    baseline = load_report(args.baseline)
    regressions = compare(
        report, baseline, threshold=args.threshold, name_prefix="scale_"
    )
    if regressions:
        for reg in regressions:
            print(
                f"SCALE REGRESSION {reg.name}: {reg.ratio:.2f}x slower "
                f"than baseline (calibrated; {reg.baseline_mean:.1f} s "
                f"-> {reg.current_mean:.1f} s)",
                file=sys.stderr,
            )
        return 1
    print(
        f"no scale tier regressed more than {args.threshold:.1f}x "
        f"against {args.baseline}"
    )
    if args.min_speedup is not None:
        # The optimisation-PR gate: the fresh run must *beat* the
        # committed baseline, not merely avoid regressing against it.
        gains = speedups(report, baseline, name_prefix="scale_")
        too_slow = False
        for name, gain in sorted(gains.items()):
            print(f"scale speedup {name}: {gain:.2f}x vs {args.baseline}")
            if gain < args.min_speedup:
                print(
                    f"SPEEDUP GATE {name}: {gain:.2f}x < required "
                    f"{args.min_speedup:.2f}x",
                    file=sys.stderr,
                )
                too_slow = True
        if too_slow:
            return 1
    return 0


def _cmd_hetero(args: argparse.Namespace) -> int:
    from repro.errors import ConfigurationError, TraceError
    from repro.experiments.hetero import breakdown_rows, hetero_sweep

    try:
        config = ScenarioConfig.hetero(
            pedestrian=args.pedestrian,
            vehicular=args.vehicular,
            infrastructure=args.infrastructure,
            n_nodes=args.nodes,
            duration=args.duration,
        )
    except ConfigurationError as exc:
        print(f"invalid population: {exc}", file=sys.stderr)
        return 2
    seeds = list(range(1, args.seeds + 1))
    try:
        records = hetero_sweep(
            config,
            schemes=args.schemes,
            seeds=seeds,
            trace_dir=args.trace_dir,
        )
    except TraceError as exc:
        print(f"AUDIT VIOLATION: {exc}", file=sys.stderr)
        return 1

    rows = []
    for scheme, seed, name, nodes, mdr, delivered, intended, delay, \
            balance in breakdown_rows(records):
        rows.append([
            scheme,
            str(seed),
            name,
            str(nodes),
            f"{mdr:.4f}",
            f"{delivered}/{intended}",
            f"{delay:.0f}",
            "-" if balance is None else f"{balance:.2f}",
        ])
    print(format_table(
        ["scheme", "seed", "class", "nodes", "MDR", "delivered",
         "delay (s)", "mean balance"],
        rows,
        title=f"per-class breakdown: {config.n_nodes} nodes, "
              f"{config.duration / 3600:.1f} h, mix "
              f"{args.pedestrian:.0%}/{args.vehicular:.0%}/"
              f"{args.infrastructure:.0%}",
    ))
    overall = {}
    for record in records:
        overall.setdefault(record["scheme"], []).append(
            record["summary"]["mdr"]
        )
    print(format_table(
        ["scheme", "overall MDR"],
        [
            [scheme, f"{sum(values) / len(values):.4f}"]
            for scheme, values in overall.items()
        ],
        title=f"{len(seeds)} seed(s), schemes on identical contacts",
    ))
    print(
        "conservation audit clean for every (scheme, seed) run"
    )
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.experiments.faults import fault_sweep

    config = _base_config(args)
    if args.nodes is not None:
        config = config.replace(n_nodes=args.nodes)
    if args.duration is not None:
        config = config.replace(duration=args.duration)
    seeds = list(range(1, args.seeds + 1))
    records = fault_sweep(
        config,
        loss_levels=args.losses,
        schemes=args.schemes,
        seeds=seeds,
        corruption_fraction=args.corruption_fraction,
        churn_mean_uptime=args.mean_uptime if args.churn else 0.0,
        churn_mean_downtime=args.mean_downtime,
        churn_policy=args.churn_policy,
        max_retransmissions=args.retransmissions,
        retransmit_backoff=args.retransmit_backoff,
        workers=_workers(args),
    )
    rows = [
        [
            f"{record['value']:.2f}",
            record["scheme"],
            f"{record['mdr']:.4f}",
            f"{record['overhead']:.2f}",
            f"{record['transfers_lost']:.0f}",
            f"{record['node_crashes']:.0f}",
            f"{record['retransmissions']:.0f}",
            f"{record['stranded_escrow']:.4f}",
            f"{record['double_payments']:.0f}",
            f"{record['duplicate_settlements']:.0f}",
        ]
        for record in records
    ]
    churn_note = (
        f"churn up={args.mean_uptime:.0f}s/down={args.mean_downtime:.0f}s "
        f"({args.churn_policy})" if args.churn else "no churn"
    )
    print(format_table(
        ["loss", "scheme", "MDR", "overhead", "lost", "crashes",
         "retx", "stranded", "double-pay", "blocked-dup"],
        rows,
        title=f"fault sweep, {len(seeds)} seed(s), {churn_note}, "
              f"retx budget {args.retransmissions}",
    ))
    violations = [
        record for record in records
        if record["double_payments"] > 0
        or record["stranded_escrow"] > 1e-9
        or record["supply_error"] > 1e-6
    ]
    if violations:
        for record in violations:
            print(
                f"INTEGRITY VIOLATION at loss={record['value']:.2f} "
                f"scheme={record['scheme']}: "
                f"double_payments={record['double_payments']:.0f}, "
                f"stranded_escrow={record['stranded_escrow']:.6f}, "
                f"supply_error={record['supply_error']:.6g}",
                file=sys.stderr,
            )
        return 1
    print("ledger integrity: supply conserved, escrow drained, "
          "0 double payments at every grid point")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-dtn",
        description="Reproduce the DTN incentive-mechanism paper's "
                    "experiments.",
    )
    parser.add_argument(
        "--paper-scale", action="store_true",
        help="use the full Table 5.1 scenario (slow)",
    )
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for seed-averaged runs "
             "(1 = serial, 0 = one per CPU core; results are "
             "bit-identical either way)",
    )
    parser.add_argument(
        "--trace-cache", metavar="DIR", default=None,
        help="directory for the on-disk contact-trace cache "
             "(defaults to $REPRO_TRACE_CACHE when set)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    table = commands.add_parser("table", help="print Table 5.1")
    table.set_defaults(func=_cmd_table)

    schemes = commands.add_parser(
        "schemes",
        help="list registered schemes (names, tags, one-line docs)",
    )
    schemes.add_argument(
        "--tag", default=None, metavar="TAG",
        help="only schemes carrying this tag "
             f"(one of: {' '.join(sorted(KNOWN_TAGS))})",
    )
    schemes.set_defaults(func=_cmd_schemes)

    figure = commands.add_parser("figure", help="regenerate a figure")
    figure.add_argument("figure", help="figure id (e.g. 5.1) or 'all'")
    figure.add_argument(
        "--seeds", type=int, default=2,
        help="number of seeds to average (default 2)",
    )
    figure.set_defaults(func=_cmd_figure)

    run = commands.add_parser("run", help="run one scenario")
    run.add_argument(
        "--scheme", choices=SCHEMES, default="incentive",
        help="routing/incentive scheme",
    )
    run.add_argument("--selfish", type=float, default=0.0)
    run.add_argument("--malicious", type=float, default=0.0)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--nodes", type=int, default=None,
        help="override the scenario's node count (smoke tests)",
    )
    run.add_argument(
        "--duration", type=float, default=None,
        help="override the simulated duration in seconds (smoke tests)",
    )
    run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a JSONL event trace of the run to PATH "
             "(audit it with 'repro-dtn trace audit PATH')",
    )
    run.set_defaults(func=_cmd_run)

    compare = commands.add_parser(
        "compare",
        help="run several schemes on identical contacts, with statistics",
    )
    compare.add_argument(
        "schemes", nargs="+", choices=SCHEMES,
        help="schemes to compare (first is the reference)",
    )
    compare.add_argument("--selfish", type=float, default=0.0)
    compare.add_argument("--malicious", type=float, default=0.0)
    compare.add_argument(
        "--seeds", type=int, default=3,
        help="number of seeds to average (default 3)",
    )
    compare.set_defaults(func=_cmd_compare)

    bench = commands.add_parser(
        "bench",
        help="time the simulator's hot paths and write BENCH_<label>.json",
    )
    bench.add_argument(
        "suite", nargs="?", choices=("micro", "scale"), default="micro",
        help="'micro' (default): hot-path benchmarks; 'scale': "
             "end-to-end 10k/100k/1M-node throughput tiers "
             "(BENCH_scale.json)",
    )
    bench.add_argument(
        "--quick", action="store_true",
        help="fewer rounds and a 10-simulated-minute end-to-end probe",
    )
    bench.add_argument(
        "--label", default=None, metavar="L",
        help="output file label (BENCH_<L>.json; default quick/full)",
    )
    bench.add_argument(
        "--out", default="benchmarks", metavar="DIR",
        help="directory to write the report into (default benchmarks/)",
    )
    bench.add_argument(
        "--rounds", type=int, default=None, metavar="N",
        help="override the per-benchmark round count",
    )
    bench.add_argument(
        "--no-paper", action="store_true",
        help="skip the end-to-end paper-scale probe",
    )
    bench.add_argument(
        "--baseline", default=None, metavar="JSON",
        help="compare against a committed report and exit 1 on any "
             "calibrated regression beyond --threshold",
    )
    bench.add_argument(
        "--threshold", type=float, default=2.0, metavar="X",
        help="regression gate as a slowdown factor (default 2.0)",
    )
    bench.add_argument(
        "--paper-threshold", type=float, default=None, metavar="X",
        help="extra, tighter gate applied only to the end-to-end "
             "paper_* probes (calibrated; e.g. 1.02 for a 2%% budget)",
    )
    bench.add_argument(
        "--root-out", default=".", metavar="DIR",
        help="directory for the canonical root-level copy of the "
             "report (default: repo root)",
    )
    bench.add_argument(
        "--no-root", action="store_true",
        help="skip writing the root-level BENCH_<label>.json copy",
    )
    bench.add_argument(
        "--tiers", nargs="+", default=["10k"], metavar="TIER",
        help="scale suite tiers to run: 1k, 10k, 100k, 1m (default: "
             "10k; the 1M smoke is opt-in — expect minutes and "
             "several GB)",
    )
    bench.add_argument(
        "--audit", action="store_true",
        help="scale suite: re-run the first tier with a JSONL trace "
             "and replay the conservation auditor",
    )
    bench.add_argument(
        "--regions", type=int, default=1, metavar="N",
        help="scale suite: spatial shard count for contact detection",
    )
    bench.add_argument(
        "--detect-workers", type=int, default=1, metavar="N",
        help="scale suite: worker processes for sharded detection",
    )
    bench.add_argument(
        "--baseline-points", nargs="+", default=None, metavar="N:WALL",
        help="scale suite: measured object-core (n_nodes, wall_seconds) "
             "pairs, e.g. 500:28.2 1000:59.0, for the power-law "
             "baseline extrapolation recorded in the report",
    )
    bench.add_argument(
        "--baseline-label", default=None, metavar="TEXT",
        help="scale suite: provenance note for --baseline-points",
    )
    bench.add_argument(
        "--min-speedup", type=float, default=None, metavar="X",
        help="scale suite: with --baseline, require every shared "
             "scale_* tier to be at least X times faster (calibrated) "
             "— the gate an optimisation PR commits to",
    )
    bench.add_argument(
        "--profile", action="store_true",
        help="run the suite under cProfile and dump "
             "BENCH_<label>.pstats next to the report",
    )
    bench.set_defaults(func=_cmd_bench)

    hetero = commands.add_parser(
        "hetero",
        help="heterogeneous-population comparison: per-class delivery, "
             "delay and token balances across schemes, every traced run "
             "replayed through the conservation auditor",
    )
    hetero.add_argument(
        "--schemes", nargs="+", choices=SCHEMES,
        default=["incentive", "incentive-chitchat-hetero", "minority-game"],
        help="schemes to compare on identical contacts (default: the "
             "homogeneous-pricing baseline plus both class-aware "
             "schemes)",
    )
    hetero.add_argument(
        "--seeds", type=int, default=1,
        help="number of seeds to run per scheme (default 1)",
    )
    hetero.add_argument(
        "--nodes", type=int, default=120,
        help="population size (default 120)",
    )
    hetero.add_argument(
        "--duration", type=float, default=3_600.0,
        help="simulated seconds (default 3600 = one hour)",
    )
    hetero.add_argument(
        "--pedestrian", type=float, default=0.6, metavar="F",
        help="pedestrian class fraction (default 0.6)",
    )
    hetero.add_argument(
        "--vehicular", type=float, default=0.3, metavar="F",
        help="vehicular class fraction (default 0.3)",
    )
    hetero.add_argument(
        "--infrastructure", type=float, default=0.1, metavar="F",
        help="infrastructure class fraction (default 0.1)",
    )
    hetero.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="keep the per-run JSONL event traces in DIR (temporary "
             "files otherwise)",
    )
    hetero.set_defaults(func=_cmd_hetero)

    faults = commands.add_parser(
        "faults",
        help="robustness sweep: delivery and ledger integrity under "
             "link loss, corruption and node churn",
    )
    faults.add_argument(
        "--losses", type=float, nargs="+",
        default=[0.0, 0.1, 0.2, 0.3], metavar="P",
        help="per-transfer fault probabilities to sweep "
             "(default: 0.0 0.1 0.2 0.3)",
    )
    faults.add_argument(
        "--corruption-fraction", type=float, default=0.0, metavar="F",
        help="portion of each loss level attributed to corruption "
             "instead of loss (default 0)",
    )
    faults.add_argument(
        "--schemes", nargs="+", choices=SCHEMES,
        default=list(tagged("paper-comparison")),
        help="schemes to compare (default: the paper-comparison pair)",
    )
    faults.add_argument(
        "--seeds", type=int, default=1,
        help="number of seeds to average (default 1)",
    )
    faults.add_argument(
        "--churn", action="store_true",
        help="also crash/restart nodes (exponential outage windows)",
    )
    faults.add_argument(
        "--mean-uptime", type=float, default=1_800.0, metavar="S",
        help="mean exponential uptime between crashes (default 1800 s)",
    )
    faults.add_argument(
        "--mean-downtime", type=float, default=600.0, metavar="S",
        help="mean exponential outage length (default 600 s)",
    )
    faults.add_argument(
        "--churn-policy", choices=("wipe", "persist"), default="wipe",
        help="what a restart recovers: wipe loses the buffer and dedup "
             "memory, persist keeps both (default wipe)",
    )
    faults.add_argument(
        "--retransmissions", type=int, default=0, metavar="N",
        help="retry budget per (receiver, message) for loss/corruption "
             "aborts (default 0 = off)",
    )
    faults.add_argument(
        "--retransmit-backoff", type=float, default=30.0, metavar="S",
        help="base backoff before the first retry, doubling per retry "
             "(default 30 s)",
    )
    faults.add_argument(
        "--nodes", type=int, default=None,
        help="override the scenario's node count (smoke tests)",
    )
    faults.add_argument(
        "--duration", type=float, default=None,
        help="override the simulated duration in seconds (smoke tests)",
    )
    faults.set_defaults(func=_cmd_faults)

    trace = commands.add_parser(
        "trace",
        help="contact-trace generation and run-trace auditing",
    )
    trace_commands = trace.add_subparsers(
        dest="trace_command", required=True
    )

    contacts = trace_commands.add_parser(
        "contacts", help="generate and save a contact trace",
    )
    contacts.add_argument("out", help="output file path")
    contacts.add_argument(
        "--format", choices=("jsonl", "one"), default="jsonl",
        help="jsonl (native) or one (ONE-simulator CONN report)",
    )
    contacts.add_argument(
        "--mobility",
        choices=("random-waypoint", "random-walk", "manhattan"),
        default="random-waypoint",
    )
    contacts.add_argument("--nodes", type=int, default=None)
    contacts.add_argument("--duration", type=float, default=None)
    contacts.add_argument("--seed", type=int, default=1)
    contacts.set_defaults(func=_cmd_trace_contacts)

    audit = trace_commands.add_parser(
        "audit",
        help="replay a run's event trace into per-node token ledgers, "
             "reputation series and a conservation audit",
    )
    audit.add_argument(
        "trace_file", help="JSONL event trace (from 'run --trace')",
    )
    audit.add_argument(
        "--json", action="store_true",
        help="emit the audit summary as JSON instead of tables",
    )
    audit.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="accounts to show in the token-flow table (default 10)",
    )
    audit.set_defaults(func=_cmd_trace_audit)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers < 0:
        print("--workers must be >= 0", file=sys.stderr)
        return 2
    if args.trace_cache:
        from repro.experiments.trace_cache import TraceCache, set_default_cache

        try:
            set_default_cache(TraceCache(args.trace_cache))
        except OSError as exc:
            print(
                f"--trace-cache {args.trace_cache!r} is not a usable "
                f"directory: {exc}",
                file=sys.stderr,
            )
            return 2
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
