"""Spray-and-Wait baseline (binary variant).

Each message starts with ``initial_copies`` logical copies.  In the
*spray* phase a node holding ``c > 1`` copies hands ``floor(c / 2)`` to
an encountered node; a node left with one copy *waits* and delivers only
on meeting a destination (Spyropoulos et al., 2005).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["SprayAndWaitRouter"]


class SprayAndWaitRouter(Router):
    """Binary Spray-and-Wait with interest-based destinations.

    Args:
        initial_copies: Logical copies created with each message (L).
    """

    name = "spray-and-wait"

    #: A destination consumes its copy; it does not spray further.
    destinations_also_relay = False

    def __init__(self, initial_copies: int = 8):
        super().__init__()
        if initial_copies < 1:
            raise ConfigurationError(
                f"initial_copies must be >= 1, got {initial_copies}"
            )
        self.initial_copies = int(initial_copies)
        # (node_id, uuid) -> remaining logical copies held by that node.
        self._copies: Dict[Tuple[int, str], int] = {}
        # Copies granted to a transfer, reclaimed on abort.
        self._in_flight: Dict[int, Tuple[int, str, int]] = {}

    def copies_held(self, node_id: int, uuid: str) -> int:
        """Logical copies ``node_id`` currently holds for ``uuid``."""
        return self._copies.get((node_id, uuid), 0)

    def on_message_created(self, node_id: int, message) -> None:
        self._copies[(node_id, message.uuid)] = self.initial_copies

    def wants_as_relay(
        self, sender_id: int, receiver_id: int, message: Message
    ) -> bool:
        """Spray only while holding more than one logical copy."""
        return self.copies_held(sender_id, message.uuid) > 1

    def on_copy_sent(
        self, transfer: Transfer, sender_id: int, message: Message, role: str
    ) -> None:
        """Grant half the held copies to an outbound relay transfer."""
        if role != "relay":
            return
        held = self.copies_held(sender_id, message.uuid)
        if held <= 1:
            return
        granted = held // 2
        self._copies[(sender_id, message.uuid)] = held - granted
        self._in_flight[id(transfer)] = (sender_id, message.uuid, granted)

    def on_copy_received(
        self,
        transfer: Transfer,
        receiver_id: int,
        message: Message,
        role: str,
        accepted: bool,
    ) -> None:
        """Settle a landed grant: assign it, or refund a refused one."""
        grant = self._in_flight.pop(id(transfer), None)
        if grant is None:
            return
        sender_id, uuid, granted = grant
        if role == "destination":
            # The copies were consumed by the delivery.
            return
        if accepted:
            self._copies[(receiver_id, uuid)] = granted
        else:
            # Buffer refused; return the copies to the sender.
            self._copies[(sender_id, uuid)] = (
                self.copies_held(sender_id, uuid) + granted
            )

    def on_contact_start(self, link: Link) -> None:
        # The base select_messages walks the buffer in order, gating
        # relays through wants_as_relay (copies held > 1); the custody
        # hook then performs the binary-spray grant bookkeeping.
        for sender_id in link.pair:
            receiver_id = link.peer_of(sender_id)
            for message, role in self.select_messages(
                sender_id, receiver_id
            ):
                transfer = self.world.send_message(link, sender_id, message)
                if transfer is not None:
                    self.on_copy_sent(transfer, sender_id, message, role)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self.world.deliver(receiver, message)
            self.on_copy_received(
                transfer, receiver.node_id, message, "destination", False
            )
            return
        accepted = self.world.accept_relay(receiver, message)
        self.on_copy_received(
            transfer, receiver.node_id, message, "relay", accepted
        )

    def on_transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        # Aborted transfers never hit on_message_received; reclaim their
        # granted copies so none are lost to a broken contact.
        grant = self._in_flight.pop(id(transfer), None)
        if grant is not None:
            sender_id, uuid, granted = grant
            self._copies[(sender_id, uuid)] = (
                self.copies_held(sender_id, uuid) + granted
            )
