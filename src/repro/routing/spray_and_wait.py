"""Spray-and-Wait baseline (binary variant).

Each message starts with ``initial_copies`` logical copies.  In the
*spray* phase a node holding ``c > 1`` copies hands ``floor(c / 2)`` to
an encountered node; a node left with one copy *waits* and delivers only
on meeting a destination (Spyropoulos et al., 2005).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["SprayAndWaitRouter"]


class SprayAndWaitRouter(Router):
    """Binary Spray-and-Wait with interest-based destinations.

    Args:
        initial_copies: Logical copies created with each message (L).
    """

    name = "spray-and-wait"

    def __init__(self, initial_copies: int = 8):
        super().__init__()
        if initial_copies < 1:
            raise ConfigurationError(
                f"initial_copies must be >= 1, got {initial_copies}"
            )
        self.initial_copies = int(initial_copies)
        # (node_id, uuid) -> remaining logical copies held by that node.
        self._copies: Dict[Tuple[int, str], int] = {}
        # Copies granted to a transfer, reclaimed on abort.
        self._in_flight: Dict[int, Tuple[int, str, int]] = {}

    def copies_held(self, node_id: int, uuid: str) -> int:
        """Logical copies ``node_id`` currently holds for ``uuid``."""
        return self._copies.get((node_id, uuid), 0)

    def on_message_created(self, node_id: int, message) -> None:
        self._copies[(node_id, message.uuid)] = self.initial_copies

    def on_contact_start(self, link: Link) -> None:
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            for message in sender.buffer.messages():
                if receiver.has_seen(message.uuid):
                    continue
                if message.size > receiver.buffer.capacity:
                    continue
                if self.is_destination(receiver, message):
                    self.world.send_message(link, sender_id, message)
                    continue
                held = self.copies_held(sender_id, message.uuid)
                if held > 1:
                    transfer = self.world.send_message(link, sender_id, message)
                    if transfer is not None:
                        granted = held // 2
                        self._copies[(sender_id, message.uuid)] = held - granted
                        self._in_flight[id(transfer)] = (
                            sender_id, message.uuid, granted
                        )

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        grant = self._in_flight.pop(id(transfer), None)
        if self.is_destination(receiver, message):
            self.world.deliver(receiver, message)
            return
        if not self.world.accept_relay(receiver, message):
            # Buffer refused; return the copies to the sender.
            if grant is not None:
                sender_id, uuid, granted = grant
                self._copies[(sender_id, uuid)] = (
                    self.copies_held(sender_id, uuid) + granted
                )
            return
        if grant is not None:
            self._copies[(receiver.node_id, message.uuid)] = grant[2]

    def on_transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        # Aborted transfers never hit on_message_received; reclaim their
        # granted copies so none are lost to a broken contact.
        grant = self._in_flight.pop(id(transfer), None)
        if grant is not None:
            sender_id, uuid, granted = grant
            self._copies[(sender_id, uuid)] = (
                self.copies_held(sender_id, uuid) + granted
            )
