"""Router interface.

A router decides *what to forward and what to accept*; the
:class:`~repro.network.world.World` owns the mechanics (mobility,
links, bandwidth, buffers, TTL) and calls the router's hooks.  The
separation lets the same scenario run under ChitChat, the incentive
scheme, or any baseline with identical contacts and workload — which is
how the paper's comparisons are constructed.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, List, Optional, Protocol, Tuple

from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.network.node import Node

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

__all__ = ["RoutingContext", "Router"]


class RoutingContext(Protocol):
    """The world services a router may use (implemented by ``World``)."""

    @property
    def now(self) -> float:
        """Current simulation time."""

    def node(self, node_id: int) -> Node:
        """The node with the given id."""

    def node_ids(self) -> List[int]:
        """All node ids."""

    def active_links(self, node_id: int) -> List[Link]:
        """Open links that ``node_id`` participates in."""

    def link_between(self, a: int, b: int) -> Optional[Link]:
        """The open link between ``a`` and ``b``, if any."""

    def send_message(
        self, link: Link, sender: int, message: Message
    ) -> Optional[Transfer]:
        """Queue a copy of ``message`` for transfer over ``link``.

        Returns the transfer, or ``None`` if the world suppressed it
        (duplicate in flight, link closing, ...).
        """

    def deliver(self, receiver: Node, message: Message) -> bool:
        """Record delivery to a destination; True on first delivery."""

    def accept_relay(self, receiver: Node, message: Message) -> bool:
        """Buffer a message for relaying; False if the buffer refused."""

    def schedule_in(self, delay: float, callback, *, label: str = ""):
        """Schedule ``callback`` after ``delay`` seconds (backoff timers)."""

    def node_available(self, node_id: int) -> bool:
        """Whether ``node_id`` exists and is currently up (powered, not
        faulted out).  Routers consult this before spending bounded
        resources — e.g. a retransmission attempt — on a peer that
        cannot receive anyway."""


class Router(abc.ABC):
    """Base class for routing protocols.

    Lifecycle: :meth:`bind` is called once by the world, then the event
    hooks fire as the simulation unfolds.  Implementations keep their
    per-node protocol state internally, keyed by node id.
    """

    #: Short name used in reports (override in subclasses).
    name: str = "router"

    #: Whether the world may drive this router through the batched
    #: contact hooks (:meth:`prepare_contact_batch` /
    #: :meth:`contact_end_batch`).  Only routers that have proven the
    #: batched forms bit-identical to the per-contact hooks opt in
    #: (ChitChat over the fused interest store); the world falls back
    #: to the per-pair path otherwise.
    supports_contact_batching: bool = False

    #: Whether a destination keeps a copy in its buffer to serve further
    #: destinations.  Substrates whose reception semantics terminate at
    #: the destination (PRoPHET, Spray-and-Wait) set this False; the
    #: incentive layer consults it when composing over a substrate.
    destinations_also_relay: bool = True

    def __init__(self) -> None:
        self._world: Optional[RoutingContext] = None

    @property
    def world(self) -> RoutingContext:
        """The bound world.

        Raises:
            RuntimeError: If the router has not been bound yet.
        """
        if self._world is None:
            raise RuntimeError(f"router {self.name!r} is not bound to a world")
        return self._world

    def bind(self, world: RoutingContext) -> None:
        """Attach the router to its world.  Called once by the world."""
        self._world = world

    def node_class(self, node_id: int) -> str:
        """Population class name of ``node_id``.

        ``"default"`` on homogeneous worlds, on worlds without
        population support, and before binding — so class-aware
        schemes degrade gracefully everywhere.
        """
        if self._world is None:
            return "default"
        lookup = getattr(self._world, "node_class", None)
        if lookup is None:
            return "default"
        return lookup(node_id)

    # ------------------------------------------------------------------
    # Hooks (all optional except message selection semantics)
    # ------------------------------------------------------------------
    def on_message_created(self, node_id: int, message: Message) -> None:
        """A node originated ``message`` (already buffered by the world)."""

    def on_contact_start(self, link: Link) -> None:
        """A contact came up; typically triggers the exchange phase."""

    def on_contact_end(self, link: Link) -> None:
        """A contact went down (in-flight transfers already aborted)."""

    # ------------------------------------------------------------------
    # Batched contact hooks (opt-in; see supports_contact_batching)
    # ------------------------------------------------------------------
    def prepare_contact_batch(
        self, pairs: List[Tuple[int, int]]
    ) -> None:
        """All admitted pairs of one contact-up tick, before any opens.

        Called by batching world cores once per up tick so a router can
        run pre-exchange state updates (ChitChat's RTSR decay) as
        vectorised passes over whatever subset it can prove safe,
        marking those sides so the per-pair hooks skip them.  The
        default does nothing — :meth:`prepare_contact` still runs per
        pair from :meth:`on_contact_start`.
        """

    def contact_end_batch(self, links: List[Link]) -> None:
        """Every closed link of one contact-down tick, in close order.

        Called by batching world cores instead of per-pair
        :meth:`on_contact_end`; the router may reorder or fuse the
        per-link work as long as the result is bit-identical (ChitChat
        uses round decomposition).  The default simply replays the
        per-link hook in order.
        """
        for link in links:
            self.on_contact_end(link)

    @abc.abstractmethod
    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        """A transfer completed; decide delivery/relay handling."""

    def on_transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        """A transfer was cut off by link closure before completing."""

    def on_message_expired(self, node_id: int, message: Message) -> None:
        """A buffered message passed its TTL and was dropped."""

    def on_message_dropped(self, node_id: int, message: Message) -> None:
        """A buffered message was evicted to make room for another."""

    def on_node_wiped(self, node_id: int) -> None:
        """A churn crash wiped ``node_id``'s state (wipe policy only).

        Fired by the world *after* the node's buffer was drained (each
        drop already went through :meth:`on_message_dropped`) and its
        seen-set reset.  Routers holding per-node protocol state keyed
        by id — interest tables, memo caches — must return it to the
        freshly-created condition here, since the restarted identity
        must not observe pre-crash state.  Default: no state, no-op.
        """

    def finalize(self, now: float) -> None:
        """The run is over; settle or release any outstanding state.

        Called once by the experiment runner after the engine drains.
        Protocols holding escrow use this to drain every remaining hold
        back to its payer so token conservation is exact at the end of
        even the most fault-ridden run.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def is_destination(self, node: Node, message: Message) -> bool:
        """Data-centric destination test: direct interest in any tag."""
        return node.is_interested_in(message)

    def eligible_messages(
        self, sender: Node, receiver: Node, messages: Iterable[Message]
    ) -> List[Message]:
        """Filter out messages the receiver already saw or cannot fit.

        Buffer-capacity checks are left to the receive path (state may
        change while transfers are queued); this only removes certain
        no-ops.
        """
        return [
            m for m in messages
            if not receiver.has_seen(m.uuid)
        ]

    # ------------------------------------------------------------------
    # Substrate hooks (the IncentiveLayer composition contract)
    # ------------------------------------------------------------------
    # ``repro.core.incentive_layer.IncentiveLayer`` drives any Router
    # through these hooks: on contact it calls :meth:`prepare_contact`
    # (protocol state updates that normally precede offering), asks
    # :meth:`select_messages` what to offer, and runs each offer through
    # the payment pipeline; :meth:`relay_affinity` and
    # :meth:`relay_trust` feed the promise and prepay computations, and
    # the custody hooks (:meth:`on_copy_sent` / :meth:`on_copy_received`)
    # let copy-budgeted substrates (Spray-and-Wait) keep their
    # bookkeeping when the layer, not the substrate, performs the send.
    # All defaults are flood-friendly no-ops, so EpidemicRouter works
    # unmodified.

    def prepare_contact(self, link: Link) -> None:
        """Update protocol state for a fresh contact, *before* offers.

        Substrates run their per-encounter bookkeeping here (ChitChat's
        RTSR decay, PRoPHET's aging + encounter update) so a composing
        layer can trigger it without re-running the offer loop.
        """

    def classify(self, receiver_id: int, message: Message) -> str:
        """``"destination"`` or ``"relay"`` for the receiving node."""
        node = self.world.node(receiver_id)
        return (
            "destination" if self.is_destination(node, message) else "relay"
        )

    def wants_as_relay(
        self, sender_id: int, receiver_id: int, message: Message
    ) -> bool:
        """Whether the substrate would forward to this relay candidate."""
        return True

    def relay_affinity(self, node_id: int, message: Message) -> float:
        """How strongly ``node_id`` attracts ``message`` (>= 0).

        Used by the incentive layer to rank candidate relays (the
        *DecideBestRelay* gate) and to scale promises.  ChitChat returns
        the interest sum ``S``; PRoPHET its delivery predictability;
        the flood substrates have no preference and return 0.
        """
        return 0.0

    def relay_trust(self, receiver_id: int, message: Message) -> float:
        """Confidence in the relay used for the prepay threshold test.

        The incentive layer pre-pays a relay whose trust exceeds the
        relay threshold (Table 5.1: 0.8).  Substrates without a
        comparable signal return 0, which never triggers prepayment.
        """
        return 0.0

    def select_messages(
        self, sender_id: int, receiver_id: int
    ) -> List[Tuple[Message, str]]:
        """Messages ``sender`` should offer ``receiver``, with roles.

        Returns ``(message, "destination"|"relay")`` pairs in offer
        order.  The default walks the sender's buffer in order,
        offering every unseen message that fits: destinations always,
        relays when :meth:`wants_as_relay` agrees.
        """
        sender = self.world.node(sender_id)
        receiver = self.world.node(receiver_id)
        selected: List[Tuple[Message, str]] = []
        for message in sender.buffer.messages():
            if receiver.has_seen(message.uuid):
                continue
            if message.size > receiver.buffer.capacity:
                continue
            role = self.classify(receiver_id, message)
            if role == "destination":
                selected.append((message, "destination"))
            elif self.wants_as_relay(sender_id, receiver_id, message):
                selected.append((message, "relay"))
        return selected

    def on_copy_sent(
        self, transfer: Transfer, sender_id: int, message: Message, role: str
    ) -> None:
        """A composing layer queued a copy on the substrate's behalf.

        Copy-budgeted substrates decrement their counters here (the
        abort path reclaims through :meth:`on_transfer_aborted`).
        """

    def on_copy_received(
        self,
        transfer: Transfer,
        receiver_id: int,
        message: Message,
        role: str,
        accepted: bool,
    ) -> None:
        """A layer-driven transfer landed (``accepted``: buffer kept it).

        The counterpart of :meth:`on_copy_sent`: Spray-and-Wait either
        assigns the granted copies to the receiver or returns them to
        the sender when the buffer refused.
        """
