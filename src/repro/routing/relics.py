"""RELICS-style in-network incentive baseline (Uddin et al., ICNP'10).

The thesis's related work: RELICS designs a *rank* metric quantifying a
node's transit behaviour, and realises incentives in-network — a node's
own traffic is served in proportion to the relaying work it performs, so
selfish nodes starve until they contribute.

This implementation tracks each node's transit rank (bytes relayed for
others) and gates *delivery to* a destination on its rank: a message is
handed to an interested node only when that node has relayed at least
``service_ratio`` times the bytes it has consumed.  Fresh nodes get a
``grace_bytes`` allowance so the network can bootstrap.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["RelicsRouter"]


class RelicsRouter(Router):
    """Transit-rank-gated flooding.

    Args:
        service_ratio: Required (bytes relayed) / (bytes consumed) ratio
            for continued service; 0 disables gating.
        grace_bytes: Consumption allowance before the ratio is enforced.
    """

    name = "relics"

    def __init__(self, *, service_ratio: float = 0.5,
                 grace_bytes: int = 5_000_000):
        super().__init__()
        if service_ratio < 0:
            raise ConfigurationError(
                f"service_ratio must be >= 0, got {service_ratio!r}"
            )
        if grace_bytes < 0:
            raise ConfigurationError(
                f"grace_bytes must be >= 0, got {grace_bytes!r}"
            )
        self.service_ratio = float(service_ratio)
        self.grace_bytes = int(grace_bytes)
        self._relayed_bytes: Dict[int, int] = {}
        self._consumed_bytes: Dict[int, int] = {}
        # Bytes of in-flight deliveries, counted at offer time so that
        # simultaneous offers cannot race past the standing check.
        self._pending_consumption: Dict[int, int] = {}

    def rank(self, node_id: int) -> int:
        """Transit rank: bytes the node has relayed for others."""
        return self._relayed_bytes.get(node_id, 0)

    def consumed(self, node_id: int) -> int:
        """Bytes delivered to the node as a destination."""
        return self._consumed_bytes.get(node_id, 0)

    def in_good_standing(self, node_id: int, next_size: int) -> bool:
        """Whether the node has relayed enough to be served more."""
        would_consume = (
            self.consumed(node_id)
            + self._pending_consumption.get(node_id, 0)
            + next_size
        )
        if would_consume <= self.grace_bytes:
            return True
        return self.rank(node_id) >= self.service_ratio * (
            would_consume - self.grace_bytes
        )

    def on_contact_start(self, link: Link) -> None:
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            for message in sender.buffer.messages():
                if receiver.has_seen(message.uuid):
                    continue
                if message.size > receiver.buffer.capacity:
                    continue
                if self.is_destination(receiver, message):
                    # In-network incentive: low-rank consumers starve.
                    if self.in_good_standing(receiver.node_id, message.size):
                        transfer = self.world.send_message(
                            link, sender_id, message
                        )
                        if transfer is not None:
                            self._pending_consumption[receiver.node_id] = (
                                self._pending_consumption.get(
                                    receiver.node_id, 0
                                ) + message.size
                            )
                    continue
                self.world.send_message(link, sender_id, message)

    def _release_pending(self, transfer: Transfer) -> None:
        node_id = transfer.receiver
        pending = self._pending_consumption.get(node_id, 0)
        if pending:
            self._pending_consumption[node_id] = max(
                0, pending - transfer.message.size
            )

    def on_transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        if self.is_destination(receiver, transfer.message):
            self._release_pending(transfer)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self._release_pending(transfer)
            if self.world.deliver(receiver, message):
                self._consumed_bytes[receiver.node_id] = (
                    self.consumed(receiver.node_id) + message.size
                )
            return
        if self.world.accept_relay(receiver, message):
            self._relayed_bytes[receiver.node_id] = (
                self.rank(receiver.node_id) + message.size
            )
