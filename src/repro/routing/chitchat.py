"""ChitChat routing with Real-time Transient Social Relationships (RTSR).

This is the paper's substrate (McGeehan, Lin, Madria — ICDCS 2016) as
specified in Paper I Sections 2.2-2.4:

* Every node has *direct* interests (its own subscriptions, initial
  weight 0.5) and *transient* interests acquired from encountered nodes.
* On contact, weights are first **decayed** (Algorithm 1), the decayed
  weights are exchanged, then **grown** (Algorithm 2) from the peer's
  weights with a case factor psi.
* Messages route by interest strength: ``u`` forwards message ``M`` to
  ``v`` when ``S_v > S_u`` where ``S_x`` is the sum of ``x``'s weights
  over ``M``'s keywords; a node with a *direct* interest in a tag is a
  destination and always receives the message.

Ambiguities resolved here (see DESIGN.md section 4): the decay
denominator is clamped to >= 1 so decay never amplifies a weight; the
growth increment is scaled by ``growth_scale`` and the per-contact
elapsed time is capped, because the raw thesis formula grows without
bound in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = [
    "InterestRecord",
    "InterestTable",
    "InterestStore",
    "KeywordIndex",
    "ChitChatRouter",
    "psi_case",
]


@dataclass
class InterestRecord:
    """State of one interest keyword at one node.

    Attributes:
        weight: Current ChitChat weight in [0, 1].
        direct: True for the node's own subscription, False for a
            transient (acquired) interest.
        last_contact: Latest time a device sharing the interest was
            connected (``T_l`` in Algorithm 1).
    """

    weight: float
    direct: bool
    last_contact: float


def psi_case(u_record: Optional[InterestRecord],
             v_record: InterestRecord) -> int:
    """The growth divisor psi in {1..6} for a keyword's (u, v) status.

    The thesis names two cases explicitly (both direct -> 1; u direct,
    v transient -> 2); the remaining four follow the same ordering:
    stronger evidence (direct on both sides) grows fastest.
    """
    v_direct = v_record.direct
    if u_record is None:
        return 5 if v_direct else 6
    if u_record.direct:
        return 1 if v_direct else 2
    return 3 if v_direct else 4


class KeywordIndex:
    """A shared keyword -> dense integer id registry.

    All interest tables created by one router share one index, so a
    keyword means the same row everywhere and peer weight exchanges move
    id arrays instead of strings.  Ids are assigned on first sight and
    never reused; tables grow their arrays to cover the index.
    """

    __slots__ = ("_ids", "_names")

    def __init__(self, keywords: Iterable[str] = ()):
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []
        for keyword in keywords:
            self.id_of(keyword)

    def id_of(self, keyword: str) -> int:
        """The id for ``keyword``, assigning a fresh one on first use."""
        existing = self._ids.get(keyword)
        if existing is None:
            existing = len(self._names)
            self._ids[keyword] = existing
            self._names.append(keyword)
        return existing

    def get(self, keyword: str) -> Optional[int]:
        """The id for ``keyword`` if already assigned, else None."""
        return self._ids.get(keyword)

    def name_of(self, keyword_id: int) -> str:
        """The keyword carrying ``keyword_id``."""
        return self._names[keyword_id]

    def __len__(self) -> int:
        return len(self._names)

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._ids


_EMPTY_IDS = np.empty(0, dtype=np.int64)

# Row-count ceiling below which decay/growth take a pure-Python scalar
# path: at a few dozen rows, per-ufunc dispatch (~1µs each, and the
# compact paths need a dozen ufuncs) costs more than an interpreted
# loop over Python floats.  Both paths evaluate the identical IEEE
# expression per row, so the crossover is a pure speed knob — results
# are bit-identical on either side of it (tests/test_chitchat.py pins
# this by running the same history through both).
_SCALAR_ROWS_MAX = 48


class _RecordView:
    """A live, mutable :class:`InterestRecord`-shaped handle over one
    table row.  Reads and writes go straight to the table's arrays."""

    __slots__ = ("_table", "_id")

    def __init__(self, table: "InterestTable", keyword_id: int):
        self._table = table
        self._id = keyword_id

    @property
    def weight(self) -> float:
        return float(self._table._weight[self._id])

    @weight.setter
    def weight(self, value: float) -> None:
        self._table._weight[self._id] = value

    @property
    def direct(self) -> bool:
        return bool(self._table._direct[self._id])

    @direct.setter
    def direct(self, value: bool) -> None:
        self._table._direct[self._id] = value

    @property
    def last_contact(self) -> float:
        return float(self._table._last[self._id])

    @last_contact.setter
    def last_contact(self, value: float) -> None:
        self._table._last[self._id] = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"InterestRecord(weight={self.weight!r}, direct={self.direct!r}, "
            f"last_contact={self.last_contact!r})"
        )


class _RecordMap:
    """Dict-like adapter exposing a table's rows as keyword -> record.

    Preserves the historical ``table._records`` seam (tests seed and
    tweak records through it); values read back as live
    :class:`_RecordView` handles.
    """

    __slots__ = ("_table",)

    def __init__(self, table: "InterestTable"):
        self._table = table

    def __getitem__(self, keyword: str) -> _RecordView:
        table = self._table
        keyword_id = table._index.get(keyword)
        if keyword_id is None or not table._row_present(keyword_id):
            raise KeyError(keyword)
        return _RecordView(table, keyword_id)

    def __setitem__(self, keyword: str, record: InterestRecord) -> None:
        table = self._table
        keyword_id = table._slot(keyword)
        table._weight[keyword_id] = record.weight
        table._direct[keyword_id] = record.direct
        table._last[keyword_id] = record.last_contact
        table._present[keyword_id] = True
        table._invalidate_views()

    def __delitem__(self, keyword: str) -> None:
        table = self._table
        keyword_id = table._index.get(keyword)
        if keyword_id is None or not table._row_present(keyword_id):
            raise KeyError(keyword)
        table._present[keyword_id] = False
        table._weight[keyword_id] = 0.0
        table._invalidate_views()

    def __contains__(self, keyword: str) -> bool:
        table = self._table
        keyword_id = table._index.get(keyword)
        return keyword_id is not None and table._row_present(keyword_id)

    def __len__(self) -> int:
        return int(np.count_nonzero(self._table._present))

    def __iter__(self) -> Iterator[str]:
        table = self._table
        name_of = table._index.name_of
        for keyword_id in np.flatnonzero(table._present):
            yield name_of(int(keyword_id))

    def keys(self) -> Iterator[str]:
        return iter(self)

    def values(self) -> Iterator[_RecordView]:
        table = self._table
        for keyword_id in np.flatnonzero(table._present):
            yield _RecordView(table, int(keyword_id))

    def items(self) -> Iterator[Tuple[str, _RecordView]]:
        table = self._table
        name_of = table._index.name_of
        for keyword_id in np.flatnonzero(table._present):
            yield name_of(int(keyword_id)), _RecordView(table, int(keyword_id))

    def get(self, keyword: str, default=None):
        try:
            return self[keyword]
        except KeyError:
            return default


class InterestTable:
    """A node's keyword-weight table (direct + transient interests).

    Storage is struct-of-arrays: one float64/bool row per keyword id in
    the shared :class:`KeywordIndex`, with a ``present`` mask standing
    in for dict membership.  Algorithm 1 (decay) and Algorithm 2
    (growth) are elementwise — no cross-keyword accumulation — so the
    vectorised updates below compute bit-identical floats to the
    historical per-record loops (each element sees the same expression,
    evaluated in the same operation order).

    The table carries a monotonically increasing :attr:`version` bumped
    by every mutating operation (decay, growth, subscription), which
    lets callers memoise derived quantities — the router caches
    per-message interest sums against it — with trivially correct
    invalidation.
    """

    def __init__(
        self,
        direct_interests: Iterable[str],
        created_at: float = 0.0,
        *,
        index: Optional[KeywordIndex] = None,
    ):
        self._index = index if index is not None else KeywordIndex()
        #: Bumped on every mutation; cache-invalidation token.
        self.version: int = 0
        #: Bumped only when row *membership* changes (acquire, prune,
        #: subscribe).  Weight updates leave it alone, so the derived
        #: keyword/id views below survive ordinary decay/growth ticks.
        self._members_version: int = 0
        self._keywords_view: Optional[FrozenSet[str]] = None
        self._keywords_view_key: int = -1
        self._ids_view: Optional[np.ndarray] = None
        self._ids_view_key: int = -1
        self._ids_list_view: Optional[List[int]] = None
        self._ids_list_key: int = -1
        capacity = max(8, len(self._index))
        self._weight = np.zeros(capacity, dtype=np.float64)
        self._direct = np.zeros(capacity, dtype=bool)
        self._last = np.zeros(capacity, dtype=np.float64)
        self._present = np.zeros(capacity, dtype=bool)
        for keyword in direct_interests:
            keyword_id = self._slot(keyword)
            self._weight[keyword_id] = 0.5
            self._direct[keyword_id] = True
            self._last[keyword_id] = created_at
            self._present[keyword_id] = True

    # ------------------------------------------------------------------
    # Row plumbing
    # ------------------------------------------------------------------
    @property
    def index(self) -> KeywordIndex:
        """The shared keyword registry this table's rows live in."""
        return self._index

    @property
    def _records(self) -> _RecordMap:
        """Dict-like row access (compatibility seam; see _RecordMap)."""
        return _RecordMap(self)

    def _slot(self, keyword: str) -> int:
        """The row for ``keyword``, growing arrays to cover its id."""
        keyword_id = self._index.id_of(keyword)
        self._ensure(keyword_id)
        return keyword_id

    def _ensure(self, keyword_id: int) -> None:
        capacity = self._present.size
        if keyword_id < capacity:
            return
        new_capacity = max(capacity * 2, keyword_id + 1)
        grow = new_capacity - capacity
        self._weight = np.concatenate(
            [self._weight, np.zeros(grow, dtype=np.float64)]
        )
        self._direct = np.concatenate(
            [self._direct, np.zeros(grow, dtype=bool)]
        )
        self._last = np.concatenate(
            [self._last, np.zeros(grow, dtype=np.float64)]
        )
        self._present = np.concatenate(
            [self._present, np.zeros(grow, dtype=bool)]
        )

    def _row_present(self, keyword_id: int) -> bool:
        return keyword_id < self._present.size and bool(
            self._present[keyword_id]
        )

    def _invalidate_views(self) -> None:
        self._members_version += 1

    def __len__(self) -> int:
        return int(np.count_nonzero(self._present))

    def __contains__(self, keyword: str) -> bool:
        keyword_id = self._index.get(keyword)
        return keyword_id is not None and self._row_present(keyword_id)

    @property
    def keywords(self) -> FrozenSet[str]:
        """All keywords with a record (direct and transient).

        Cached per :attr:`version` — contact handling asks for this set
        repeatedly between mutations.
        """
        if self._keywords_view_key != self._members_version:
            name_of = self._index.name_of
            self._keywords_view = frozenset(
                name_of(int(i)) for i in self.present_ids()
            )
            self._keywords_view_key = self._members_version
        return self._keywords_view

    def present_ids(self) -> np.ndarray:
        """Ids of all present rows, ascending (cached per membership
        version, so ordinary decay/growth ticks reuse it).

        The id-space analogue of :attr:`keywords`; the router's decay
        hook unions these across connected peers.  Treat as read-only —
        membership changes replace (never mutate) the cached array, so
        outstanding references stay valid snapshots.
        """
        if self._ids_view_key != self._members_version:
            self._ids_view = np.flatnonzero(self._present)
            self._ids_view_key = self._members_version
        return self._ids_view

    def record(self, keyword: str) -> Optional[_RecordView]:
        """A live record handle for ``keyword``, or None."""
        keyword_id = self._index.get(keyword)
        if keyword_id is None or not self._row_present(keyword_id):
            return None
        return _RecordView(self, keyword_id)

    def weight(self, keyword: str) -> float:
        """Current weight of ``keyword`` (0.0 when absent)."""
        keyword_id = self._index.get(keyword)
        if keyword_id is None or not self._row_present(keyword_id):
            return 0.0
        return float(self._weight[keyword_id])

    def is_direct(self, keyword: str) -> bool:
        """Whether ``keyword`` is one of the node's own subscriptions."""
        keyword_id = self._index.get(keyword)
        return (
            keyword_id is not None
            and self._row_present(keyword_id)
            and bool(self._direct[keyword_id])
        )

    def sum_for(self, keywords: Iterable[str]) -> float:
        """``S`` — the sum of weights over ``keywords``.

        Deliberately a scalar loop in caller order: float addition is
        not associative, and bit-identical results require replaying
        exactly the historical accumulation order.
        """
        return sum(self.weight(k) for k in keywords)

    def sum_for_ids(self, ids: np.ndarray) -> float:
        """``S`` over pre-resolved keyword ids, in array order.

        Bit-identical to :meth:`sum_for` over the same keywords in the
        same order: absent rows contribute exactly ``0.0``, and adding
        ``0.0`` never changes an IEEE sum (weights are never ``-0.0``),
        so dropping out-of-range ids is safe.  The accumulation itself
        stays a sequential left-to-right Python sum.
        """
        capacity = self._present.size
        valid = ids[ids < capacity]
        if valid.size == 0:
            return 0 if ids.size == 0 else 0.0
        # Absent rows hold weight 0.0 by invariant (pruning and
        # deletion zero the row), so no presence mask is needed.
        return sum(self._weight[valid].tolist())

    def any_direct_ids(self, ids: np.ndarray) -> bool:
        """Whether any of the pre-resolved ids is a direct interest."""
        capacity = self._present.size
        valid = ids[ids < capacity]
        if valid.size == 0:
            return False
        # ndarray.any() rather than np.any(): the module-level wrapper's
        # dispatch overhead is measurable at hot-path call counts.
        return bool((self._present[valid] & self._direct[valid]).any())

    def batch_fill(
        self,
        misses: List[Tuple[Tuple[str, ...], np.ndarray]],
        sums: Dict[Tuple[str, ...], float],
        roles: Optional[Dict[Tuple[str, ...], str]],
    ) -> None:
        """Fill sum/role memo dicts for many keyword-id arrays at once.

        One concatenated gather replaces a per-key
        :meth:`sum_for_ids` + :meth:`any_direct_ids` pair — the
        dominant per-message cost of offering a full buffer during a
        contact.  Bit-identical to the per-key calls: out-of-range ids
        are redirected to row 0 but their fetched weight is overwritten
        with exactly ``0.0`` (what an absent row holds — adding it
        never changes an IEEE sum, and weights are never ``-0.0``) and
        their direct flag with ``False``; each key's sum then replays
        the same left-to-right Python accumulation over its own slice.
        """
        capacity = self._present.size
        if capacity == 0:
            for key, ids in misses:
                sums[key] = 0 if ids.size == 0 else 0.0
                if roles is not None:
                    roles[key] = "relay"
            return
        if len(misses) == 1:
            key, ids = misses[0]
            sums[key] = self.sum_for_ids(ids)
            if roles is not None:
                roles[key] = (
                    "destination" if self.any_direct_ids(ids) else "relay"
                )
            return
        cat = np.concatenate([ids for _, ids in misses])
        if cat.size == 0:
            for key, ids in misses:
                sums[key] = 0
                if roles is not None:
                    roles[key] = "relay"
            return
        if int(cat.max()) < capacity:
            # Common case: every id is in range (the shared index only
            # outruns a table's arrays briefly, until its next growth
            # tick) — no masking needed.
            values = self._weight[cat].tolist()
            flags = (
                (self._present[cat] & self._direct[cat]).tolist()
                if roles is not None
                else None
            )
        else:
            ok = cat < capacity
            safe = np.where(ok, cat, 0)
            weights = self._weight[safe]
            weights[~ok] = 0.0
            values = weights.tolist()
            flags = (
                (self._present[safe] & self._direct[safe] & ok).tolist()
                if roles is not None
                else None
            )
        start = 0
        for key, ids in misses:
            size = ids.size
            end = start + size
            if size == 0:
                sums[key] = 0
            else:
                sums[key] = sum(values[start:end])
            if flags is not None:
                roles[key] = (
                    "destination" if any(flags[start:end]) else "relay"
                )
            start = end

    def average_for(self, keywords: Iterable[str]) -> float:
        """Average weight over ``keywords`` (0 for an empty set)."""
        keys = list(keywords)
        if not keys:
            return 0.0
        return self.sum_for(keys) / len(keys)

    def direct_keywords(self) -> FrozenSet[str]:
        """The node's own subscription keywords."""
        name_of = self._index.name_of
        return frozenset(
            name_of(int(i))
            for i in np.flatnonzero(self._present & self._direct)
        )

    def reset(
        self, direct_interests: Iterable[str], created_at: float
    ) -> None:
        """Return the table to its freshly-created state.

        Used by the churn wipe path: a node that loses its volatile
        state restarts with exactly the table a brand-new node gets —
        zero rows, then its direct subscriptions re-seeded at weight
        0.5, and (crucially) :attr:`version` back at 0.  Works for both
        standalone tables and fused-store row views (all writes are
        in-place on the backing arrays).
        """
        self._weight[:] = 0.0
        self._direct[:] = False
        self._last[:] = 0.0
        self._present[:] = False
        self.version = 0
        self._members_version = 0
        self._keywords_view = None
        self._keywords_view_key = -1
        self._ids_view = None
        self._ids_view_key = -1
        self._ids_list_view = None
        self._ids_list_key = -1
        for keyword in direct_interests:
            keyword_id = self._slot(keyword)
            self._weight[keyword_id] = 0.5
            self._direct[keyword_id] = True
            self._last[keyword_id] = created_at
            self._present[keyword_id] = True

    def add_direct(self, keyword: str, now: float) -> None:
        """Subscribe to a new keyword (operator function *Subscribe*)."""
        self.version += 1
        keyword_id = self._slot(keyword)
        if self._present[keyword_id]:
            self._direct[keyword_id] = True
            self._weight[keyword_id] = max(
                float(self._weight[keyword_id]), 0.5
            )
        else:
            self._weight[keyword_id] = 0.5
            self._direct[keyword_id] = True
            self._last[keyword_id] = now
            self._present[keyword_id] = True
            self._members_version += 1

    # ------------------------------------------------------------------
    # Algorithm 1: decay
    # ------------------------------------------------------------------
    def decay(
        self,
        now: float,
        connected_keywords: Union[Set[str], np.ndarray],
        *,
        beta: float,
        prune_below: float = 1e-3,
    ) -> None:
        """Decay all weights per Algorithm 1 (vectorised).

        Args:
            now: Current time ``T_c``.
            connected_keywords: Keywords shared by *currently connected*
                devices; their weights are frozen and their ``T_l``
                refreshed.  Either a set of strings or an int64 array of
                keyword ids (the router's hot path).
            beta: Decay constant.
            prune_below: Transient records below this weight are removed
                (bounds table growth; direct interests are never pruned).
        """
        if beta <= 0:
            raise ConfigurationError(f"beta must be > 0, got {beta!r}")
        present = self._present
        if self.present_ids().size == 0:
            return
        capacity = present.size
        # Refresh T_l of connected rows by stamping ids directly — no
        # membership mask.  Stamping an *absent* row is harmless: its
        # ``last`` is dormant storage, unconditionally rewritten when
        # the row is acquired (grow/add_direct), and a stamped present
        # row is excluded from decay below because its elapsed is
        # exactly 0.0 (``now - now``), which is what the old explicit
        # ``~connected`` mask excluded.  Duplicate ids are harmless.
        last = self._last
        if isinstance(connected_keywords, np.ndarray):
            if connected_keywords.size:
                # The shared index may hold ids beyond this table's
                # arrays; those rows are absent here by definition.
                last[connected_keywords[connected_keywords < capacity]] = now
        elif isinstance(connected_keywords, list) and (
            not connected_keywords
            or isinstance(connected_keywords[0], np.ndarray)
        ):
            # A list of id arrays (one per connected peer), stamped
            # without materialising their concatenation.
            for part in connected_keywords:
                if part.size:
                    last[part[part < capacity]] = now
        else:
            get = self._index.get
            ids = [
                i
                for i in (get(k) for k in connected_keywords)
                if i is not None and i < capacity
            ]
            if ids:
                last[ids] = now
        # The updates below run compactly on the present rows only:
        # tables are sparse at scale (the shared index keeps widening
        # the arrays while a node holds a few dozen live rows), so
        # gather → small-array ops → scatter beats masked full-capacity
        # arithmetic by an order of magnitude.  Each written element
        # still sees exactly the scalar expression, in the same
        # operation order — the gather only changes *which* elements
        # are computed, never *how*.
        rows = self.present_ids()
        weight = self._weight
        if rows.size <= _SCALAR_ROWS_MAX:
            # Scalar path: same expression per row (Python floats are
            # the same IEEE doubles), no ufunc dispatch.  The list view
            # of the present rows is cached per membership version,
            # like the array view it mirrors.
            if self._ids_list_key != self._members_version:
                self._ids_list_view = rows.tolist()
                self._ids_list_key = self._members_version
            rows_l = self._ids_list_view
            last_l = last[rows].tolist()
            stale_ids: List[int] = []
            stale_elapsed: List[float] = []
            for i, t in zip(rows_l, last_l):
                e = now - t
                if e > 0.0:
                    stale_ids.append(i)
                    stale_elapsed.append(e)
            if not stale_ids:
                # Nothing decayed and nothing was pruned, so every
                # memoised sum/classification keyed on :attr:`version`
                # is still exact — the version deliberately does NOT
                # move (both paths).
                return
            self.version += 1
            old_l = weight[stale_ids].tolist()
            direct_l = self._direct[stale_ids].tolist()
            new_l: List[float] = []
            dead_ids: List[int] = []
            for k in range(len(stale_ids)):
                den = beta * stale_elapsed[k]
                if den < 1.0:
                    den = 1.0
                if direct_l[k]:
                    decayed = (old_l[k] - 0.5) / den + 0.5
                else:
                    decayed = (old_l[k] - 0.0) / den + 0.0
                    if decayed < prune_below:
                        dead_ids.append(stale_ids[k])
                new_l.append(decayed)
            weight[stale_ids] = new_l
            if dead_ids:
                weight[dead_ids] = 0.0
                present[dead_ids] = False
                self._members_version += 1
            return
        elapsed = now - last[rows]
        stale = elapsed > 0.0
        if not stale.any():
            return
        self.version += 1
        stale_rows = rows[stale]
        old = weight[stale_rows]
        direct = self._direct[stale_rows]
        denominator = np.maximum(beta * elapsed[stale], 1.0)
        # One fused expression for both record kinds: direct rows see
        # the literal Algorithm 1 form ``(w - 0.5)/den + 0.5``;
        # transient rows see ``(w - 0.0)/den + 0.0``, bit-identical to
        # ``w/den`` because weights are never negative zero.
        half = direct * 0.5
        decayed = (old - half) / denominator + half
        weight[stale_rows] = decayed
        dead = ~direct & (decayed < prune_below)
        if dead.any():
            dead_rows = stale_rows[dead]
            weight[dead_rows] = 0.0
            present[dead_rows] = False
            self._members_version += 1

    # ------------------------------------------------------------------
    # Algorithm 2: growth
    # ------------------------------------------------------------------
    def snapshot_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(ids, weights, direct)`` arrays of positive-weight rows.

        The peer-visible state of the table during a weight exchange.
        Fancy indexing copies, so the snapshot is immune to concurrent
        mutation of the table it came from — which is what keeps the
        two-sided growth update symmetric.  Only meaningful between
        tables sharing the same :class:`KeywordIndex`.
        """
        rows = self.present_ids()
        if rows.size == 0:
            return rows, np.empty(0, dtype=np.float64), np.empty(0, dtype=bool)
        weights = self._weight[rows]
        if weights.min() <= 0.0:
            # Only reachable through test-seeded zero-weight rows: live
            # rows keep positive weight (direct >= 0.5 always; transients
            # are pruned long before underflow).
            keep = weights > 0.0
            rows = rows[keep]
            weights = weights[keep]
        return rows, weights, self._direct[rows]

    def snapshot_weights(self) -> List[Tuple[str, float, bool]]:
        """``(keyword, weight, direct)`` triples with positive weight.

        String-keyed variant of :meth:`snapshot_arrays` for callers
        outside the hot path (and across distinct indexes)."""
        rows, weights, direct = self.snapshot_arrays()
        name_of = self._index.name_of
        return [
            (name_of(int(i)), float(w), bool(d))
            for i, w, d in zip(rows, weights, direct)
        ]

    def grow_from_arrays(
        self,
        peer_ids: np.ndarray,
        peer_weights: np.ndarray,
        peer_direct: np.ndarray,
        now: float,
        elapsed: float,
        *,
        growth_scale: float,
        elapsed_cap: float,
    ) -> None:
        """Grow this table from a peer's array snapshot per Algorithm 2.

        ``Delta = growth_scale * w_v(I) * min(elapsed, cap) / psi`` and
        the new weight is ``min(1, w + Delta)``.  Keywords we do not
        hold are acquired as transient interests.  ``peer_ids`` must be
        ids from this table's own :class:`KeywordIndex` and free of
        duplicates (snapshots are, by construction).

        The psi cases and the float expression are kept exactly as in
        the record-based formulation (``growth_scale * w * effective /
        psi``, left to right; psi selected per element) so the
        vectorisation is bit-identical.
        """
        if elapsed < 0:
            raise ConfigurationError(f"elapsed must be >= 0, got {elapsed!r}")
        if peer_ids.size == 0:
            return
        effective = min(elapsed, elapsed_cap)
        if effective <= 0.0:
            return  # every delta is exactly 0.0: nothing to write
        if peer_ids.size <= _SCALAR_ROWS_MAX:
            # Scalar path: identical per-element expression and psi
            # selection, without the ~10 ufunc dispatches the batched
            # form costs on a few dozen rows.
            ids_l = peer_ids.tolist()
            self._ensure(max(ids_l))
            weight = self._weight
            peer_w_l = peer_weights.tolist()
            peer_d_l = peer_direct.tolist()
            mine_p_l = self._present[ids_l].tolist()
            mine_d_l = self._direct[ids_l].tolist()
            mine_w_l = weight[ids_l].tolist()
            fresh_ids: List[int] = []
            fresh_w: List[float] = []
            grown_ids: List[int] = []
            grown_w: List[float] = []
            for k in range(len(ids_l)):
                if mine_p_l[k]:
                    psi = 2 if mine_d_l[k] else 4
                else:
                    psi = 6
                if peer_d_l[k]:
                    psi -= 1
                delta = growth_scale * peer_w_l[k] * effective / psi
                if delta <= 0.0:
                    continue
                if mine_p_l[k]:
                    w = mine_w_l[k] + delta
                    grown_ids.append(ids_l[k])
                    grown_w.append(w if w < 1.0 else 1.0)
                else:
                    fresh_ids.append(ids_l[k])
                    fresh_w.append(delta if delta < 1.0 else 1.0)
            if fresh_ids:
                weight[fresh_ids] = fresh_w
                self._direct[fresh_ids] = False
                self._last[fresh_ids] = now
                self._present[fresh_ids] = True
                self._members_version += 1
            if grown_ids:
                weight[grown_ids] = grown_w
                self._last[grown_ids] = now
            if fresh_ids or grown_ids:
                self.version += 1
            return
        self._ensure(int(peer_ids.max()))
        mine_present = self._present[peer_ids]
        mine_direct = self._direct[peer_ids]
        # psi in {1..6}: the nested psi_case collapses to a two-level
        # select minus the peer-direct bonus (2-1=1, 4-1=3, 6-1=5).
        psi = np.where(
            mine_present, np.where(mine_direct, 2, 4), 6
        ) - peer_direct
        delta = growth_scale * peer_weights * effective / psi
        active = delta > 0.0
        changed = False
        fresh = active & ~mine_present
        rows = peer_ids[fresh]
        if rows.size:
            self._weight[rows] = np.minimum(delta[fresh], 1.0)
            self._direct[rows] = False
            self._last[rows] = now
            self._present[rows] = True
            self._members_version += 1
            changed = True
        grown_mask = active & mine_present
        rows = peer_ids[grown_mask]
        if rows.size:
            self._weight[rows] = np.minimum(
                self._weight[rows] + delta[grown_mask], 1.0
            )
            self._last[rows] = now
            changed = True
        if changed:
            # Version moves only when a weight (or membership) actually
            # did — no-op growth ticks keep memoised sums alive.
            self.version += 1

    def grow_from_weights(
        self,
        peer_weights: List[Tuple[str, float, bool]],
        now: float,
        elapsed: float,
        *,
        growth_scale: float,
        elapsed_cap: float,
    ) -> None:
        """Grow this table from a string-keyed peer snapshot.

        Compatibility wrapper translating keywords into this table's
        index and delegating to :meth:`grow_from_arrays`.
        """
        id_of = self._index.id_of
        ids = np.asarray(
            [id_of(k) for k, _, _ in peer_weights], dtype=np.int64
        )
        weights = np.asarray(
            [w for _, w, _ in peer_weights], dtype=np.float64
        )
        direct = np.asarray(
            [d for _, _, d in peer_weights], dtype=bool
        )
        self.grow_from_arrays(
            ids, weights, direct, now, elapsed,
            growth_scale=growth_scale, elapsed_cap=elapsed_cap,
        )

    def grow_from(
        self,
        peer: "InterestTable",
        now: float,
        elapsed: float,
        *,
        growth_scale: float,
        elapsed_cap: float,
    ) -> None:
        """Grow this table from ``peer``'s weights per Algorithm 2.

        Convenience wrapper; callers that need symmetric two-sided
        growth should snapshot both tables first (see
        :meth:`ChitChatRouter.run_rtsr_growth`).
        """
        if peer._index is self._index:
            ids, weights, direct = peer.snapshot_arrays()
            self.grow_from_arrays(
                ids, weights, direct, now, elapsed,
                growth_scale=growth_scale, elapsed_cap=elapsed_cap,
            )
        else:
            self.grow_from_weights(
                peer.snapshot_weights(), now, elapsed,
                growth_scale=growth_scale, elapsed_cap=elapsed_cap,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        direct = int(np.count_nonzero(self._present & self._direct))
        return (
            f"InterestTable({direct} direct, "
            f"{len(self) - direct} transient)"
        )


class _StoreTable(InterestTable):
    """An :class:`InterestTable` whose arrays are rows of a fused store.

    ``_weight``/``_direct``/``_last``/``_present`` are 1-D views over
    one row of the store's 2-D arrays, so every inherited method works
    unchanged — reads and writes land in the fused store.  The only
    override is capacity growth: a row view cannot be grown in place,
    so ``_ensure`` asks the store to widen *all* rows and re-attach the
    views.
    """

    def __init__(self, store: "InterestStore", row: int):
        self._store = store
        self._row = row
        self._index = store.index
        self.version = 0
        self._members_version = 0
        self._keywords_view = None
        self._keywords_view_key = -1
        self._ids_view = None
        self._ids_view_key = -1
        self._ids_list_view = None
        self._ids_list_key = -1
        self._attach()

    def _attach(self) -> None:
        """(Re)bind the array views to this table's store row."""
        store = self._store
        row = self._row
        self._weight = store._w[row]
        self._direct = store._d[row]
        self._last = store._l[row]
        self._present = store._p[row]

    def _ensure(self, keyword_id: int) -> None:
        if keyword_id < self._present.size:
            return
        self._store.ensure_columns(keyword_id)


class InterestStore:
    """The fused ``[node-row × keyword]`` interest-weight store.

    One pair of 2-D float64 arrays (weights, last-contact stamps) plus
    two bool masks (direct, present) back *every* interest table the
    router creates, with columns indexed by the shared
    :class:`KeywordIndex` and one row per node table in creation order.
    Owned by ``WorldState`` on the SoA path (see
    ``WorldState.attach_interest_store``); the object-core ``World``
    keeps standalone per-node tables.

    Per-table semantics are untouched — tables are :class:`_StoreTable`
    row views and run the exact :class:`InterestTable` code.  What the
    fusion buys is the *batched* tick operations (:meth:`batch_decay`,
    :meth:`batch_grow_pairs`): contacts in one scan tick whose
    endpoints do not interleave run their Algorithm 1/2 updates as a
    handful of ufuncs over a ``(contacts, keywords)`` block instead of
    two Python calls per contact.  Both batched forms evaluate the
    identical IEEE expression per element as the per-table paths, so
    results are bit-identical (the differential harness and the fused
    property tests pin this).

    Rows are assigned lazily (tables are created on first contact), so
    memory scales with the *touched* population, not the configured one.
    """

    def __init__(self, index: KeywordIndex, *, rows: int = 64):
        self.index = index
        columns = max(8, len(index))
        rows = max(8, rows)
        self._w = np.zeros((rows, columns), dtype=np.float64)
        self._d = np.zeros((rows, columns), dtype=bool)
        self._l = np.zeros((rows, columns), dtype=np.float64)
        self._p = np.zeros((rows, columns), dtype=bool)
        self._tables: List[_StoreTable] = []

    @property
    def columns(self) -> int:
        """Current column capacity (>= ``len(self.index)``)."""
        return self._w.shape[1]

    def __len__(self) -> int:
        return len(self._tables)

    def create_table(
        self, direct_interests: Iterable[str], created_at: float
    ) -> _StoreTable:
        """A fresh table over the next free row, seeded like
        ``InterestTable(direct_interests, created_at)``."""
        row = len(self._tables)
        if row >= self._w.shape[0]:
            self._grow_rows(row + 1)
        table = _StoreTable(self, row)
        # Register before seeding: seeding may widen the columns, which
        # re-attaches every registered row view (including this one).
        self._tables.append(table)
        for keyword in direct_interests:
            keyword_id = table._slot(keyword)
            table._weight[keyword_id] = 0.5
            table._direct[keyword_id] = True
            table._last[keyword_id] = created_at
            table._present[keyword_id] = True
        return table

    def _grow_rows(self, need: int) -> None:
        old = self._w.shape[0]
        new = max(old * 2, need)
        for name in ("_w", "_d", "_l", "_p"):
            array = getattr(self, name)
            grown = np.zeros((new, array.shape[1]), dtype=array.dtype)
            grown[:old] = array
            setattr(self, name, grown)
        for table in self._tables:
            table._attach()

    def ensure_columns(self, keyword_id: int) -> None:
        """Widen all rows to cover ``keyword_id`` (geometric growth)."""
        old = self._w.shape[1]
        if keyword_id < old:
            return
        new = max(old * 2, keyword_id + 1)
        for name in ("_w", "_d", "_l", "_p"):
            array = getattr(self, name)
            grown = np.zeros((array.shape[0], new), dtype=array.dtype)
            grown[:, :old] = array
            setattr(self, name, grown)
        for table in self._tables:
            table._attach()

    # ------------------------------------------------------------------
    # Batched tick operations
    # ------------------------------------------------------------------
    def batch_decay(
        self,
        rows: np.ndarray,
        connected: np.ndarray,
        now: float,
        *,
        beta: float,
        prune_below: float = 1e-3,
    ) -> None:
        """Algorithm 1 over many rows at once.

        Args:
            rows: Store rows to decay.  The caller guarantees they are
                pairwise non-interfering (no row is another's connected
                peer) and that each has at least one present column —
                the per-table path early-returns (no stamp, no version
                bump) on empty tables, so empty rows must not be here.
            connected: ``(len(rows), columns)`` bool mask of keyword
                columns held by each row's currently-connected peers.
            now: Current time ``T_c``.
            beta: Decay constant.
            prune_below: Transient prune threshold.

        Per element this evaluates exactly the per-table expression
        (stamp connected ``T_l`` first, ``(w - half)/max(beta·dt, 1) +
        half``, prune transients below the threshold), so the floats
        are bit-identical to ``InterestTable.decay``.
        """
        W = self._w[rows]
        D = self._d[rows]
        P = self._p[rows]
        L = np.where(connected, now, self._l[rows])
        elapsed = now - L
        stale = P & (elapsed > 0.0)
        denominator = np.maximum(beta * elapsed, 1.0)
        half = D * 0.5
        decayed = (W - half) / denominator + half
        prune = stale & ~D & (decayed < prune_below)
        new_w = np.where(stale, decayed, W)
        new_w[prune] = 0.0
        self._w[rows] = new_w
        self._l[rows] = L
        self._p[rows] = P & ~prune
        stale_any = stale.any(axis=1)
        prune_any = prune.any(axis=1)
        tables = self._tables
        for k, row in enumerate(rows.tolist()):
            if stale_any[k]:
                table = tables[row]
                table.version += 1
                if prune_any[k]:
                    table._members_version += 1

    def batch_grow_pairs(
        self,
        rows_a: np.ndarray,
        rows_b: np.ndarray,
        effective: np.ndarray,
        now: float,
        *,
        growth_scale: float,
    ) -> None:
        """Algorithm 2, two-sided, over many contact pairs at once.

        Args:
            rows_a: First-endpoint store rows, one per ended contact.
            rows_b: Second-endpoint rows.  All rows across both arrays
                are distinct (the caller defers only non-interleaved
                pairs), so the two scatter-writes cannot collide.
            effective: Per-pair ``min(elapsed, cap)``; strictly > 0
                (zero-duration contacts are filtered by the caller, as
                the per-table path early-returns on them).
            now: Current time.
            growth_scale: Growth increment scale.

        Both sides grow from the *pre-exchange* gather of the other, so
        the update is symmetric exactly like
        ``ChitChatRouter.run_rtsr_growth``'s snapshot discipline.
        Absent columns hold weight exactly ``0.0`` by table invariant,
        so their deltas are ``0.0`` and they stay inactive — the same
        filtering ``snapshot_arrays`` performs.
        """
        W_a = self._w[rows_a]
        D_a = self._d[rows_a]
        P_a = self._p[rows_a]
        W_b = self._w[rows_b]
        D_b = self._d[rows_b]
        P_b = self._p[rows_b]
        eff = effective[:, None]
        self._grow_side(
            rows_a, W_a, D_a, P_a, W_b, D_b, eff, now, growth_scale
        )
        self._grow_side(
            rows_b, W_b, D_b, P_b, W_a, D_a, eff, now, growth_scale
        )

    def _grow_side(
        self,
        rows: np.ndarray,
        W: np.ndarray,
        D: np.ndarray,
        P: np.ndarray,
        peer_w: np.ndarray,
        peer_d: np.ndarray,
        eff: np.ndarray,
        now: float,
        growth_scale: float,
    ) -> None:
        # Same psi select and float expression (left to right) as
        # ``grow_from_arrays``; peer-absent columns contribute delta
        # exactly 0.0 and stay inactive.
        psi = np.where(P, np.where(D, 2, 4), 6) - peer_d
        delta = growth_scale * peer_w * eff / psi
        active = delta > 0.0
        fresh = active & ~P
        grown = active & P
        new_w = np.where(grown, np.minimum(W + delta, 1.0), W)
        new_w = np.where(fresh, np.minimum(delta, 1.0), new_w)
        self._w[rows] = new_w
        self._d[rows] = D & ~fresh
        self._l[rows] = np.where(active, now, self._l[rows])
        self._p[rows] = P | fresh
        changed = active.any(axis=1)
        acquired = fresh.any(axis=1)
        tables = self._tables
        for k, row in enumerate(rows.tolist()):
            if changed[k]:
                table = tables[row]
                table.version += 1
                if acquired[k]:
                    table._members_version += 1


class ChitChatRouter(Router):
    """The plain ChitChat protocol — the paper's comparison baseline.

    Args:
        beta: Decay constant.  The thesis example uses 2, but its own
            arithmetic is inconsistent (it reports 0.55 where the stated
            formula yields 0.51), and with beta=2 a transient interest
            divided by ``beta * dt`` dies within seconds of
            disconnection, killing multi-hop relaying outright.  The
            default 0.01 gives transient interests a ~100 s grace period
            (the clamp ``max(beta * dt, 1)`` binds until ``dt = 1/beta``)
            followed by hyperbolic decay — see DESIGN.md section 4.
        growth_scale: Scale applied to the growth increment (see module
            docstring).
        growth_elapsed_cap: Cap on the per-contact elapsed time used by
            growth, seconds.
        destinations_also_relay: Whether a destination keeps a copy in
            its buffer to serve further destinations (multicast
            dissemination, as the paper's "share with multiple
            destinations" implies).
        max_retransmissions: Retry budget per ``(receiver, message)``
            for transfers aborted by link-layer loss or corruption
            (never for mobility/churn aborts — the contact is gone).
            ``0`` (the default) disables retransmission entirely, which
            keeps fault-free runs bit-identical to the committed golden
            results.
        retransmit_backoff: Base delay before the first retry, seconds;
            doubles with each further attempt for the same copy.
    """

    name = "chitchat"

    #: Abort reasons eligible for retransmission (link survived).
    RETRYABLE_ABORTS = ("loss", "corruption")

    def __init__(
        self,
        *,
        beta: float = 0.01,
        growth_scale: float = 0.01,
        growth_elapsed_cap: float = 600.0,
        destinations_also_relay: bool = True,
        max_retransmissions: int = 0,
        retransmit_backoff: float = 30.0,
    ):
        super().__init__()
        if beta <= 0:
            raise ConfigurationError(f"beta must be > 0, got {beta!r}")
        if growth_scale <= 0:
            raise ConfigurationError(
                f"growth_scale must be > 0, got {growth_scale!r}"
            )
        if growth_elapsed_cap <= 0:
            raise ConfigurationError(
                f"growth_elapsed_cap must be > 0, got {growth_elapsed_cap!r}"
            )
        if max_retransmissions < 0:
            raise ConfigurationError(
                f"max_retransmissions must be >= 0, got {max_retransmissions!r}"
            )
        if retransmit_backoff <= 0:
            raise ConfigurationError(
                f"retransmit_backoff must be > 0, got {retransmit_backoff!r}"
            )
        self.beta = float(beta)
        self.growth_scale = float(growth_scale)
        self.growth_elapsed_cap = float(growth_elapsed_cap)
        self.destinations_also_relay = bool(destinations_also_relay)
        self.max_retransmissions = int(max_retransmissions)
        self.retransmit_backoff = float(retransmit_backoff)
        #: Keyword registry shared by every table this router creates;
        #: weight exchanges move id arrays, not strings.
        self.keyword_index = KeywordIndex()
        self._tables: Dict[int, InterestTable] = {}
        #: Fused [node × keyword] store backing every table when bound
        #: to an array-core world (see :meth:`bind`); None on the
        #: object-core path, where tables own their arrays.
        self._store: Optional[InterestStore] = None
        #: ``(pair, node)`` decay sides already run (or proven no-ops)
        #: by :meth:`prepare_contact_batch` this tick;
        #: ``run_rtsr_decay`` consumes and skips them side by side.
        self._predecayed: Set[Tuple[Tuple[int, int], int]] = set()
        # Interned memo keys: ordered keyword sequence -> small int.
        # Messages cache their key in ``_memo_key`` (invalidated on
        # annotate), so the hot paths hash one int instead of a string
        # tuple on every memo lookup.  Equal sequences share a key —
        # exactly the sharing the tuple keys gave.
        self._memo_keys: Dict[Tuple[str, ...], int] = {}
        # Per-message keyword-id arrays, keyed by the interned memo
        # key.  Ids follow the iteration order of the message's
        # keyword frozenset (identical sequences build identically
        # iterating frozensets), which is the order the scalar sum
        # accumulated in — the bit-parity requirement.
        self._message_id_cache: Dict[int, np.ndarray] = {}
        # Retransmission attempts used: message uuid -> {receiver_id ->
        # attempts}.  Grouped by uuid so the whole book for a message
        # drops in O(1) when its TTL expires, and a receiver's budget
        # is pruned the moment a copy lands (no further retry can ever
        # fire usefully for it) — long runs stay bounded and a node
        # that re-originates a uuid after churn starts with a fresh
        # budget (see on_message_expired / _prune_retries).
        self._retry_counts: Dict[str, Dict[int, int]] = {}
        # Selections precomputed by the tick batcher:
        # (sender, receiver) -> (tick time, select_messages result).
        # Consumed (popped) by select_messages; the time stamp guards
        # against an entry leaking past its contact-up event.
        self._preselected: Dict[
            Tuple[int, int], Tuple[float, List[Tuple[Message, str]]]
        ] = {}
        # Per-sender buffer snapshots for the batched selection:
        # node id -> (buffer mutation counter, (messages, uuids, sizes,
        # uuid ranks, memo keys) as parallel lists in buffer order).
        # Keying on the mutation counter is sound because annotations —
        # the only other way a buffered message's selection identity
        # can change — happen only in the same event as (and after)
        # the buffer.add that bumped the counter, never between a
        # snapshot build and its use (snapshots are built and consumed
        # inside contact-up events; enrichment runs in
        # transfer-completion events).
        self._buffer_snaps: Dict[
            int,
            Tuple[
                int,
                Tuple[
                    List[Message], List[str], List[int],
                    List[int], List[int],
                ],
            ],
        ] = {}
        # Memoised interest sums and destination/relay roles: node id ->
        # (table version at compute time, {memo key -> S},
        # {memo key -> role}).  A node's whole cache is discarded the
        # moment its table version moves on, so decay, growth and
        # subscriptions invalidate every dependent sum and
        # classification at once (see InterestTable.version).
        self._sum_cache: Dict[
            int,
            Tuple[int, Dict[int, float], Dict[int, str]],
        ] = {}

    def bind(self, world) -> None:
        """Attach to ``world``; adopt the fused store on array cores.

        A world exposing a ``WorldState`` (``world.state``, also visible
        through the incentive layer's substrate context) owns a fused
        :class:`InterestStore`; every table this router creates becomes
        a row of it and the world may drive the batched contact hooks.
        Object-core worlds get standalone per-node tables — the
        reference implementation stays untouched.
        """
        super().bind(world)
        state = getattr(world, "state", None)
        if state is not None and hasattr(state, "attach_interest_store"):
            store = getattr(state, "interest_store", None)
            if store is None or store.index is not self.keyword_index:
                store = InterestStore(self.keyword_index)
                state.attach_interest_store(store)
            self._store = store

    @property
    def supports_contact_batching(self) -> bool:
        """Batched contact hooks need the fused store (SoA path only)."""
        return self._store is not None

    # ------------------------------------------------------------------
    # RTSR state
    # ------------------------------------------------------------------
    def table(self, node_id: int) -> InterestTable:
        """The RTSR table for ``node_id`` (created lazily)."""
        existing = self._tables.get(node_id)
        if existing is None:
            node = self.world.node(node_id)
            if self._store is not None:
                existing = self._store.create_table(
                    node.interests, created_at=self.world.now
                )
            else:
                existing = InterestTable(
                    node.interests,
                    created_at=self.world.now,
                    index=self.keyword_index,
                )
            self._tables[node_id] = existing
        return existing

    def interest_sum(self, node_id: int, message: Message) -> float:
        """``S`` for ``message`` at ``node_id``.

        Memoised per ``(node, message keyword sequence)`` and
        invalidated by the table's version counter, so every buffered
        message offered during one encounter reuses a single
        computation.  The cache key is the *ordered* keyword sequence
        (not the set): the sum iterates the message's keyword frozenset,
        whose iteration order depends on construction order, and
        bit-identical results require replaying exactly that order.
        """
        table = self._tables.get(node_id)
        if table is None:
            table = self.table(node_id)
        cached = self._sum_cache.get(node_id)
        if cached is None or cached[0] != table.version:
            cached = (table.version, {}, {})
            self._sum_cache[node_id] = cached
        sums = cached[1]
        key = message._memo_key
        if key is None:
            key = self._intern_key(message)
        value = sums.get(key)
        if value is None:
            value = table.sum_for_ids(self._message_ids(message, key))
            sums[key] = value
        return value

    def _intern_key(self, message: Message) -> int:
        """Assign (or look up) the interned memo key for ``message``.

        Cold path of the ``message._memo_key`` cache: sequences seen
        before reuse their int, new ones take the next one.
        """
        sequence = message.keyword_sequence
        keys = self._memo_keys
        key = keys.get(sequence)
        if key is None:
            key = len(keys)
            keys[sequence] = key
        message._memo_key = key
        return key

    def _message_ids(self, message: Message, key: int) -> np.ndarray:
        """``message``'s keywords as ids, in frozenset iteration order.

        ``key`` must be ``message``'s interned memo key (the caller
        already has it on every path).
        """
        ids = self._message_id_cache.get(key)
        if ids is None:
            id_of = self.keyword_index.id_of
            ids = np.asarray(
                [id_of(k) for k in message.keywords], dtype=np.int64
            )
            self._message_id_cache[key] = ids
        return ids

    def _connected_keywords(self, node_id: int) -> Set[str]:
        """Keywords held by any currently connected peer of ``node_id``."""
        keywords: Set[str] = set()
        for link in self.world.active_links(node_id):
            peer = link.peer_of(node_id)
            keywords |= self.table(peer).keywords
        return keywords

    def _connected_ids(self, node_id: int) -> np.ndarray:
        """Keyword ids held by any currently connected peer (id-space
        analogue of :meth:`_connected_keywords`; same shared index).

        Iterates the world's zero-copy open-link view and resolves
        peer tables straight from the table dict: this runs twice per
        contact, so the ``active_links`` list build and ``peer_of``
        calls it replaced were a real cost at scale.
        """
        tables = self._tables
        parts = []
        for link in self.world.open_links(node_id):
            peer = link.b if link.a == node_id else link.a
            peer_table = tables.get(peer)
            if peer_table is None:
                peer_table = self.table(peer)
            parts.append(peer_table.present_ids())
        if not parts:
            return _EMPTY_IDS
        if len(parts) == 1:
            return parts[0]
        # Duplicates across peers are fine: decay consumes this as a
        # membership mask, so neither deduplication nor concatenation
        # would buy anything — hand the parts over as-is.
        return parts

    def run_rtsr_decay(self, link: Link) -> None:
        """Phase one of the weight exchange: decay on both endpoints."""
        predecayed = self._predecayed
        now = self.world.now
        pair = link.pair
        for node_id in pair:
            if predecayed:
                key = (pair, node_id)
                if key in predecayed:
                    # prepare_contact_batch already ran this side's
                    # decay (in the batched form, bit-identical) or
                    # proved it a no-op; don't decay twice.
                    predecayed.discard(key)
                    continue
            self.table(node_id).decay(
                now, self._connected_ids(node_id), beta=self.beta
            )

    def run_rtsr_growth(self, link: Link, elapsed: float) -> None:
        """Phase three: growth on both endpoints from the peer's table."""
        now = self.world.now
        table_a = self.table(link.a)
        table_b = self.table(link.b)
        # Grow from snapshots so the update is symmetric (b must not see
        # a's freshly grown weights); snapshots are id arrays over the
        # router-shared keyword index.
        ids_a, weights_a, direct_a = table_a.snapshot_arrays()
        ids_b, weights_b, direct_b = table_b.snapshot_arrays()
        table_a.grow_from_arrays(
            ids_b, weights_b, direct_b, now, elapsed,
            growth_scale=self.growth_scale,
            elapsed_cap=self.growth_elapsed_cap,
        )
        table_b.grow_from_arrays(
            ids_a, weights_a, direct_a, now, elapsed,
            growth_scale=self.growth_scale,
            elapsed_cap=self.growth_elapsed_cap,
        )

    # ------------------------------------------------------------------
    # Routing decisions
    # ------------------------------------------------------------------
    def classify(self, receiver_id: int, message: Message) -> str:
        """Operator *DecideDestOrRelay*: ``"destination"`` or ``"relay"``.

        A device with a *direct* interest in any tag is a destination;
        one with only transient interest is a relay candidate.

        Memoised alongside :meth:`interest_sum` (same version-keyed
        cache): a contact classifies every buffered message against the
        same table, and the answer only changes when the table does.
        """
        table = self._tables.get(receiver_id)
        if table is None:
            table = self.table(receiver_id)
        cached = self._sum_cache.get(receiver_id)
        if cached is None or cached[0] != table.version:
            cached = (table.version, {}, {})
            self._sum_cache[receiver_id] = cached
        roles = cached[2]
        key = message._memo_key
        if key is None:
            key = self._intern_key(message)
        role = roles.get(key)
        if role is None:
            if table.any_direct_ids(self._message_ids(message, key)):
                role = "destination"
            else:
                role = "relay"
            roles[key] = role
        return role

    def wants_as_relay(
        self, sender_id: int, receiver_id: int, message: Message
    ) -> bool:
        """The ChitChat forwarding rule ``S_v > S_u``."""
        return (
            self.interest_sum(receiver_id, message)
            > self.interest_sum(sender_id, message)
        )

    def select_messages(
        self, sender_id: int, receiver_id: int
    ) -> List[Tuple[Message, str]]:
        """Messages ``sender`` should offer ``receiver``, with their role.

        Returns:
            ``(message, "destination"|"relay")`` pairs, destinations
            first, then relays by descending receiver interest strength
            (so the most valuable transfers survive short contacts).
        """
        pre = self._preselected
        if pre:
            entry = pre.pop((sender_id, receiver_id), None)
            if entry is not None and entry[0] == self.world.now:
                # Precomputed by _preselect in this tick's batch hook;
                # the stamp check discards anything that somehow
                # outlived its contact-up event (e.g. an admitted pair
                # whose exchange a subclass suppressed).
                return entry[1]
        sender = self.world.node(sender_id)
        if len(sender.buffer) == 0:
            return []
        receiver = self.world.node(receiver_id)

        # Memo-dict setup first: both endpoint tables already exist
        # (prepare_contact decayed them), so the lookups create nothing.
        # The batch fills the same version-keyed dicts that
        # classify()/interest_sum() consult, one gather per table for
        # every cold key (the receive path afterwards hits warm
        # entries).  Sender sums are filled for destinations too —
        # harmless extra memo entries, and cheaper in the batch than a
        # second cold pass for the relay comparison.
        table_r = self.table(receiver_id)
        cached = self._sum_cache.get(receiver_id)
        if cached is None or cached[0] != table_r.version:
            cached = (table_r.version, {}, {})
            self._sum_cache[receiver_id] = cached
        sums_r = cached[1]
        roles_r = cached[2]
        table_s = self.table(sender_id)
        cached = self._sum_cache.get(sender_id)
        if cached is None or cached[0] != table_s.version:
            cached = (table_s.version, {}, {})
            self._sum_cache[sender_id] = cached
        sums_s = cached[1]

        # Single pass: per-message filters fused with cold-key
        # collection.
        candidates: List[Tuple[int, Message]] = []
        miss_r: List[Tuple[int, np.ndarray]] = []
        miss_s: List[Tuple[int, np.ndarray]] = []
        has_seen = receiver.has_seen
        receiver_capacity = receiver.buffer.capacity
        intern_key = self._intern_key
        for message in sender.buffer.messages():
            if has_seen(message.uuid):
                continue
            if message.size > receiver_capacity:
                continue
            key = message._memo_key
            if key is None:
                key = intern_key(message)
            candidates.append((key, message))
            # interest_sum()/classify() each warm only their own dict,
            # so sums and roles can be cold independently; recomputing
            # a warm half alongside the cold one is bit-identical.
            if key not in sums_r or key not in roles_r:
                sums_r[key] = None  # reserve so duplicates batch once
                roles_r[key] = None
                miss_r.append((key, self._message_ids(message, key)))
            if key not in sums_s:
                sums_s[key] = None
                miss_s.append((key, self._message_ids(message, key)))
        if not candidates:
            return []
        if miss_r:
            table_r.batch_fill(miss_r, sums_r, roles_r)
        if miss_s:
            table_s.batch_fill(miss_s, sums_s, None)

        # Pass 3: the original per-message decision, now pure dict
        # reads.  ``strength > sums_s[key]`` is wants_as_relay() on the
        # identical floats.
        destinations: List[Tuple[float, Message]] = []
        relays: List[Tuple[float, Message]] = []
        for key, message in candidates:
            strength = sums_r[key]
            if roles_r[key] == "destination":
                destinations.append((strength, message))
            elif strength > sums_s[key]:
                relays.append((strength, message))
        destinations.sort(key=lambda item: (-item[0], item[1].uuid))
        relays.sort(key=lambda item: (-item[0], item[1].uuid))
        return (
            [(m, "destination") for _, m in destinations]
            + [(m, "relay") for _, m in relays]
        )

    def relay_affinity(self, node_id: int, message: Message) -> float:
        """ChitChat's relay preference is the interest sum ``S``."""
        return self.interest_sum(node_id, message)

    def relay_trust(self, receiver_id: int, message: Message) -> float:
        """Average tag weight — the paper's relay-threshold signal."""
        key = message._memo_key
        if key is None:
            key = self._intern_key(message)
        ids = self._message_ids(message, key)
        if ids.size == 0:
            return 0.0
        return self.table(receiver_id).sum_for_ids(ids) / ids.size

    # ------------------------------------------------------------------
    # World hooks
    # ------------------------------------------------------------------
    def prepare_contact(self, link: Link) -> None:
        """Phase one of the weight exchange: decay on both endpoints."""
        self.run_rtsr_decay(link)

    def prepare_contact_batch(
        self, pairs: List[Tuple[int, int]]
    ) -> None:
        """Run the decay phase for a whole admitted contact batch.

        The world (SoA core) calls this once per contact-up tick with
        every admitted pair, *before* any link is created or exchange
        runs.  Every node's **first** decay of the tick runs here as
        one vectorised pass over the fused store; the per-pair
        ``run_rtsr_decay`` skips exactly those sides and runs the rest
        (second and later occurrences of the same node) sequentially at
        their legacy per-pair point.

        Why first occurrences are always batchable: a node's table is
        read between its own decays only by the message exchanges of
        its *own* earlier pairs (interest sums), and before its first
        pair of the tick it has none — so its first decay commutes from
        its legacy position to the head of the tick.  Its stamp mask —
        the open peers' membership the per-pair path reads through
        ``_connected_ids`` — is its tick-start open peers plus its
        first partner, all known up front.  Membership only *shrinks*
        during an up tick (growth and subscriptions happen elsewhere),
        and the single shrinking operation is the decay prune — so the
        one ordering hazard is a row pruning mid-tick, which would make
        a neighbour's mask depend on where in the tick it is read.
        Nodes that could prune are found up front by a conservative
        vectorised test (lightest transient weight under twice the
        prune threshold times the node's largest possible divisor
        raised to its pair count this tick — a 2x margin over the
        sequential-division drift, bounded rowwise from below); they
        and every batch node reading their membership (partners and
        tick-start open neighbours) fall back to the exact sequential
        path.  At paper densities this demotes ~3% of pairs.

        Empty tables are a special case on both paths: the per-table
        decay early-returns on them (no stamp, no version bump), and
        membership cannot appear during an up tick, so *all* their
        sides are marked as done without running anything.
        """
        store = self._store
        if store is None:
            return
        predecayed = self._predecayed
        predecayed.clear()
        world = self.world
        now = world.now
        beta = self.beta
        open_links = world.open_links
        table = self.table
        # Node -> [(pair, partner), ...] in tick order; the first entry
        # is the occurrence the batch takes over.
        occurrences: Dict[int, List[Tuple[Tuple[int, int], int]]] = {}
        occ_get = occurrences.get
        for pair in pairs:
            a, b = pair
            lst = occ_get(a)
            if lst is None:
                occurrences[a] = [(pair, b)]
            else:
                lst.append((pair, b))
            lst = occ_get(b)
            if lst is None:
                occurrences[b] = [(pair, a)]
            else:
                lst.append((pair, a))
        # Materialise every table this tick's decays would create (the
        # per-pair path creates partner and open-peer tables inside
        # ``_connected_ids``; fresh-table contents do not depend on
        # creation order within the tick) and collect each batch
        # node's tick-start open-peer rows once.
        tables = self._tables
        tables_get = tables.get
        start_peer_rows: Dict[int, List[int]] = {}
        for node in occurrences:
            if node not in tables:
                table(node)
            rows = []
            for link in open_links(node):
                peer = link.b if link.a == node else link.a
                peer_table = tables_get(peer)
                if peer_table is None:
                    peer_table = table(peer)
                rows.append(peer_table._row)
            start_peer_rows[node] = rows
        nodes = list(occurrences)
        n_nodes = len(nodes)
        node_rows = np.fromiter(
            (tables[n]._row for n in nodes), dtype=np.intp, count=n_nodes
        )
        presence = store._p[node_rows]
        present_any = presence.any(axis=1)
        # Conservative prune risk as row scalars: a node can prune only
        # if its lightest transient weight divided by its *largest*
        # possible per-tick divisor, applied once per occurrence, dips
        # under twice the prune threshold.  This bounds the exact
        # per-element test (weight / den**k per keyword) from below, so
        # it only ever demotes more — and keeps the matrix maths to
        # two masked reductions instead of a dense power.
        transient = presence & ~store._d[node_rows]
        wmin = np.where(
            transient, store._w[node_rows], np.inf
        ).min(axis=1)
        lmin = np.where(
            transient, store._l[node_rows], np.inf
        ).min(axis=1)
        denmax = np.maximum(beta * (now - lmin), 1.0)
        k = np.fromiter(
            (len(occurrences[n]) for n in nodes),
            dtype=np.float64, count=n_nodes,
        )
        risky = wmin < 2e-3 * denmax ** k
        pruny = {nodes[i] for i in np.flatnonzero(risky)}
        tainted = set(pruny)
        if pruny:
            for n in pruny:
                for _pair, partner in occurrences[n]:
                    tainted.add(partner)
            pruny_rows = {int(tables[n]._row) for n in pruny}
            for n in nodes:
                if n in tainted:
                    continue
                for row in start_peer_rows[n]:
                    if row in pruny_rows:
                        tainted.add(n)
                        break
        batch_idx: List[int] = []
        flat_peer_rows: List[int] = []
        starts: List[int] = []
        present_list = present_any.tolist()
        predecayed_add = predecayed.add
        for i in range(n_nodes):
            n = nodes[i]
            occ = occurrences[n]
            if not present_list[i]:
                for pair, _partner in occ:
                    predecayed_add((pair, n))
                continue
            if n in tainted:
                continue
            batch_idx.append(i)
            predecayed_add((occ[0][0], n))
            # Stamp mask sources: tick-start open peers, then the first
            # partner (whose link exists by the time the per-pair path
            # would have read it).
            starts.append(len(flat_peer_rows))
            flat_peer_rows.extend(start_peer_rows[n])
            flat_peer_rows.append(int(tables[occ[0][1]]._row))
        if batch_idx:
            # Segment-OR the gathered peer membership rows into one
            # connected mask per batched node (every segment is
            # non-empty: the first partner is always there).
            gathered = store._p[
                np.asarray(flat_peer_rows, dtype=np.intp)
            ]
            connected = np.logical_or.reduceat(
                gathered, np.asarray(starts, dtype=np.intp), axis=0
            )
            store.batch_decay(
                node_rows[np.asarray(batch_idx, dtype=np.intp)],
                connected, now, beta=beta,
            )
        self._preselect(pairs, now)

    def _buffer_entries(
        self, node
    ) -> Tuple[
        List[Message], List[str], List[int], List[int], List[int]
    ]:
        """Snapshot of ``node``'s buffer for the batched selection.

        Parallel lists ``(messages, uuids, sizes, ranks, keys)`` in
        buffer (arrival) order; rank is the message's position in the
        uuid-sorted order of this buffer, which is all the global
        lexsort needs to replay the ``(-strength, uuid)`` tiebreak —
        ties can only form between messages of the same buffer — and
        ``keys`` are the interned memo keys (interning here keeps the
        per-side hot loop free of attribute checks).  Cached on
        :attr:`MessageBuffer.mutations`, valid because uuid/size/
        keywords are immutable and annotation (which the counter
        ignores) never touches them.
        """
        buffer = node.buffer
        token = buffer.mutations
        snap = self._buffer_snaps.get(node.node_id)
        if snap is not None and snap[0] == token:
            return snap[1]
        messages = buffer.messages()
        by_uuid = sorted(range(len(messages)), key=lambda i: messages[i].uuid)
        ranks = [0] * len(messages)
        for rank, i in enumerate(by_uuid):
            ranks[i] = rank
        intern_key = self._intern_key
        entry = (
            messages,
            [m.uuid for m in messages],
            [m.size for m in messages],
            ranks,
            [
                m._memo_key if m._memo_key is not None else intern_key(m)
                for m in messages
            ],
        )
        self._buffer_snaps[node.node_id] = (token, entry)
        return entry

    def _preselect(self, pairs: List[Tuple[int, int]], now: float) -> None:
        """Precompute ``select_messages`` for every provably-safe side.

        Runs at the tail of :meth:`prepare_contact_batch`, after the
        batched decay.  A pair is safe when *both* its sides are in
        ``_predecayed`` — each endpoint's table is then final for the
        tick by the time that pair's exchange runs (its only decay of
        the tick already happened here, or it is empty and decay is a
        no-op), and everything else ``select_messages`` reads is frozen
        for the whole up tick: buffers, seen-sets and capacities only
        change in transfer-completion events (``send_message`` just
        queues), and the whole tick's opens run inside one engine
        callback.  So computing all safe sides now, against the same
        state their sequential calls would see, is bit-identical — and
        lets candidate filtering, interest sums, classification and the
        ``(-strength, uuid)`` ordering run as one fused pass instead of
        two table gathers and two Python sorts per pair.

        Unsafe sides (multi-occurrence or prune-tainted nodes) are
        simply not stored; their ``select_messages`` calls take the
        sequential path unchanged.
        """
        preselected = self._preselected
        preselected.clear()
        predecayed = self._predecayed
        store = self._store
        world = self.world
        node_of = world.node
        message_ids = self._message_ids
        sum_cache = self._sum_cache
        table = self.table

        # Per-node memo dicts, version-checked once per tick (versions
        # cannot move between here and the safe pairs' exchanges).
        caches: Dict[int, Tuple[Dict[int, float], Dict[int, str]]] = {}

        def memo_for(node_id: int) -> Tuple[Dict[int, float], Dict[int, str]]:
            entry = caches.get(node_id)
            if entry is None:
                t = table(node_id)
                cached = sum_cache.get(node_id)
                if cached is None or cached[0] != t.version:
                    cached = (t.version, {}, {})
                    sum_cache[node_id] = cached
                entry = (cached[1], cached[2])
                caches[node_id] = entry
            return entry

        # Unified slot table: one ``(value, is-destination)`` entry per
        # needed table read, so the keep/order decision below is pure
        # array gathers.  Warm entries copy the memo value at creation;
        # cold ones queue a fused-store gather request and are filled
        # (and written back to the memos) after the batch compute.
        # Receiver- and sender-space slots are indexed separately — a
        # receiver slot needs the sum *and* the role warm, a sender
        # slot only the sum — so one node can occupy a slot in each
        # space for the same key; the cold recompute is bit-identical
        # and the memo writeback idempotent, exactly like the
        # sequential path's "harmless extra memo entries".
        rslot_index: Dict[Tuple[int, int], int] = {}
        sslot_index: Dict[Tuple[int, int], int] = {}
        slot_vals: List[float] = []
        slot_dest: List[bool] = []
        req_slots: List[int] = []
        req_rows: List[int] = []
        req_keys: List[int] = []
        req_sums: List[Dict[int, float]] = []
        req_roles: List[Dict[int, str]] = []
        key_slots: Dict[int, List[int]] = {}
        key_ids: Dict[int, np.ndarray] = {}

        sides: List[Tuple[int, int]] = []
        flat_side: List[int] = []
        flat_rank: List[int] = []
        flat_rslot: List[int] = []
        flat_sslot: List[int] = []
        flat_msg: List[Message] = []
        append_side = flat_side.append
        append_rank = flat_rank.append
        append_rs = flat_rslot.append
        append_ss = flat_sslot.append
        append_msg = flat_msg.append

        for pair in pairs:
            a, b = pair
            if (pair, a) not in predecayed or (pair, b) not in predecayed:
                continue
            for sender_id, receiver_id in ((a, b), (b, a)):
                side = len(sides)
                sides.append((sender_id, receiver_id))
                messages, uuids, sizes, ranks, keys = self._buffer_entries(
                    node_of(sender_id)
                )
                if not messages:
                    continue
                receiver = node_of(receiver_id)
                seen = receiver.seen
                receiver_capacity = receiver.buffer.capacity
                sums_r, roles_r = memo_for(receiver_id)
                sums_s, roles_s = memo_for(sender_id)
                recv_row = table(receiver_id)._row
                send_row = table(sender_id)._row
                local: Dict[int, Tuple[int, int]] = {}
                local_get = local.get
                for i, uuid in enumerate(uuids):
                    if uuid in seen or sizes[i] > receiver_capacity:
                        continue
                    key = keys[i]
                    slots = local_get(key)
                    if slots is None:
                        rs = rslot_index.get((receiver_id, key))
                        if rs is None:
                            rs = len(slot_vals)
                            rslot_index[(receiver_id, key)] = rs
                            if key in sums_r and key in roles_r:
                                slot_vals.append(sums_r[key])
                                slot_dest.append(
                                    roles_r[key] == "destination"
                                )
                            else:
                                slot_vals.append(0.0)
                                slot_dest.append(False)
                                req_slots.append(rs)
                                req_rows.append(recv_row)
                                req_keys.append(key)
                                req_sums.append(sums_r)
                                req_roles.append(roles_r)
                                if key not in key_ids:
                                    key_ids[key] = message_ids(
                                        messages[i], key
                                    )
                                key_slots.setdefault(key, []).append(
                                    len(req_rows) - 1
                                )
                        ss = sslot_index.get((sender_id, key))
                        if ss is None:
                            ss = len(slot_vals)
                            sslot_index[(sender_id, key)] = ss
                            if key in sums_s:
                                slot_vals.append(sums_s[key])
                                slot_dest.append(False)
                            else:
                                slot_vals.append(0.0)
                                slot_dest.append(False)
                                req_slots.append(ss)
                                req_rows.append(send_row)
                                req_keys.append(key)
                                req_sums.append(sums_s)
                                req_roles.append(roles_s)
                                if key not in key_ids:
                                    key_ids[key] = message_ids(
                                        messages[i], key
                                    )
                                key_slots.setdefault(key, []).append(
                                    len(req_rows) - 1
                                )
                        local[key] = slots = (rs, ss)
                    append_side(side)
                    append_rank(ranks[i])
                    append_rs(slots[0])
                    append_ss(slots[1])
                    append_msg(messages[i])

        if req_rows:
            kmax = max(key_ids[key].size for key in key_slots)
            n_req = len(req_rows)
            if kmax == 0:
                sums_list = [0] * n_req
                dest_list = [False] * n_req
            else:
                ids_mat = np.zeros((n_req, kmax), dtype=np.int64)
                valid = np.zeros((n_req, kmax), dtype=bool)
                empty_reqs: List[int] = []
                for key, slots in key_slots.items():
                    ids = key_ids[key]
                    n = ids.size
                    if n == 0:
                        empty_reqs.extend(slots)
                        continue
                    ids_mat[slots, :n] = ids
                    valid[slots, :n] = True
                rows_arr = np.asarray(req_rows, dtype=np.intp)
                # Mirrors sum_for_ids/any_direct_ids exactly: ids at or
                # beyond the column capacity contribute weight 0.0 and
                # direct False; the accumulation is left-to-right with
                # trailing 0.0 padding, which never moves an IEEE sum
                # (weights are never -0.0).
                eff = valid & (ids_mat < store.columns)
                safe_ids = np.where(eff, ids_mat, 0)
                Wm = store._w[rows_arr[:, None], safe_ids]
                Wm[~eff] = 0.0
                acc = Wm[:, 0]
                for j in range(1, kmax):
                    acc = acc + Wm[:, j]
                dest = (
                    store._p[rows_arr[:, None], safe_ids]
                    & store._d[rows_arr[:, None], safe_ids]
                    & eff
                ).any(axis=1)
                sums_list = acc.tolist()
                dest_list = dest.tolist()
                for pos in empty_reqs:
                    # sum_for_ids returns the int 0 for an empty id
                    # array — preserve the exact memo contents.
                    sums_list[pos] = 0
                    dest_list[pos] = False
            for pos in range(n_req):
                value = sums_list[pos]
                is_dest = dest_list[pos]
                key = req_keys[pos]
                req_sums[pos][key] = value
                req_roles[pos][key] = (
                    "destination" if is_dest else "relay"
                )
                slot = req_slots[pos]
                slot_vals[slot] = value
                slot_dest[slot] = is_dest

        results: List[List[Tuple[Message, str]]] = [[] for _ in sides]
        if flat_msg:
            vals = np.asarray(slot_vals, dtype=np.float64)
            dests = np.asarray(slot_dest, dtype=bool)
            rs_arr = np.asarray(flat_rslot, dtype=np.intp)
            S_r = vals[rs_arr]
            dest_flags = dests[rs_arr]
            keep = dest_flags | (
                S_r > vals[np.asarray(flat_sslot, dtype=np.intp)]
            )
            kept = np.flatnonzero(keep)
            if kept.size:
                # One global lexsort replays every side's two sequential
                # sorts: primary = side, then destinations before
                # relays, then descending strength, then the uuid rank
                # (ranks are per-buffer, but ties only form within one
                # side's buffer).  -0.0 vs 0.0 compare equal in both
                # sorts, so the negation is safe.
                side_arr = np.asarray(flat_side, dtype=np.intp)
                rank_arr = np.asarray(flat_rank, dtype=np.int64)
                order = np.lexsort((
                    rank_arr[kept],
                    -S_r[kept],
                    ~dest_flags[kept],
                    side_arr[kept],
                ))
                dflags = dest_flags.tolist()
                for idx in kept[order].tolist():
                    results[flat_side[idx]].append((
                        flat_msg[idx],
                        "destination" if dflags[idx] else "relay",
                    ))
        for i, side_pair in enumerate(sides):
            preselected[side_pair] = (now, results[i])

    def on_contact_start(self, link: Link) -> None:
        self.prepare_contact(link)
        self._exchange(link)

    def on_contact_end(self, link: Link) -> None:
        elapsed = self.world.now - link.opened_at
        self.run_rtsr_growth(link, elapsed)

    def contact_end_batch(self, links: List[Link]) -> None:
        """Run the growth phase for a whole tick of ended contacts.

        The world (SoA core) defers ``on_contact_end`` for *every*
        closed pair of the down tick and hands them here in close
        order.  The down tick reads interest tables only through these
        growths (close/abort handling touches none), so the only order
        that matters is each node's own growth sequence.  That is
        preserved exactly by round decomposition: a pair's round is one
        past the latest round either endpoint already appears in, so
        within a round every node appears at most once (the distinct-
        rows contract of ``batch_grow_pairs``) and a node's growths run
        in the same relative order as the per-pair path.  Each round is
        one store-level pass — snapshot-gather both sides first, then
        scatter, the same symmetry discipline as ``run_rtsr_growth`` —
        so the result is bit-identical.  At paper densities almost
        every pair lands in round zero.
        """
        store = self._store
        if store is None:
            for link in links:
                self.on_contact_end(link)
            return
        now = self.world.now
        cap = self.growth_elapsed_cap
        table = self.table
        last_round: Dict[int, int] = {}
        rounds: List[Tuple[List[int], List[int], List[float]]] = []
        for link in links:
            elapsed = now - link.opened_at
            clipped = min(elapsed, cap)
            if clipped <= 0.0:
                # Zero-duration contact: every delta is exactly 0.0 and
                # the per-pair path writes nothing (version included).
                # An exact no-op — skipped without consuming a round.
                continue
            a, b = link.pair
            r = max(last_round.get(a, -1), last_round.get(b, -1)) + 1
            last_round[a] = r
            last_round[b] = r
            if r == len(rounds):
                rounds.append(([], [], []))
            rows_a, rows_b, effective = rounds[r]
            rows_a.append(table(a)._row)
            rows_b.append(table(b)._row)
            effective.append(clipped)
        for rows_a, rows_b, effective in rounds:
            store.batch_grow_pairs(
                np.asarray(rows_a, dtype=np.intp),
                np.asarray(rows_b, dtype=np.intp),
                np.asarray(effective, dtype=np.float64),
                now,
                growth_scale=self.growth_scale,
            )

    def _exchange(self, link: Link) -> None:
        """Offer messages in both directions after the RTSR update."""
        for sender_id in link.pair:
            receiver_id = link.peer_of(sender_id)
            for message, _role in self.select_messages(sender_id, receiver_id):
                self.world.send_message(link, sender_id, message)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        role = self.classify(receiver.node_id, message)
        if role == "destination":
            self.world.deliver(receiver, message)
            if self.destinations_also_relay:
                self.world.accept_relay(receiver, message)
        else:
            if not self.world.accept_relay(receiver, message):
                return
        self._prune_retries(message.uuid, receiver.node_id)
        self._forward_onward(receiver.node_id, message)

    # ------------------------------------------------------------------
    # Bounded retransmission with exponential backoff
    # ------------------------------------------------------------------
    def on_transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        self._maybe_retransmit(transfer)

    def _maybe_retransmit(self, transfer: Transfer) -> None:
        """Schedule a backed-off retry for a loss/corruption abort."""
        if self.max_retransmissions <= 0:
            return
        if transfer.abort_reason not in self.RETRYABLE_ABORTS:
            return
        # Check the receiver can actually take the retry *before*
        # consuming an attempt: under blackout/churn faults the abort
        # often races the receiver going dark, and a budgeted attempt
        # burned on a dark node is denied to a real later contact.
        # Worlds that cannot answer (unit-test stubs) skip the guard.
        available = getattr(self.world, "node_available", None)
        if available is not None and not available(transfer.receiver):
            return
        uuid = transfer.message.uuid
        per_receiver = self._retry_counts.get(uuid)
        used = 0 if per_receiver is None else per_receiver.get(
            transfer.receiver, 0
        )
        if used >= self.max_retransmissions:
            return
        if per_receiver is None:
            per_receiver = self._retry_counts[uuid] = {}
        per_receiver[transfer.receiver] = used + 1
        delay = self.retransmit_backoff * (2 ** used)
        sender_id, receiver_id = transfer.sender, transfer.receiver
        # Lazy label: retransmission timers are scheduled in bulk under
        # fault injection and most never surface their label.
        self.world.schedule_in(
            delay,
            lambda: self._retransmit(sender_id, receiver_id, uuid),
            label=lambda: f"retransmit {uuid} {sender_id}->{receiver_id}",
        )

    def _retransmit(self, sender_id: int, receiver_id: int, uuid: str) -> None:
        """Fire a scheduled retry if it is still worth sending."""
        link = self.world.link_between(sender_id, receiver_id)
        if link is None or link.closed:
            return
        sender = self.world.node(sender_id)
        message = sender.buffer.get(uuid)
        if message is None:  # the copy expired or was evicted meanwhile
            return
        if self.world.node(receiver_id).has_seen(uuid):
            return  # another path got it there first
        if self._reoffer(link, sender_id, receiver_id, message) is not None:
            self.world.metrics.on_retransmission()

    def _prune_retries(self, uuid: str, receiver_id: int) -> None:
        """Drop the retry budget entry a landed copy made unusable.

        Once ``receiver_id`` has the message, every future retry toward
        it no-ops at ``_retransmit``'s has-seen check, so the counter
        is dead weight — and on long runs the dead weight is the leak
        this fixes.  The whole per-uuid book goes when its last
        receiver entry does (TTL expiry drops the rest, see
        :meth:`on_message_expired`).
        """
        per_receiver = self._retry_counts.get(uuid)
        if per_receiver is not None:
            per_receiver.pop(receiver_id, None)
            if not per_receiver:
                del self._retry_counts[uuid]

    def on_copy_received(
        self,
        transfer: Transfer,
        receiver_id: int,
        message: Message,
        role: str,
        accepted: bool,
    ) -> None:
        """Layer-driven receives must prune like the native path does.

        The incentive layer performs the receive itself and tells the
        substrate through this hook (it never calls
        ``on_message_received``), so the retry-book pruning has to
        happen here too.  A copy marks the receiver as having seen the
        message when the buffer accepted it or it was delivered as a
        destination (delivery marks ``seen`` even when the destination
        keeps no relay copy); a refused relay copy leaves the budget
        alone.
        """
        if accepted or role == "destination":
            self._prune_retries(message.uuid, receiver_id)

    def on_message_expired(self, node_id: int, message: Message) -> None:
        """TTL expiry: drop the message's whole retry book.

        TTL is measured from message *creation*, so every copy expires
        in the same sweep — once the first copy goes, no node can offer
        the uuid again and the counters can never be consulted.  A node
        that re-originates the uuid after churn then starts with the
        fresh budget it should.
        """
        self._retry_counts.pop(message.uuid, None)

    def on_node_wiped(self, node_id: int) -> None:
        """Churn wipe: protocol state must restart from scratch.

        The RTSR weights are volatile state, so the wipe policy resets
        the node's table to its freshly-created condition (direct
        subscriptions re-seeded, version 0) — and the version reset is
        exactly why the memo entries *must* go: a pre-crash memo keyed
        at version ``V`` would collide with the restarted table once it
        has taken ``V`` updates, serving sums for weights that no
        longer exist.  The buffer snapshot cache goes for the same
        reason (the mutation counter keeps counting across the wipe,
        but snapshot entries hold pre-crash message objects).
        """
        table = self._tables.get(node_id)
        if table is not None:
            table.reset(self.world.node(node_id).interests, self.world.now)
        self._sum_cache.pop(node_id, None)
        self._buffer_snaps.pop(node_id, None)

    def _reoffer(
        self, link: Link, sender_id: int, receiver_id: int, message: Message
    ) -> Optional[Transfer]:
        """Re-queue one copy for a retransmission attempt.

        Overridden by the incentive router to run the full payment
        pipeline (escrow, prepay) rather than a bare send.
        """
        return self.world.send_message(link, sender_id, message)

    def _forward_onward(self, holder_id: int, message: Message) -> None:
        """Offer a freshly received message on the holder's other links."""
        holder = self.world.node(holder_id)
        if message.uuid not in holder.buffer:
            return
        for link in self.world.active_links(holder_id):
            peer_id = link.peer_of(holder_id)
            peer = self.world.node(peer_id)
            if peer.has_seen(message.uuid):
                continue
            role = self.classify(peer_id, message)
            if role == "destination" or self.wants_as_relay(
                holder_id, peer_id, message
            ):
                self.world.send_message(link, holder_id, message)
