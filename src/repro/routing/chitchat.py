"""ChitChat routing with Real-time Transient Social Relationships (RTSR).

This is the paper's substrate (McGeehan, Lin, Madria — ICDCS 2016) as
specified in Paper I Sections 2.2-2.4:

* Every node has *direct* interests (its own subscriptions, initial
  weight 0.5) and *transient* interests acquired from encountered nodes.
* On contact, weights are first **decayed** (Algorithm 1), the decayed
  weights are exchanged, then **grown** (Algorithm 2) from the peer's
  weights with a case factor psi.
* Messages route by interest strength: ``u`` forwards message ``M`` to
  ``v`` when ``S_v > S_u`` where ``S_x`` is the sum of ``x``'s weights
  over ``M``'s keywords; a node with a *direct* interest in a tag is a
  destination and always receives the message.

Ambiguities resolved here (see DESIGN.md section 4): the decay
denominator is clamped to >= 1 so decay never amplifies a weight; the
growth increment is scaled by ``growth_scale`` and the per-contact
elapsed time is capped, because the raw thesis formula grows without
bound in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["InterestRecord", "InterestTable", "ChitChatRouter", "psi_case"]


@dataclass
class InterestRecord:
    """State of one interest keyword at one node.

    Attributes:
        weight: Current ChitChat weight in [0, 1].
        direct: True for the node's own subscription, False for a
            transient (acquired) interest.
        last_contact: Latest time a device sharing the interest was
            connected (``T_l`` in Algorithm 1).
    """

    weight: float
    direct: bool
    last_contact: float


def psi_case(u_record: Optional[InterestRecord],
             v_record: InterestRecord) -> int:
    """The growth divisor psi in {1..6} for a keyword's (u, v) status.

    The thesis names two cases explicitly (both direct -> 1; u direct,
    v transient -> 2); the remaining four follow the same ordering:
    stronger evidence (direct on both sides) grows fastest.
    """
    v_direct = v_record.direct
    if u_record is None:
        return 5 if v_direct else 6
    if u_record.direct:
        return 1 if v_direct else 2
    return 3 if v_direct else 4


class InterestTable:
    """A node's keyword-weight table (direct + transient interests).

    The table carries a monotonically increasing :attr:`version` bumped
    by every mutating operation (decay, growth, subscription), which
    lets callers memoise derived quantities — the router caches
    per-message interest sums against it — with trivially correct
    invalidation.
    """

    def __init__(self, direct_interests: Iterable[str], created_at: float = 0.0):
        self._records: Dict[str, InterestRecord] = {}
        #: Bumped on every mutation; cache-invalidation token.
        self.version: int = 0
        self._keywords_view: Optional[FrozenSet[str]] = None
        self._keywords_view_version: int = -1
        for keyword in direct_interests:
            self._records[keyword] = InterestRecord(
                weight=0.5, direct=True, last_contact=created_at
            )

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._records

    @property
    def keywords(self) -> FrozenSet[str]:
        """All keywords with a record (direct and transient).

        Cached per :attr:`version` — contact handling asks for this set
        repeatedly between mutations.
        """
        if self._keywords_view_version != self.version:
            self._keywords_view = frozenset(self._records)
            self._keywords_view_version = self.version
        return self._keywords_view

    def record(self, keyword: str) -> Optional[InterestRecord]:
        """The record for ``keyword``, or None."""
        return self._records.get(keyword)

    def weight(self, keyword: str) -> float:
        """Current weight of ``keyword`` (0.0 when absent)."""
        record = self._records.get(keyword)
        return record.weight if record is not None else 0.0

    def is_direct(self, keyword: str) -> bool:
        """Whether ``keyword`` is one of the node's own subscriptions."""
        record = self._records.get(keyword)
        return record is not None and record.direct

    def sum_for(self, keywords: Iterable[str]) -> float:
        """``S`` — the sum of weights over ``keywords``."""
        return sum(self.weight(k) for k in keywords)

    def average_for(self, keywords: Iterable[str]) -> float:
        """Average weight over ``keywords`` (0 for an empty set)."""
        keys = list(keywords)
        if not keys:
            return 0.0
        return self.sum_for(keys) / len(keys)

    def direct_keywords(self) -> FrozenSet[str]:
        """The node's own subscription keywords."""
        return frozenset(k for k, r in self._records.items() if r.direct)

    def add_direct(self, keyword: str, now: float) -> None:
        """Subscribe to a new keyword (operator function *Subscribe*)."""
        self.version += 1
        existing = self._records.get(keyword)
        if existing is not None:
            existing.direct = True
            existing.weight = max(existing.weight, 0.5)
        else:
            self._records[keyword] = InterestRecord(
                weight=0.5, direct=True, last_contact=now
            )

    # ------------------------------------------------------------------
    # Algorithm 1: decay
    # ------------------------------------------------------------------
    def decay(
        self,
        now: float,
        connected_keywords: Set[str],
        *,
        beta: float,
        prune_below: float = 1e-3,
    ) -> None:
        """Decay all weights per Algorithm 1.

        Args:
            now: Current time ``T_c``.
            connected_keywords: Keywords shared by *currently connected*
                devices; their weights are frozen and their ``T_l``
                refreshed.
            beta: Decay constant.
            prune_below: Transient records below this weight are removed
                (bounds table growth; direct interests are never pruned).
        """
        if beta <= 0:
            raise ConfigurationError(f"beta must be > 0, got {beta!r}")
        self.version += 1
        dead: List[str] = []
        for keyword, record in self._records.items():
            if keyword in connected_keywords:
                record.last_contact = now
                continue
            elapsed = now - record.last_contact
            if elapsed <= 0:
                continue
            denominator = max(beta * elapsed, 1.0)
            if record.direct:
                record.weight = (record.weight - 0.5) / denominator + 0.5
            else:
                record.weight = record.weight / denominator
                if record.weight < prune_below:
                    dead.append(keyword)
        for keyword in dead:
            del self._records[keyword]

    # ------------------------------------------------------------------
    # Algorithm 2: growth
    # ------------------------------------------------------------------
    def snapshot_weights(self) -> List[Tuple[str, float, bool]]:
        """``(keyword, weight, direct)`` triples with positive weight.

        This is the peer-visible state of the table during a weight
        exchange: cheap to build (no record objects are cloned) and
        immune to concurrent mutation of the table it came from, which
        is what keeps the two-sided growth update symmetric.
        """
        return [
            (keyword, record.weight, record.direct)
            for keyword, record in self._records.items()
            if record.weight > 0.0
        ]

    def grow_from_weights(
        self,
        peer_weights: List[Tuple[str, float, bool]],
        now: float,
        elapsed: float,
        *,
        growth_scale: float,
        elapsed_cap: float,
    ) -> None:
        """Grow this table from a peer's weight snapshot per Algorithm 2.

        ``Delta = growth_scale * w_v(I) * min(elapsed, cap) / psi`` and
        the new weight is ``min(1, w + Delta)``.  Keywords we do not hold
        are acquired as transient interests.

        The psi cases and the float expression are kept exactly as in
        the record-based formulation (``growth_scale * w * effective /
        psi``, left to right) so the optimisation is bit-identical.
        """
        if elapsed < 0:
            raise ConfigurationError(f"elapsed must be >= 0, got {elapsed!r}")
        self.version += 1
        effective = min(elapsed, elapsed_cap)
        records = self._records
        for keyword, weight, peer_direct in peer_weights:
            mine = records.get(keyword)
            if mine is None:
                psi = 5 if peer_direct else 6
            elif mine.direct:
                psi = 1 if peer_direct else 2
            else:
                psi = 3 if peer_direct else 4
            delta = growth_scale * weight * effective / psi
            if delta <= 0.0:
                continue
            if mine is None:
                records[keyword] = InterestRecord(
                    weight=delta if delta < 1.0 else 1.0,
                    direct=False, last_contact=now,
                )
            else:
                grown = mine.weight + delta
                mine.weight = grown if grown < 1.0 else 1.0
                mine.last_contact = now

    def grow_from(
        self,
        peer: "InterestTable",
        now: float,
        elapsed: float,
        *,
        growth_scale: float,
        elapsed_cap: float,
    ) -> None:
        """Grow this table from ``peer``'s weights per Algorithm 2.

        Convenience wrapper over :meth:`grow_from_weights`; callers that
        need symmetric two-sided growth should snapshot both tables
        first (see :meth:`ChitChatRouter.run_rtsr_growth`).
        """
        self.grow_from_weights(
            peer.snapshot_weights(), now, elapsed,
            growth_scale=growth_scale, elapsed_cap=elapsed_cap,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        direct = sum(1 for r in self._records.values() if r.direct)
        return (
            f"InterestTable({direct} direct, "
            f"{len(self._records) - direct} transient)"
        )


class ChitChatRouter(Router):
    """The plain ChitChat protocol — the paper's comparison baseline.

    Args:
        beta: Decay constant.  The thesis example uses 2, but its own
            arithmetic is inconsistent (it reports 0.55 where the stated
            formula yields 0.51), and with beta=2 a transient interest
            divided by ``beta * dt`` dies within seconds of
            disconnection, killing multi-hop relaying outright.  The
            default 0.01 gives transient interests a ~100 s grace period
            (the clamp ``max(beta * dt, 1)`` binds until ``dt = 1/beta``)
            followed by hyperbolic decay — see DESIGN.md section 4.
        growth_scale: Scale applied to the growth increment (see module
            docstring).
        growth_elapsed_cap: Cap on the per-contact elapsed time used by
            growth, seconds.
        destinations_also_relay: Whether a destination keeps a copy in
            its buffer to serve further destinations (multicast
            dissemination, as the paper's "share with multiple
            destinations" implies).
        max_retransmissions: Retry budget per ``(receiver, message)``
            for transfers aborted by link-layer loss or corruption
            (never for mobility/churn aborts — the contact is gone).
            ``0`` (the default) disables retransmission entirely, which
            keeps fault-free runs bit-identical to the committed golden
            results.
        retransmit_backoff: Base delay before the first retry, seconds;
            doubles with each further attempt for the same copy.
    """

    name = "chitchat"

    #: Abort reasons eligible for retransmission (link survived).
    RETRYABLE_ABORTS = ("loss", "corruption")

    def __init__(
        self,
        *,
        beta: float = 0.01,
        growth_scale: float = 0.01,
        growth_elapsed_cap: float = 600.0,
        destinations_also_relay: bool = True,
        max_retransmissions: int = 0,
        retransmit_backoff: float = 30.0,
    ):
        super().__init__()
        if beta <= 0:
            raise ConfigurationError(f"beta must be > 0, got {beta!r}")
        if growth_scale <= 0:
            raise ConfigurationError(
                f"growth_scale must be > 0, got {growth_scale!r}"
            )
        if growth_elapsed_cap <= 0:
            raise ConfigurationError(
                f"growth_elapsed_cap must be > 0, got {growth_elapsed_cap!r}"
            )
        if max_retransmissions < 0:
            raise ConfigurationError(
                f"max_retransmissions must be >= 0, got {max_retransmissions!r}"
            )
        if retransmit_backoff <= 0:
            raise ConfigurationError(
                f"retransmit_backoff must be > 0, got {retransmit_backoff!r}"
            )
        self.beta = float(beta)
        self.growth_scale = float(growth_scale)
        self.growth_elapsed_cap = float(growth_elapsed_cap)
        self.destinations_also_relay = bool(destinations_also_relay)
        self.max_retransmissions = int(max_retransmissions)
        self.retransmit_backoff = float(retransmit_backoff)
        self._tables: Dict[int, InterestTable] = {}
        # Retransmission attempts used per (receiver_id, message uuid).
        self._retry_counts: Dict[Tuple[int, str], int] = {}
        # Memoised interest sums: node id -> (table version at compute
        # time, {message keyword sequence -> S}).  A node's whole cache
        # is discarded the moment its table version moves on, so decay,
        # growth and subscriptions invalidate every dependent sum at
        # once (see InterestTable.version).
        self._sum_cache: Dict[
            int, Tuple[int, Dict[Tuple[str, ...], float]]
        ] = {}

    # ------------------------------------------------------------------
    # RTSR state
    # ------------------------------------------------------------------
    def table(self, node_id: int) -> InterestTable:
        """The RTSR table for ``node_id`` (created lazily)."""
        existing = self._tables.get(node_id)
        if existing is None:
            node = self.world.node(node_id)
            existing = InterestTable(node.interests, created_at=self.world.now)
            self._tables[node_id] = existing
        return existing

    def interest_sum(self, node_id: int, message: Message) -> float:
        """``S`` for ``message`` at ``node_id``.

        Memoised per ``(node, message keyword sequence)`` and
        invalidated by the table's version counter, so every buffered
        message offered during one encounter reuses a single
        computation.  The cache key is the *ordered* keyword sequence
        (not the set): the sum iterates the message's keyword frozenset,
        whose iteration order depends on construction order, and
        bit-identical results require replaying exactly that order.
        """
        table = self.table(node_id)
        cached = self._sum_cache.get(node_id)
        if cached is None or cached[0] != table.version:
            cached = (table.version, {})
            self._sum_cache[node_id] = cached
        sums = cached[1]
        key = message.keyword_sequence
        value = sums.get(key)
        if value is None:
            value = table.sum_for(message.keywords)
            sums[key] = value
        return value

    def _connected_keywords(self, node_id: int) -> Set[str]:
        """Keywords held by any currently connected peer of ``node_id``."""
        keywords: Set[str] = set()
        for link in self.world.active_links(node_id):
            peer = link.peer_of(node_id)
            keywords |= self.table(peer).keywords
        return keywords

    def run_rtsr_decay(self, link: Link) -> None:
        """Phase one of the weight exchange: decay on both endpoints."""
        now = self.world.now
        for node_id in link.pair:
            self.table(node_id).decay(
                now, self._connected_keywords(node_id), beta=self.beta
            )

    def run_rtsr_growth(self, link: Link, elapsed: float) -> None:
        """Phase three: growth on both endpoints from the peer's table."""
        now = self.world.now
        table_a = self.table(link.a)
        table_b = self.table(link.b)
        # Grow from weight snapshots so the update is symmetric (b must
        # not see a's freshly grown weights).
        weights_a = table_a.snapshot_weights()
        weights_b = table_b.snapshot_weights()
        table_a.grow_from_weights(
            weights_b, now, elapsed,
            growth_scale=self.growth_scale,
            elapsed_cap=self.growth_elapsed_cap,
        )
        table_b.grow_from_weights(
            weights_a, now, elapsed,
            growth_scale=self.growth_scale,
            elapsed_cap=self.growth_elapsed_cap,
        )

    # ------------------------------------------------------------------
    # Routing decisions
    # ------------------------------------------------------------------
    def classify(self, receiver_id: int, message: Message) -> str:
        """Operator *DecideDestOrRelay*: ``"destination"`` or ``"relay"``.

        A device with a *direct* interest in any tag is a destination;
        one with only transient interest is a relay candidate.
        """
        table = self.table(receiver_id)
        if any(table.is_direct(k) for k in message.keywords):
            return "destination"
        return "relay"

    def wants_as_relay(
        self, sender_id: int, receiver_id: int, message: Message
    ) -> bool:
        """The ChitChat forwarding rule ``S_v > S_u``."""
        return (
            self.interest_sum(receiver_id, message)
            > self.interest_sum(sender_id, message)
        )

    def select_messages(
        self, sender_id: int, receiver_id: int
    ) -> List[Tuple[Message, str]]:
        """Messages ``sender`` should offer ``receiver``, with their role.

        Returns:
            ``(message, "destination"|"relay")`` pairs, destinations
            first, then relays by descending receiver interest strength
            (so the most valuable transfers survive short contacts).
        """
        sender = self.world.node(sender_id)
        receiver = self.world.node(receiver_id)
        destinations: List[Tuple[float, Message]] = []
        relays: List[Tuple[float, Message]] = []
        for message in sender.buffer.messages():
            if receiver.has_seen(message.uuid):
                continue
            if message.size > receiver.buffer.capacity:
                continue
            role = self.classify(receiver_id, message)
            strength = self.interest_sum(receiver_id, message)
            if role == "destination":
                destinations.append((strength, message))
            elif self.wants_as_relay(sender_id, receiver_id, message):
                relays.append((strength, message))
        destinations.sort(key=lambda item: (-item[0], item[1].uuid))
        relays.sort(key=lambda item: (-item[0], item[1].uuid))
        return (
            [(m, "destination") for _, m in destinations]
            + [(m, "relay") for _, m in relays]
        )

    def relay_affinity(self, node_id: int, message: Message) -> float:
        """ChitChat's relay preference is the interest sum ``S``."""
        return self.interest_sum(node_id, message)

    def relay_trust(self, receiver_id: int, message: Message) -> float:
        """Average tag weight — the paper's relay-threshold signal."""
        return self.table(receiver_id).average_for(message.keywords)

    # ------------------------------------------------------------------
    # World hooks
    # ------------------------------------------------------------------
    def prepare_contact(self, link: Link) -> None:
        """Phase one of the weight exchange: decay on both endpoints."""
        self.run_rtsr_decay(link)

    def on_contact_start(self, link: Link) -> None:
        self.prepare_contact(link)
        self._exchange(link)

    def on_contact_end(self, link: Link) -> None:
        elapsed = self.world.now - link.opened_at
        self.run_rtsr_growth(link, elapsed)

    def _exchange(self, link: Link) -> None:
        """Offer messages in both directions after the RTSR update."""
        for sender_id in link.pair:
            receiver_id = link.peer_of(sender_id)
            for message, _role in self.select_messages(sender_id, receiver_id):
                self.world.send_message(link, sender_id, message)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        role = self.classify(receiver.node_id, message)
        if role == "destination":
            self.world.deliver(receiver, message)
            if self.destinations_also_relay:
                self.world.accept_relay(receiver, message)
        else:
            if not self.world.accept_relay(receiver, message):
                return
        self._forward_onward(receiver.node_id, message)

    # ------------------------------------------------------------------
    # Bounded retransmission with exponential backoff
    # ------------------------------------------------------------------
    def on_transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        self._maybe_retransmit(transfer)

    def _maybe_retransmit(self, transfer: Transfer) -> None:
        """Schedule a backed-off retry for a loss/corruption abort."""
        if self.max_retransmissions <= 0:
            return
        if transfer.abort_reason not in self.RETRYABLE_ABORTS:
            return
        key = (transfer.receiver, transfer.message.uuid)
        used = self._retry_counts.get(key, 0)
        if used >= self.max_retransmissions:
            return
        self._retry_counts[key] = used + 1
        delay = self.retransmit_backoff * (2 ** used)
        sender_id, receiver_id = transfer.sender, transfer.receiver
        uuid = transfer.message.uuid
        # Lazy label: retransmission timers are scheduled in bulk under
        # fault injection and most never surface their label.
        self.world.schedule_in(
            delay,
            lambda: self._retransmit(sender_id, receiver_id, uuid),
            label=lambda: f"retransmit {uuid} {sender_id}->{receiver_id}",
        )

    def _retransmit(self, sender_id: int, receiver_id: int, uuid: str) -> None:
        """Fire a scheduled retry if it is still worth sending."""
        link = self.world.link_between(sender_id, receiver_id)
        if link is None or link.closed:
            return
        sender = self.world.node(sender_id)
        message = sender.buffer.get(uuid)
        if message is None:  # the copy expired or was evicted meanwhile
            return
        if self.world.node(receiver_id).has_seen(uuid):
            return  # another path got it there first
        if self._reoffer(link, sender_id, receiver_id, message) is not None:
            self.world.metrics.on_retransmission()

    def _reoffer(
        self, link: Link, sender_id: int, receiver_id: int, message: Message
    ) -> Optional[Transfer]:
        """Re-queue one copy for a retransmission attempt.

        Overridden by the incentive router to run the full payment
        pipeline (escrow, prepay) rather than a bare send.
        """
        return self.world.send_message(link, sender_id, message)

    def _forward_onward(self, holder_id: int, message: Message) -> None:
        """Offer a freshly received message on the holder's other links."""
        holder = self.world.node(holder_id)
        if message.uuid not in holder.buffer:
            return
        for link in self.world.active_links(holder_id):
            peer_id = link.peer_of(holder_id)
            peer = self.world.node(peer_id)
            if peer.has_seen(message.uuid):
                continue
            role = self.classify(peer_id, message)
            if role == "destination" or self.wants_as_relay(
                holder_id, peer_id, message
            ):
                self.world.send_message(link, holder_id, message)
