"""NECTAR baseline (de Oliveira et al., 2009).

Section 1.1 of the thesis surveys NECTAR among the forwarding-based
node-centric algorithms: each node maintains a *neighbourhood index*
reflecting how often it meets every other node, and a message is
forwarded to nodes whose index toward the destination is higher than the
carrier's.  Destinations remain interest-based, as everywhere in this
package: the "index toward the destination set" is the maximum index
toward any node with a direct interest in the message.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["NectarRouter"]


class NectarRouter(Router):
    """Meeting-frequency (neighbourhood index) routing.

    Args:
        decay_per_second: Exponential index decay rate per second, so
            stale meeting history loses influence (0 disables decay).
        boost: Index increment applied on every encounter.
    """

    name = "nectar"

    def __init__(self, *, decay_per_second: float = 1e-4, boost: float = 1.0):
        super().__init__()
        if decay_per_second < 0:
            raise ConfigurationError(
                f"decay_per_second must be >= 0, got {decay_per_second!r}"
            )
        if boost <= 0:
            raise ConfigurationError(f"boost must be > 0, got {boost!r}")
        self.decay_per_second = float(decay_per_second)
        self.boost = float(boost)
        self._index: Dict[int, Dict[int, float]] = {}
        self._last_update: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Neighbourhood index
    # ------------------------------------------------------------------
    def index(self, holder: int, target: int) -> float:
        """Current neighbourhood index of ``holder`` toward ``target``."""
        return self._index.get(holder, {}).get(target, 0.0)

    def _age(self, node_id: int) -> None:
        now = self.world.now
        last = self._last_update.get(node_id, now)
        self._last_update[node_id] = now
        elapsed = now - last
        if elapsed <= 0 or self.decay_per_second == 0:
            return
        factor = math.exp(-self.decay_per_second * elapsed)
        table = self._index.get(node_id)
        if not table:
            return
        for target in list(table):
            table[target] *= factor
            if table[target] < 1e-9:
                del table[target]

    def _record_meeting(self, a: int, b: int) -> None:
        self._index.setdefault(a, {})[b] = self.index(a, b) + self.boost
        self._index.setdefault(b, {})[a] = self.index(b, a) + self.boost

    def index_toward_destinations(self, holder: int, message: Message) -> float:
        """Max index from ``holder`` to any interested node."""
        best = 0.0
        for node_id in self.world.node_ids():
            if node_id == holder:
                continue
            if self.world.node(node_id).is_interested_in(message):
                best = max(best, self.index(holder, node_id))
        return best

    # ------------------------------------------------------------------
    # World hooks
    # ------------------------------------------------------------------
    def on_contact_start(self, link: Link) -> None:
        self._age(link.a)
        self._age(link.b)
        self._record_meeting(link.a, link.b)
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            for message in sender.buffer.messages():
                if receiver.has_seen(message.uuid):
                    continue
                if message.size > receiver.buffer.capacity:
                    continue
                if self.is_destination(receiver, message):
                    self.world.send_message(link, sender_id, message)
                    continue
                mine = self.index_toward_destinations(sender_id, message)
                theirs = self.index_toward_destinations(
                    receiver.node_id, message
                )
                if theirs > mine:
                    self.world.send_message(link, sender_id, message)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self.world.deliver(receiver, message)
            return
        self.world.accept_relay(receiver, message)
