"""Tit-For-Tat incentive-aware routing baseline (Shevade et al., ICNP'08).

The thesis's related work: under TFT a node relays traffic for a
neighbour only to the extent the neighbour has relayed for it, plus a
small generosity allowance ``epsilon`` that bootstraps cooperation.

We keep pairwise byte counters: ``carried(v, u)`` is how many bytes
``v`` has accepted from ``u`` for relaying.  ``v`` accepts another relay
message from ``u`` only while::

    carried(v, u) <= carried(u, v) + epsilon_bytes

Deliveries to destinations are always accepted (TFT constrains *relay*
work, not final delivery), and routing otherwise follows the epidemic
pattern so the TFT constraint is the only thing being measured.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["TitForTatRouter"]


class TitForTatRouter(Router):
    """Pairwise reciprocity-constrained flooding.

    Args:
        epsilon_bytes: Generosity allowance per neighbour pair — how far
            a node will run ahead of reciprocity before refusing (the
            classic bootstrap for TFT schemes).
    """

    name = "tit-for-tat"

    def __init__(self, *, epsilon_bytes: int = 2_000_000):
        super().__init__()
        if epsilon_bytes < 0:
            raise ConfigurationError(
                f"epsilon_bytes must be >= 0, got {epsilon_bytes!r}"
            )
        self.epsilon_bytes = int(epsilon_bytes)
        # carried[(v, u)]: bytes v accepted from u for relaying.
        self._carried: Dict[Tuple[int, int], int] = {}
        # Bytes committed to in-flight transfers, counted against the
        # allowance at offer time so simultaneous offers cannot race
        # past the reciprocity gate; reclaimed on abort.
        self._pending: Dict[Tuple[int, int], int] = {}

    def carried(self, carrier: int, requester: int) -> int:
        """Bytes ``carrier`` has relayed on behalf of ``requester``."""
        return self._carried.get((carrier, requester), 0)

    def _committed(self, carrier: int, requester: int) -> int:
        key = (carrier, requester)
        return self._carried.get(key, 0) + self._pending.get(key, 0)

    def within_allowance(self, carrier: int, requester: int,
                         size: int) -> bool:
        """The TFT acceptance rule for one prospective relay transfer."""
        return (
            self._committed(carrier, requester) + size
            <= self.carried(requester, carrier) + self.epsilon_bytes
        )

    def on_contact_start(self, link: Link) -> None:
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            for message in sender.buffer.messages():
                if receiver.has_seen(message.uuid):
                    continue
                if message.size > receiver.buffer.capacity:
                    continue
                if self.is_destination(receiver, message):
                    self.world.send_message(link, sender_id, message)
                    continue
                if self.within_allowance(
                    receiver.node_id, sender_id, message.size
                ):
                    transfer = self.world.send_message(
                        link, sender_id, message
                    )
                    if transfer is not None:
                        key = (receiver.node_id, sender_id)
                        self._pending[key] = (
                            self._pending.get(key, 0) + message.size
                        )

    def _settle_pending(self, transfer: Transfer) -> None:
        key = (transfer.receiver, transfer.sender)
        pending = self._pending.get(key, 0)
        if pending:
            self._pending[key] = max(0, pending - transfer.message.size)

    def on_transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        self._settle_pending(transfer)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self._settle_pending(transfer)
            self.world.deliver(receiver, message)
            return
        self._settle_pending(transfer)
        if not self.world.accept_relay(receiver, message):
            return
        key = (receiver.node_id, transfer.sender)
        self._carried[key] = self._carried.get(key, 0) + message.size
        # The receiver just carried traffic for the sender, which raises
        # the receiver's own allowance at the sender: retry messages the
        # gate deferred earlier in this contact.
        self._offer_relays(link, sender_id=receiver.node_id,
                           receiver_id=transfer.sender)

    def _offer_relays(self, link: Link, *, sender_id: int,
                      receiver_id: int) -> None:
        if link.closed:
            return
        sender = self.world.node(sender_id)
        receiver = self.world.node(receiver_id)
        for message in sender.buffer.messages():
            if receiver.has_seen(message.uuid):
                continue
            if message.size > receiver.buffer.capacity:
                continue
            if self.is_destination(receiver, message):
                continue  # deliveries were already offered unconditionally
            if self.within_allowance(receiver_id, sender_id, message.size):
                transfer = self.world.send_message(link, sender_id, message)
                if transfer is not None:
                    key = (receiver_id, sender_id)
                    self._pending[key] = (
                        self._pending.get(key, 0) + message.size
                    )
