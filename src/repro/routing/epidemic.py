"""Epidemic routing baseline.

Every node forwards every message to every encountered node that has
not seen it (Vahdat & Becker, 2000).  Maximum delivery ratio, maximum
overhead — the reference point the paper's Section 1 uses to motivate
data-centric schemes.
"""

from __future__ import annotations

from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["EpidemicRouter"]


class EpidemicRouter(Router):
    """Flood everything to everyone."""

    name = "epidemic"

    def on_contact_start(self, link: Link) -> None:
        # The base select_messages floods in buffer order: every unseen
        # message that fits is offered (wants_as_relay defaults True).
        for sender_id in link.pair:
            receiver_id = link.peer_of(sender_id)
            for message, _role in self.select_messages(
                sender_id, receiver_id
            ):
                self.world.send_message(link, sender_id, message)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self.world.deliver(receiver, message)
        if not self.world.accept_relay(receiver, message):
            return
        self._flood_onward(receiver.node_id, message)

    def _flood_onward(self, holder_id: int, message: Message) -> None:
        holder = self.world.node(holder_id)
        if message.uuid not in holder.buffer:
            return
        for link in self.world.active_links(holder_id):
            peer = self.world.node(link.peer_of(holder_id))
            if not peer.has_seen(message.uuid):
                self.world.send_message(link, holder_id, message)
