"""Two-hop relay baseline.

The source may hand copies to relays it meets; a relay only passes its
copy on when it meets a destination.  Paths are therefore at most two
hops (source -> relay -> destination), bounding overhead.
"""

from __future__ import annotations

from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["TwoHopRouter"]


class TwoHopRouter(Router):
    """Source -> relay -> destination, never deeper."""

    name = "two-hop"

    def on_contact_start(self, link: Link) -> None:
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            for message in sender.buffer.messages():
                if receiver.has_seen(message.uuid):
                    continue
                if message.size > receiver.buffer.capacity:
                    continue
                if self.is_destination(receiver, message):
                    self.world.send_message(link, sender_id, message)
                elif message.source == sender_id:
                    # Only the source spreads copies to relays.
                    self.world.send_message(link, sender_id, message)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self.world.deliver(receiver, message)
            return
        self.world.accept_relay(receiver, message)
