"""Direct-contact routing baseline.

The source holds its messages until it personally meets a destination;
nothing is ever relayed.  Minimum overhead, minimum delivery ratio.
"""

from __future__ import annotations

from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["DirectContactRouter"]


class DirectContactRouter(Router):
    """Source-to-destination delivery only."""

    name = "direct"

    def on_contact_start(self, link: Link) -> None:
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            for message in sender.buffer.messages():
                # Only the source carries copies under direct contact.
                if message.source != sender_id:
                    continue
                if receiver.has_seen(message.uuid):
                    continue
                if self.is_destination(receiver, message):
                    self.world.send_message(link, sender_id, message)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        # Under direct contact the only transfers ever issued are
        # source -> destination, so this is always a delivery.
        self.world.deliver(receiver, message)
