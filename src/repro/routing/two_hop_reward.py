"""Two-hop reward-based incentive baseline (Seregina et al., TMC 2017).

The thesis's related work [5]/[6]: a source sprays copies to relays with
a *promise* — only the **first** relay to reach the destination collects
the reward from it.  When recruiting, the source reveals full, partial
or no information about the competition:

* ``full``    — the relay learns how many copies circulate *and* how
  long they have been out (older copies are likelier to win first);
* ``partial`` — the relay learns only the copy count;
* ``none``    — the relay learns nothing and uses a pessimistic prior.

A rational relay accepts a copy only when its expected payoff covers its
relaying cost: ``P(win) * reward >= cost``.  With ``k`` competing copies
the naive win probability is ``1/(k+1)``; under ``full`` information the
estimate is further discounted by how stale the competition makes a new
entrant (each already-circulating copy ages the newcomer's chances).

Rewards settle on a :class:`~repro.core.ledger.TokenLedger` so the
economics are inspectable, mirroring the main scheme's bookkeeping.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.ledger import TokenLedger
from repro.errors import ConfigurationError
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["TwoHopRewardRouter", "INFORMATION_SETTINGS"]

INFORMATION_SETTINGS = ("full", "partial", "none")


class TwoHopRewardRouter(Router):
    """First-deliverer-wins two-hop incentive routing.

    Args:
        information: One of ``"full"``, ``"partial"``, ``"none"``.
        reward: Tokens the destination pays the first deliverer.
        relay_cost: A relay's subjective cost of carrying one copy.
        pessimistic_copies: The copy count a relay assumes under the
            ``none`` setting.
        initial_tokens: Ledger endowment per node.
    """

    name = "two-hop-reward"

    def __init__(
        self,
        *,
        information: str = "full",
        reward: float = 10.0,
        relay_cost: float = 1.0,
        pessimistic_copies: int = 8,
        initial_tokens: float = 200.0,
        ledger: Optional[TokenLedger] = None,
    ):
        super().__init__()
        if information not in INFORMATION_SETTINGS:
            raise ConfigurationError(
                f"information must be one of {INFORMATION_SETTINGS}, "
                f"got {information!r}"
            )
        if reward <= 0:
            raise ConfigurationError(f"reward must be > 0, got {reward!r}")
        if relay_cost < 0:
            raise ConfigurationError(
                f"relay_cost must be >= 0, got {relay_cost!r}"
            )
        if pessimistic_copies < 0:
            raise ConfigurationError(
                f"pessimistic_copies must be >= 0, got {pessimistic_copies!r}"
            )
        self.information = information
        self.reward = float(reward)
        self.relay_cost = float(relay_cost)
        self.pessimistic_copies = int(pessimistic_copies)
        self.initial_tokens = float(initial_tokens)
        self.ledger = ledger if ledger is not None else TokenLedger()
        # uuid -> [recruitment times of circulating relay copies].
        self._copies_out: Dict[str, List[float]] = {}
        self._declined = 0
        self._accepted = 0

    def bind(self, world) -> None:
        super().bind(world)
        # Wire the ledger into the run's event trace (when one exists)
        # so reward settlements are replayable by `repro-dtn trace
        # audit`, exactly like the main incentive scheme's ledger.
        trace = getattr(world, "trace", None)
        if trace is not None:
            self.ledger.trace = trace

    # ------------------------------------------------------------------
    # Relay economics
    # ------------------------------------------------------------------
    @property
    def offers_declined(self) -> int:
        """Relay offers turned down as economically unattractive."""
        return self._declined

    @property
    def offers_accepted(self) -> int:
        """Relay offers accepted."""
        return self._accepted

    def _ensure_account(self, node_id: int) -> None:
        if not self.ledger.has_account(node_id):
            now = self._world.now if self._world is not None else 0.0
            self.ledger.open_account(node_id, self.initial_tokens, time=now)

    def win_probability_estimate(self, uuid: str) -> float:
        """A prospective relay's estimated chance of delivering first."""
        recruited = self._copies_out.get(uuid, [])
        if self.information == "none":
            k = self.pessimistic_copies
            return 1.0 / (k + 1)
        k = len(recruited)
        estimate = 1.0 / (k + 1)
        if self.information == "full" and recruited:
            # Every already-circulating copy has a head start; discount
            # the newcomer by the mean age of the competition relative
            # to the run so far (older competition = worse odds).
            now = max(self.world.now, 1e-9)
            mean_age = sum(now - t for t in recruited) / len(recruited)
            estimate *= 1.0 / (1.0 + mean_age / now)
        return estimate

    def relay_accepts(self, uuid: str) -> bool:
        """The rational-relay participation rule."""
        return self.win_probability_estimate(uuid) * self.reward >= (
            self.relay_cost
        )

    # ------------------------------------------------------------------
    # World hooks
    # ------------------------------------------------------------------
    def on_contact_start(self, link: Link) -> None:
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            for message in sender.buffer.messages():
                if receiver.has_seen(message.uuid):
                    continue
                if message.size > receiver.buffer.capacity:
                    continue
                if self.is_destination(receiver, message):
                    self.world.send_message(link, sender_id, message)
                elif message.source == sender_id:
                    # Two-hop: only the source recruits relays, and a
                    # rational relay weighs the offer first.
                    if self.relay_accepts(message.uuid):
                        self._accepted += 1
                        self.world.send_message(link, sender_id, message)
                    else:
                        self._declined += 1

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            first = self.world.deliver(receiver, message)
            if first and transfer.sender != message.source:
                # Only the first deliverer collects; dedup already
                # guarantees one delivery per (message, destination).
                self._ensure_account(receiver.node_id)
                self._ensure_account(transfer.sender)
                if self.ledger.can_pay(receiver.node_id, self.reward):
                    self.ledger.transfer(
                        receiver.node_id, transfer.sender, self.reward,
                        time=self.world.now, reason="two-hop-reward",
                    )
                    self.world.metrics.on_payment(self.reward)
            return
        if self.world.accept_relay(receiver, message):
            self._copies_out.setdefault(message.uuid, []).append(
                self.world.now
            )
