"""Minority-game participation over the ChitChat substrate.

Relaying in a DTN is a congestion game: when almost everyone relays,
buffers and contacts are saturated and the marginal relay mostly burns
energy; when almost nobody does, a willing relay is very valuable.
That is the classic *minority game* (Challet & Zhang's El Farol
formalisation), and the adaptive strategy is the standard stochastic
one: each node keeps a participation probability, redraws its choice
every epoch, and reinforces whichever choice ended up on the minority
side.

:class:`MinorityGameChitChat` layers that per-epoch participate/defect
decision over :class:`~repro.routing.chitchat.ChitChatRouter`:

* every ``epoch_length`` seconds each node redraws participate/defect
  from its own probability (one vectorised draw on the dedicated
  ``"minority-game"`` RNG stream — exactly ``n_nodes`` variates per
  epoch regardless of traffic, so mobility/workload streams never
  shift);
* the *minority* side is reinforced: nodes on it move their
  probability toward the choice they just made by ``learning_rate``,
  nodes on the majority side move away, clipped to
  ``[p_floor, p_ceiling]`` so nobody locks in forever;
* defectors sit relaying out for the epoch — they refuse relay
  custody, advertise zero relay affinity, and are offered no relay
  copies — but destination deliveries still flow both ways (a
  defector still wants its own content; defection only withdraws the
  altruistic act).

Composed under the :class:`~repro.core.incentive_layer.IncentiveLayer`
(the ``minority-game`` scheme), participation gates which offers reach
the payment pipeline, so the ledger/conservation audits cover the game
automatically.  On worlds without a scheduler or RNG streams (unit-test
stubs) the game never starts and the router degrades to plain ChitChat.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.routing.chitchat import ChitChatRouter

__all__ = ["MinorityGameChitChat"]

#: Name of the dedicated RNG stream the per-epoch draws consume.
STREAM_NAME = "minority-game"


class MinorityGameChitChat(ChitChatRouter):
    """ChitChat with minority-game participate/defect epochs.

    Args:
        epoch_length: Seconds between redraws of every node's
            participate/defect choice.
        learning_rate: Probability step applied after each epoch
            (toward the repeated choice on the minority side, away
            from it on the majority side).
        p_floor: Lower clip for the participation probability.
        p_ceiling: Upper clip for the participation probability.
        **chitchat_kwargs: Forwarded to
            :class:`~repro.routing.chitchat.ChitChatRouter`.
    """

    name = "minority-game-chitchat"

    def __init__(
        self,
        *,
        epoch_length: float = 600.0,
        learning_rate: float = 0.05,
        p_floor: float = 0.1,
        p_ceiling: float = 0.9,
        **chitchat_kwargs,
    ):
        super().__init__(**chitchat_kwargs)
        if epoch_length <= 0:
            raise ConfigurationError(
                f"epoch_length must be > 0, got {epoch_length!r}"
            )
        if not 0.0 < learning_rate < 1.0:
            raise ConfigurationError(
                f"learning_rate must be in (0, 1), got {learning_rate!r}"
            )
        if not 0.0 < p_floor < p_ceiling < 1.0:
            raise ConfigurationError(
                "need 0 < p_floor < p_ceiling < 1, got "
                f"p_floor={p_floor!r}, p_ceiling={p_ceiling!r}"
            )
        self.epoch_length = float(epoch_length)
        self.learning_rate = float(learning_rate)
        self.p_floor = float(p_floor)
        self.p_ceiling = float(p_ceiling)
        #: Participation probability per node (index order of
        #: ``_node_index``); None until the game starts.
        self._p: Optional[np.ndarray] = None
        #: This epoch's participate/defect choices; None → everyone
        #: participates (the plain-ChitChat degradation).
        self._choices: Optional[np.ndarray] = None
        self._node_index: Dict[int, int] = {}
        #: Epochs completed so far (observability / tests).
        self.epochs_played: int = 0

    # ------------------------------------------------------------------
    # Epoch machinery
    # ------------------------------------------------------------------
    def bind(self, world) -> None:
        super().bind(world)
        self._p = None
        self._choices = None
        self._node_index = {}
        self.epochs_played = 0
        schedule = getattr(world, "schedule_in", None)
        streams = getattr(world, "streams", None)
        if schedule is None or streams is None:
            # Stub worlds (unit tests) have no scheduler/streams: the
            # game never starts and the router is plain ChitChat.
            return
        node_ids = sorted(world.node_ids())
        self._node_index = {nid: i for i, nid in enumerate(node_ids)}
        self._p = np.full(len(node_ids), 0.5, dtype=np.float64)
        self._draw_choices()
        schedule(
            self.epoch_length, self._epoch_tick, label="minority-game-epoch"
        )

    def _draw_choices(self) -> None:
        # Exactly n draws per epoch, whatever happened in between.
        rng = self.world.streams.get(STREAM_NAME)
        self._choices = rng.random(self._p.size) < self._p

    def _epoch_tick(self) -> None:
        choices = self._choices
        participants = int(np.count_nonzero(choices))
        # Strict minority; a tie rewards the defectors (relaying costs
        # energy, so indifference resolves to thrift).
        participants_minority = 2 * participants < choices.size
        rewarded = choices == participants_minority
        # Minority side repeats its choice, majority side moves away:
        # the update direction is (toward participate if chosen else
        # away) flipped when the choice lost.
        direction = np.where(choices, 1.0, -1.0) * np.where(
            rewarded, 1.0, -1.0
        )
        np.clip(
            self._p + self.learning_rate * direction,
            self.p_floor,
            self.p_ceiling,
            out=self._p,
        )
        self.epochs_played += 1
        self._draw_choices()
        self.world.schedule_in(
            self.epoch_length, self._epoch_tick, label="minority-game-epoch"
        )

    def participates(self, node_id: int) -> bool:
        """Whether ``node_id`` relays during the current epoch."""
        if self._choices is None:
            return True
        index = self._node_index.get(node_id)
        if index is None:
            return True
        return bool(self._choices[index])

    def participation_rate(self) -> float:
        """Fraction of nodes participating this epoch (1.0 pre-game)."""
        if self._choices is None:
            return 1.0
        return float(np.count_nonzero(self._choices)) / self._choices.size

    def on_node_wiped(self, node_id: int) -> None:
        super().on_node_wiped(node_id)
        # A churn crash loses the learned strategy with the rest of the
        # node's state; the current epoch's choice stands (the radio
        # restarted, the decision period did not).
        index = self._node_index.get(node_id)
        if index is not None and self._p is not None:
            self._p[index] = 0.5

    # ------------------------------------------------------------------
    # Participation gates over the ChitChat hooks
    # ------------------------------------------------------------------
    def wants_as_relay(
        self, sender_id: int, receiver_id: int, message: Message
    ) -> bool:
        if not (
            self.participates(sender_id) and self.participates(receiver_id)
        ):
            return False
        return super().wants_as_relay(sender_id, receiver_id, message)

    def relay_affinity(self, node_id: int, message: Message) -> float:
        if not self.participates(node_id):
            return 0.0
        return super().relay_affinity(node_id, message)

    def select_messages(
        self, sender_id: int, receiver_id: int
    ) -> List[Tuple[Message, str]]:
        selected = super().select_messages(sender_id, receiver_id)
        if self.participates(sender_id) and self.participates(receiver_id):
            return selected
        # Defection withdraws relaying only: destination deliveries
        # keep flowing (the batched _preselected entry was consumed by
        # the super() call, so the filter composes with tick batching).
        return [pair for pair in selected if pair[1] == "destination"]
