"""Routing protocols: ChitChat (the paper's substrate) plus classic
node-centric baselines used for ablations."""

from repro.routing.base import Router, RoutingContext
from repro.routing.chitchat import ChitChatRouter, InterestRecord, InterestTable
from repro.routing.direct import DirectContactRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.epidemic_variants import (
    ImmuneEpidemicRouter,
    PriorityEpidemicRouter,
)
from repro.routing.nectar import NectarRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.relics import RelicsRouter
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.routing.tft import TitForTatRouter
from repro.routing.two_hop import TwoHopRouter
from repro.routing.two_hop_reward import TwoHopRewardRouter

__all__ = [
    "Router",
    "RoutingContext",
    "ChitChatRouter",
    "InterestRecord",
    "InterestTable",
    "EpidemicRouter",
    "PriorityEpidemicRouter",
    "ImmuneEpidemicRouter",
    "DirectContactRouter",
    "TwoHopRouter",
    "SprayAndWaitRouter",
    "ProphetRouter",
    "NectarRouter",
    "TitForTatRouter",
    "RelicsRouter",
    "TwoHopRewardRouter",
]
