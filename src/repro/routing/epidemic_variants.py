"""Epidemic routing variants surveyed in thesis Section 1.1.

* **Priority-based epidemic** — flooding, but transfer queues drain in
  source-priority order, so high-priority messages win the race for
  short contacts.
* **Immunity-based epidemic** — once a node has *delivered* a message
  (or learns of its delivery via gossiped immunity lists), it purges the
  copy and refuses re-infection, curing the network of dead traffic.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.routing.epidemic import EpidemicRouter

__all__ = ["PriorityEpidemicRouter", "ImmuneEpidemicRouter"]


class PriorityEpidemicRouter(EpidemicRouter):
    """Epidemic flooding with priority-ordered transfer queues."""

    name = "epidemic-priority"

    def on_contact_start(self, link: Link) -> None:
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            candidates = [
                m for m in sender.buffer.messages()
                if not receiver.has_seen(m.uuid)
                and m.size <= receiver.buffer.capacity
            ]
            candidates.sort(
                key=lambda m: (int(m.priority), -m.quality, m.uuid)
            )
            for message in candidates:
                self.world.send_message(link, sender_id, message)


class ImmuneEpidemicRouter(EpidemicRouter):
    """Epidemic flooding with delivery-immunity ("cure") propagation.

    Each node keeps an immunity set of message UUIDs known to be fully
    delivered.  On contact, immunity sets are merged *before* routing,
    and immune messages are purged from buffers and never re-accepted —
    the classic anti-entropy optimisation that trades a little metadata
    for a large drop in dead traffic.

    A message becomes immune once it has reached every destination the
    *receiving node can name* — here, when the delivering contact's
    destination accepts it; richer oracle policies can subclass
    :meth:`_should_immunise`.
    """

    name = "epidemic-immune"

    def __init__(self):
        super().__init__()
        self._immunity: Dict[int, Set[str]] = {}

    def immunity_of(self, node_id: int) -> Set[str]:
        """The node's current immunity set (a live reference)."""
        return self._immunity.setdefault(node_id, set())

    def _should_immunise(self, receiver_id: int, message: Message) -> bool:
        """Whether this delivery should start curing the message."""
        record = self.world.metrics.record_for(message.uuid)
        if record is None:
            return True
        # Cure once every intended destination has a copy.
        return set(record.delivered_to) >= set(record.intended)

    def _purge(self, node_id: int, uuid: str) -> None:
        node = self.world.node(node_id)
        node.buffer.discard(uuid)

    def on_contact_start(self, link: Link) -> None:
        # Anti-entropy: merge immunity sets, purge cured copies.
        merged = self.immunity_of(link.a) | self.immunity_of(link.b)
        self._immunity[link.a] = set(merged)
        self._immunity[link.b] = set(merged)
        for node_id in link.pair:
            for uuid in merged:
                self._purge(node_id, uuid)
        super().on_contact_start(link)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        if message.uuid in self.immunity_of(receiver.node_id):
            # Refuse re-infection; the copy dies here.
            receiver.seen.add(message.uuid)
            return
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self.world.deliver(receiver, message)
            if self._should_immunise(receiver.node_id, message):
                self.immunity_of(receiver.node_id).add(message.uuid)
                self._purge(receiver.node_id, message.uuid)
                return
        if not self.world.accept_relay(receiver, message):
            return
        self._flood_onward(receiver.node_id, message)
