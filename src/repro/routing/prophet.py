"""PRoPHET baseline (Lindgren et al., 2003).

Probabilistic Routing Protocol using History of Encounters and
Transitivity: each node keeps a delivery predictability ``P(a, b)``
updated on encounters, aged over time, and made transitive through
common neighbours.  A message is forwarded when the peer's
predictability of reaching *some destination* of the message exceeds the
holder's.  Destinations are interest-based, like everywhere else in this
package.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["ProphetRouter"]


class ProphetRouter(Router):
    """PRoPHET with interest-based destination sets.

    Args:
        p_encounter: Initialisation constant ``P_init`` in (0, 1].
        beta_transitive: Transitivity scaling ``beta`` in [0, 1].
        gamma: Aging constant per second in (0, 1).
    """

    name = "prophet"

    #: PRoPHET terminates at the destination: a delivered message is not
    #: re-buffered for further destinations.
    destinations_also_relay = False

    def __init__(
        self,
        *,
        p_encounter: float = 0.75,
        beta_transitive: float = 0.25,
        gamma: float = 0.999,
    ):
        super().__init__()
        if not 0.0 < p_encounter <= 1.0:
            raise ConfigurationError(
                f"p_encounter must be in (0, 1], got {p_encounter!r}"
            )
        if not 0.0 <= beta_transitive <= 1.0:
            raise ConfigurationError(
                f"beta_transitive must be in [0, 1], got {beta_transitive!r}"
            )
        if not 0.0 < gamma < 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1), got {gamma!r}")
        self.p_encounter = float(p_encounter)
        self.beta_transitive = float(beta_transitive)
        self.gamma = float(gamma)
        self._pred: Dict[int, Dict[int, float]] = {}
        self._last_aged: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Predictability bookkeeping
    # ------------------------------------------------------------------
    def predictability(self, holder: int, target: int) -> float:
        """Current ``P(holder, target)`` (0 when never encountered)."""
        return self._pred.get(holder, {}).get(target, 0.0)

    def _age(self, node_id: int) -> None:
        now = self.world.now
        last = self._last_aged.get(node_id, now)
        elapsed = now - last
        self._last_aged[node_id] = now
        if elapsed <= 0:
            return
        table = self._pred.get(node_id)
        if not table:
            return
        factor = math.pow(self.gamma, elapsed)
        for target in list(table):
            table[target] *= factor
            if table[target] < 1e-6:
                del table[target]

    def _on_encounter(self, a: int, b: int) -> None:
        for holder, peer in ((a, b), (b, a)):
            table = self._pred.setdefault(holder, {})
            old = table.get(peer, 0.0)
            table[peer] = old + (1.0 - old) * self.p_encounter
        # Transitivity: P(a, c) grows through b's knowledge.
        for holder, peer in ((a, b), (b, a)):
            holder_table = self._pred.setdefault(holder, {})
            peer_table = self._pred.get(peer, {})
            p_holder_peer = holder_table.get(peer, 0.0)
            for target, p_peer_target in peer_table.items():
                if target == holder:
                    continue
                old = holder_table.get(target, 0.0)
                boost = (
                    p_holder_peer * p_peer_target * self.beta_transitive
                )
                holder_table[target] = old + (1.0 - old) * boost

    def best_predictability(self, holder: int, message: Message) -> float:
        """Max predictability of ``holder`` reaching any destination."""
        best = 0.0
        for node_id in self.world.node_ids():
            if node_id == holder:
                continue
            node = self.world.node(node_id)
            if node.is_interested_in(message):
                best = max(best, self.predictability(holder, node_id))
        return best

    # ------------------------------------------------------------------
    # Substrate hooks
    # ------------------------------------------------------------------
    def wants_as_relay(
        self, sender_id: int, receiver_id: int, message: Message
    ) -> bool:
        """The PRoPHET forwarding rule: the peer is a better carrier."""
        return (
            self.best_predictability(receiver_id, message)
            > self.best_predictability(sender_id, message)
        )

    def relay_affinity(self, node_id: int, message: Message) -> float:
        """Delivery predictability of reaching some destination."""
        return self.best_predictability(node_id, message)

    def relay_trust(self, receiver_id: int, message: Message) -> float:
        """Predictability doubles as the prepay-confidence signal."""
        return self.best_predictability(receiver_id, message)

    def select_messages(
        self, sender_id: int, receiver_id: int
    ) -> List[Tuple[Message, str]]:
        """Destinations first, then relays by descending predictability."""
        sender = self.world.node(sender_id)
        receiver = self.world.node(receiver_id)
        offers: List[Tuple[float, Message, str]] = []
        for message in sender.buffer.messages():
            if receiver.has_seen(message.uuid):
                continue
            if message.size > receiver.buffer.capacity:
                continue
            if self.is_destination(receiver, message):
                offers.append((math.inf, message, "destination"))
                continue
            mine = self.best_predictability(sender_id, message)
            theirs = self.best_predictability(receiver.node_id, message)
            if theirs > mine:
                offers.append((theirs, message, "relay"))
        offers.sort(key=lambda item: -item[0])
        return [(message, role) for _, message, role in offers]

    # ------------------------------------------------------------------
    # World hooks
    # ------------------------------------------------------------------
    def prepare_contact(self, link: Link) -> None:
        """Age both tables and apply the encounter/transitivity update."""
        self._age(link.a)
        self._age(link.b)
        self._on_encounter(link.a, link.b)

    def on_contact_start(self, link: Link) -> None:
        self.prepare_contact(link)
        for sender_id in link.pair:
            receiver_id = link.peer_of(sender_id)
            for message, _role in self.select_messages(
                sender_id, receiver_id
            ):
                self.world.send_message(link, sender_id, message)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self.world.deliver(receiver, message)
            return
        self.world.accept_relay(receiver, message)
