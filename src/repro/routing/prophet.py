"""PRoPHET baseline (Lindgren et al., 2003).

Probabilistic Routing Protocol using History of Encounters and
Transitivity: each node keeps a delivery predictability ``P(a, b)``
updated on encounters, aged over time, and made transitive through
common neighbours.  A message is forwarded when the peer's
predictability of reaching *some destination* of the message exceeds the
holder's.  Destinations are interest-based, like everywhere else in this
package.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.link import Link, Transfer
from repro.routing.base import Router

__all__ = ["ProphetRouter"]


class ProphetRouter(Router):
    """PRoPHET with interest-based destination sets.

    Args:
        p_encounter: Initialisation constant ``P_init`` in (0, 1].
        beta_transitive: Transitivity scaling ``beta`` in [0, 1].
        gamma: Aging constant per second in (0, 1).
    """

    name = "prophet"

    def __init__(
        self,
        *,
        p_encounter: float = 0.75,
        beta_transitive: float = 0.25,
        gamma: float = 0.999,
    ):
        super().__init__()
        if not 0.0 < p_encounter <= 1.0:
            raise ConfigurationError(
                f"p_encounter must be in (0, 1], got {p_encounter!r}"
            )
        if not 0.0 <= beta_transitive <= 1.0:
            raise ConfigurationError(
                f"beta_transitive must be in [0, 1], got {beta_transitive!r}"
            )
        if not 0.0 < gamma < 1.0:
            raise ConfigurationError(f"gamma must be in (0, 1), got {gamma!r}")
        self.p_encounter = float(p_encounter)
        self.beta_transitive = float(beta_transitive)
        self.gamma = float(gamma)
        self._pred: Dict[int, Dict[int, float]] = {}
        self._last_aged: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Predictability bookkeeping
    # ------------------------------------------------------------------
    def predictability(self, holder: int, target: int) -> float:
        """Current ``P(holder, target)`` (0 when never encountered)."""
        return self._pred.get(holder, {}).get(target, 0.0)

    def _age(self, node_id: int) -> None:
        now = self.world.now
        last = self._last_aged.get(node_id, now)
        elapsed = now - last
        self._last_aged[node_id] = now
        if elapsed <= 0:
            return
        table = self._pred.get(node_id)
        if not table:
            return
        factor = math.pow(self.gamma, elapsed)
        for target in list(table):
            table[target] *= factor
            if table[target] < 1e-6:
                del table[target]

    def _on_encounter(self, a: int, b: int) -> None:
        for holder, peer in ((a, b), (b, a)):
            table = self._pred.setdefault(holder, {})
            old = table.get(peer, 0.0)
            table[peer] = old + (1.0 - old) * self.p_encounter
        # Transitivity: P(a, c) grows through b's knowledge.
        for holder, peer in ((a, b), (b, a)):
            holder_table = self._pred.setdefault(holder, {})
            peer_table = self._pred.get(peer, {})
            p_holder_peer = holder_table.get(peer, 0.0)
            for target, p_peer_target in peer_table.items():
                if target == holder:
                    continue
                old = holder_table.get(target, 0.0)
                boost = (
                    p_holder_peer * p_peer_target * self.beta_transitive
                )
                holder_table[target] = old + (1.0 - old) * boost

    def best_predictability(self, holder: int, message: Message) -> float:
        """Max predictability of ``holder`` reaching any destination."""
        best = 0.0
        for node_id in self.world.node_ids():
            if node_id == holder:
                continue
            node = self.world.node(node_id)
            if node.is_interested_in(message):
                best = max(best, self.predictability(holder, node_id))
        return best

    # ------------------------------------------------------------------
    # World hooks
    # ------------------------------------------------------------------
    def on_contact_start(self, link: Link) -> None:
        self._age(link.a)
        self._age(link.b)
        self._on_encounter(link.a, link.b)
        for sender_id in link.pair:
            sender = self.world.node(sender_id)
            receiver = self.world.node(link.peer_of(sender_id))
            offers: List[Tuple[float, Message]] = []
            for message in sender.buffer.messages():
                if receiver.has_seen(message.uuid):
                    continue
                if message.size > receiver.buffer.capacity:
                    continue
                if self.is_destination(receiver, message):
                    offers.append((math.inf, message))
                    continue
                mine = self.best_predictability(sender_id, message)
                theirs = self.best_predictability(receiver.node_id, message)
                if theirs > mine:
                    offers.append((theirs, message))
            offers.sort(key=lambda item: -item[0])
            for _, message in offers:
                self.world.send_message(link, sender_id, message)

    def on_message_received(self, transfer: Transfer, link: Link) -> None:
        receiver = self.world.node(transfer.receiver)
        message = transfer.message
        message.record_hop(receiver.node_id)
        if self.is_destination(receiver, message):
            self.world.deliver(receiver, message)
            return
        self.world.accept_relay(receiver, message)
