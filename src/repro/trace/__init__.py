"""Structured run-trace observability.

Every quantitative claim in the paper is a time series over protocol
events, yet a simulation normally exposes only end-of-run aggregates.
This package records the events themselves: a
:class:`~repro.trace.recorder.TraceRecorder` is threaded through the
simulation core (engine, world, links), the token ledger, the
reputation system and the incentive protocol, and — when enabled —
writes one JSON object per event to a JSONL file.

The default recorder is a null object whose :attr:`enabled` flag is
``False``; every emission site guards on that flag, so a run without
tracing pays a single attribute load per event (< 2% on the paper-scale
probe, enforced by the bench harness).

* :mod:`repro.trace.schema` — the versioned record-type registry and
  per-record validation.
* :mod:`repro.trace.recorder` — the null and JSONL recorders.
* :mod:`repro.trace.audit` — replays a trace into per-node token-flow
  ledgers, reputation time series and a token-conservation audit
  (``repro-dtn trace audit``).
"""

from repro.trace.recorder import (
    NULL_RECORDER,
    JsonlTraceRecorder,
    TraceRecorder,
    derive_trace_path,
)
from repro.trace.schema import SCHEMA_VERSION, iter_trace, validate_record

__all__ = [
    "NULL_RECORDER",
    "TraceRecorder",
    "JsonlTraceRecorder",
    "derive_trace_path",
    "SCHEMA_VERSION",
    "iter_trace",
    "validate_record",
]
