"""Trace recorders: the null object and the JSONL sink.

The emission contract is deliberately minimal so the disabled path is
nearly free: every instrumented component holds a recorder (the shared
:data:`NULL_RECORDER` by default) and guards each emission with::

    if self.trace.enabled:
        self.trace.emit({"type": ..., "t": now, ...})

``enabled`` is a class attribute, so a disabled run costs one attribute
load and a branch per event — no dict building, no I/O.  The bench
harness holds this under 2% on the paper-scale probe.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Optional, Union

from repro.errors import TraceError
from repro.trace.schema import SCHEMA_VERSION

__all__ = [
    "TraceRecorder",
    "NULL_RECORDER",
    "JsonlTraceRecorder",
    "derive_trace_path",
]


class TraceRecorder:
    """The do-nothing recorder (also the base class for real ones)."""

    #: Emission sites branch on this before building a record dict.
    enabled: bool = False

    def emit(self, record: dict) -> None:
        """Record one event (no-op here)."""

    def close(self) -> None:
        """Flush and release the sink (no-op here)."""


#: The process-wide shared null recorder; safe to share, it holds no state.
NULL_RECORDER = TraceRecorder()


class JsonlTraceRecorder(TraceRecorder):
    """Appends one compact JSON object per event to a JSONL file.

    The header record (``trace-header``, schema version plus any
    ``meta`` the caller supplies) is written on construction, so even an
    empty run produces a parseable trace.

    Args:
        path: Output file (parent directories are created).
        meta: Extra header fields — scheme, seed, node count, duration.
    """

    enabled = True

    def __init__(
        self, path: Union[str, Path], *, meta: Optional[dict] = None
    ):
        self._path = Path(path)
        if self._path.parent != Path("."):
            self._path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._file: Optional[IO[str]] = open(
                self._path, "w", encoding="utf-8"
            )
        except OSError as exc:
            raise TraceError(
                f"cannot open trace file {self._path}: {exc}"
            ) from None
        self.records_written = 0
        header = {"type": "trace-header", "t": 0.0, "schema": SCHEMA_VERSION}
        if meta:
            header.update(meta)
        self.emit(header)

    @property
    def path(self) -> Path:
        """Where the trace is being written."""
        return self._path

    def emit(self, record: dict) -> None:
        if self._file is None:
            raise TraceError(
                f"trace recorder for {self._path} is already closed"
            )
        self._file.write(json.dumps(record, separators=(",", ":")))
        self._file.write("\n")
        self.records_written += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlTraceRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def derive_trace_path(
    base: Union[str, Path], *, scheme: str, seed: int
) -> str:
    """A per-run trace path derived from a user-supplied base path.

    Multi-run commands (comparisons, seed averages, parallel sweeps)
    cannot write every run into one file; each run gets its own.  When
    ``base`` contains ``{scheme}`` / ``{seed}`` placeholders they are
    substituted; otherwise ``.<scheme>.s<seed>`` is inserted before the
    extension (``out/run.jsonl`` -> ``out/run.incentive.s3.jsonl``).
    """
    text = str(base)
    if "{scheme}" in text or "{seed}" in text:
        return text.format(scheme=scheme, seed=seed)
    path = Path(text)
    suffix = path.suffix or ".jsonl"
    stem = path.name[: -len(path.suffix)] if path.suffix else path.name
    return str(path.with_name(f"{stem}.{scheme}.s{seed}{suffix}"))
