"""Replay a run trace into ledgers, time series and a conservation audit.

The auditor is an independent re-implementation of the token-flow
bookkeeping: it reconstructs every account balance and escrow hold from
the trace records alone and checks, **after every token event**, that

    sum(balances) + escrow == sum(endowments)

— the paper's closed-economy invariant, enforced at every timestamp
rather than just at the end of the run.  It also verifies the escrow
lifecycle is linear (every capture/release names an open hold and moves
exactly the held amount), that no balance goes negative, and that the
final replayed state matches the ``run-end`` snapshot the simulation
recorded (balances, total supply, payment count, tokens moved — the
:class:`~repro.metrics.collector.MetricsCollector` totals must be
reproduced *exactly*, which a property test locks in).

Along the way it accumulates the per-node token-flow ledgers and the
reputation time series that ``repro-dtn trace audit`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from repro.trace.schema import iter_trace

__all__ = ["Violation", "NodeFlow", "TraceAudit", "replay_trace"]

#: Incremental float sums may drift from the per-account ledger by a few
#: ulps over hundreds of thousands of events; anything beyond this is a
#: genuine conservation break, not rounding.
_CONSERVATION_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One audit failure, anchored to the record that caused it."""

    time: float
    index: int  # 0-based record index in the trace
    message: str

    def __str__(self) -> str:
        return f"record {self.index} (t={self.time:.3f}): {self.message}"


@dataclass
class NodeFlow:
    """Token flows of one account, reconstructed from the trace."""

    node: int
    endowment: float = 0.0
    earned: float = 0.0  # credits from captures / transfers received
    spent: float = 0.0  # debits from captures / transfers paid
    balance: float = 0.0

    @property
    def net(self) -> float:
        """Net tokens gained (negative = net payer)."""
        return self.balance - self.endowment


@dataclass
class TraceAudit:
    """Everything :func:`replay_trace` reconstructs from one trace."""

    records_read: int = 0
    counts: Dict[str, int] = field(default_factory=dict)
    header: Dict[str, object] = field(default_factory=dict)
    #: Per-account flows, keyed by node id.
    flows: Dict[int, NodeFlow] = field(default_factory=dict)
    #: ``subject -> [(t, rater, score_after)]`` reputation series.
    reputation: Dict[int, List[Tuple[float, int, float]]] = field(
        default_factory=dict
    )
    endowment: float = 0.0
    final_supply: float = 0.0
    final_escrow: float = 0.0
    #: Protocol payments replayed (escrow captures + direct transfers);
    #: must equal the run's ``MetricsCollector.token_payments`` /
    #: ``tokens_moved`` exactly.
    token_payments: int = 0
    tokens_moved: float = 0.0
    #: Conservation checks performed (one per token-moving record).
    conservation_checks: int = 0
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether the replay produced no violations."""
        return not self.violations

    def to_json(self) -> dict:
        """A JSON-serialisable summary (``trace audit --json``)."""
        return {
            "ok": self.ok,
            "records": self.records_read,
            "counts": dict(sorted(self.counts.items())),
            "endowment": self.endowment,
            "final_supply": self.final_supply,
            "final_escrow": self.final_escrow,
            "token_payments": self.token_payments,
            "tokens_moved": self.tokens_moved,
            "conservation_checks": self.conservation_checks,
            "accounts": {
                str(node): {
                    "endowment": flow.endowment,
                    "earned": flow.earned,
                    "spent": flow.spent,
                    "balance": flow.balance,
                    "net": flow.net,
                }
                for node, flow in sorted(self.flows.items())
            },
            "reputation_subjects": len(self.reputation),
            "rating_events": sum(len(s) for s in self.reputation.values()),
            "violations": [str(v) for v in self.violations],
        }


def replay_trace(
    source: Union[str, Path, Iterable[dict]], *, validate: bool = True
) -> TraceAudit:
    """Replay a trace (path or record iterable) into a :class:`TraceAudit`.

    Schema validation happens per record (unless ``validate=False`` and
    ``source`` is a path, or the caller pre-validated an iterable);
    bookkeeping violations are *collected*, not raised, so one broken
    record does not hide the rest.
    """
    if isinstance(source, (str, Path)):
        records: Iterable[dict] = iter_trace(source, validate=validate)
    else:
        records = source

    audit = TraceAudit()
    balances: Dict[int, float] = {}
    holds: Dict[int, Tuple[int, float]] = {}
    balance_sum = 0.0
    escrow_sum = 0.0
    saw_run_end = False
    last_time = 0.0

    def flow(node: int) -> NodeFlow:
        entry = audit.flows.get(node)
        if entry is None:
            entry = NodeFlow(node=node)
            audit.flows[node] = entry
        return entry

    def fail(index: int, t: float, message: str) -> None:
        audit.violations.append(Violation(time=t, index=index, message=message))

    def check_conservation(index: int, t: float) -> None:
        audit.conservation_checks += 1
        drift = balance_sum + escrow_sum - audit.endowment
        if abs(drift) > _CONSERVATION_TOL:
            fail(
                index, t,
                f"conservation broken: balances+escrow drifted "
                f"{drift:+.9f} tokens from the {audit.endowment:.3f} endowment",
            )

    def debit(index: int, t: float, payer: int, amount: float, what: str) -> bool:
        nonlocal balance_sum
        if payer not in balances:
            fail(index, t, f"{what} debits unknown account {payer}")
            return False
        if balances[payer] < amount - 1e-9:
            fail(
                index, t,
                f"{what} overdraws account {payer}: "
                f"{balances[payer]:.9f} < {amount:.9f}",
            )
            return False
        balances[payer] -= amount
        balance_sum -= amount
        return True

    def credit(node: int, amount: float) -> None:
        nonlocal balance_sum
        balances[node] = balances.get(node, 0.0) + amount
        balance_sum += amount

    for index, record in enumerate(records):
        kind = record["type"]
        t = float(record["t"])
        last_time = t
        audit.records_read += 1
        audit.counts[kind] = audit.counts.get(kind, 0) + 1

        if kind == "trace-header":
            audit.header = {
                k: v for k, v in record.items() if k not in ("type", "t")
            }

        elif kind == "account-open":
            node, amount = record["node"], float(record["amount"])
            if node in balances:
                fail(index, t, f"account {node} opened twice")
                continue
            balances[node] = amount
            balance_sum += amount
            audit.endowment += amount
            entry = flow(node)
            entry.endowment = amount
            check_conservation(index, t)

        elif kind == "escrow-hold":
            hold = record["hold"]
            payer, amount = record["payer"], float(record["amount"])
            if hold in holds:
                fail(index, t, f"escrow hold {hold} created twice")
                continue
            if debit(index, t, payer, amount, f"escrow hold {hold}"):
                holds[hold] = (payer, amount)
                escrow_sum += amount
            check_conservation(index, t)

        elif kind in ("escrow-capture", "escrow-duplicate", "escrow-release"):
            hold = record["hold"]
            entry = holds.pop(hold, None)
            if entry is None:
                fail(
                    index, t,
                    f"{kind} names hold {hold}, which does not exist "
                    f"(double-settled or never created)",
                )
                continue
            held_payer, held_amount = entry
            payer = record["payer"]
            amount = float(record["amount"])
            if payer != held_payer or abs(amount - held_amount) > 1e-9:
                fail(
                    index, t,
                    f"{kind} on hold {hold} claims payer={payer} "
                    f"amount={amount:.9f}, but the hold was payer="
                    f"{held_payer} amount={held_amount:.9f}",
                )
                # Replay with the hold's own values to limit cascading.
                payer, amount = held_payer, held_amount
            escrow_sum -= held_amount
            if kind == "escrow-capture":
                payee = record["payee"]
                credit(payee, held_amount)
                audit.token_payments += 1
                audit.tokens_moved += amount
                flow(payee).earned += amount
                flow(payer).spent += amount
            else:
                # Duplicate-settlement refund, abort/expiry/finalize
                # release: the tokens go back to the payer.
                credit(payer, held_amount)
            check_conservation(index, t)

        elif kind == "transfer-payment":
            payer, payee = record["payer"], record["payee"]
            amount = float(record["amount"])
            if debit(index, t, payer, amount, "transfer"):
                credit(payee, amount)
                audit.token_payments += 1
                audit.tokens_moved += amount
                flow(payee).earned += amount
                flow(payer).spent += amount
            check_conservation(index, t)

        elif kind == "rating":
            subject = record["subject"]
            series = audit.reputation.setdefault(subject, [])
            series.append((t, record["rater"], float(record.get("score", 0.0))))

        elif kind == "run-end":
            saw_run_end = True
            if holds:
                fail(
                    index, t,
                    f"{len(holds)} escrow hold(s) still open at run-end "
                    f"({escrow_sum:.9f} tokens stranded): "
                    f"{sorted(holds)[:5]}...",
                )
            recorded = record.get("balances")
            if recorded is not None:
                for key, value in recorded.items():
                    node = int(key)
                    replayed = balances.get(node)
                    if replayed is None:
                        fail(index, t, f"run-end lists unknown account {node}")
                    elif abs(replayed - float(value)) > 1e-9:
                        fail(
                            index, t,
                            f"account {node}: replayed balance "
                            f"{replayed:.9f} != recorded {float(value):.9f}",
                        )
                missing = set(balances) - {int(k) for k in recorded}
                if missing:
                    fail(
                        index, t,
                        f"replay opened accounts absent from the run-end "
                        f"snapshot: {sorted(missing)[:5]}",
                    )
            if "token_payments" in record and (
                int(record["token_payments"]) != audit.token_payments
            ):
                fail(
                    index, t,
                    f"replayed {audit.token_payments} payments, run "
                    f"recorded {record['token_payments']}",
                )
            if "tokens_moved" in record and (
                float(record["tokens_moved"]) != audit.tokens_moved
            ):
                fail(
                    index, t,
                    f"replayed tokens_moved={audit.tokens_moved!r}, run "
                    f"recorded {record['tokens_moved']!r}",
                )
            if "supply" in record and abs(
                float(record["supply"]) - (balance_sum + escrow_sum)
            ) > _CONSERVATION_TOL:
                fail(
                    index, t,
                    f"replayed supply {balance_sum + escrow_sum:.9f} != "
                    f"recorded {float(record['supply']):.9f}",
                )
            check_conservation(index, t)

        # Remaining record types (contacts, transfers, offers, gossip,
        # enrichment, deliveries, faults, engine-run) carry no tokens;
        # they are counted above and surfaced by the CLI report.

    if audit.records_read == 0:
        audit.violations.append(
            Violation(time=0.0, index=0, message="trace contains no records")
        )
    elif not saw_run_end and any(
        k in audit.counts for k in ("account-open", "escrow-hold")
    ):
        fail_index = audit.records_read - 1
        audit.violations.append(Violation(
            time=last_time, index=fail_index,
            message="trace moves tokens but has no run-end snapshot "
                    "(truncated or crashed run)",
        ))

    for node, balance in balances.items():
        flow(node).balance = balance
    audit.final_supply = balance_sum + escrow_sum
    audit.final_escrow = escrow_sum
    return audit
