"""The versioned event-trace schema.

A trace file is JSON Lines: one record per line, every record a JSON
object with at least a ``type`` (one of :data:`RECORD_TYPES`) and a
``t`` (simulation time in seconds).  The first record of a file is a
``trace-header`` carrying :data:`SCHEMA_VERSION`; the last record of a
completed run is a ``run-end`` snapshot the auditor cross-checks its
replay against.

The registry below is the single source of truth for what each record
type carries.  :func:`validate_record` is strict in both directions —
missing required fields *and* unknown fields are errors — so a typo at
an emission site fails the trace-smoke CI job instead of silently
producing records nobody can replay.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterator, Tuple, Union

from repro.errors import TraceError

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "RECORD_TYPES",
    "validate_record",
    "iter_trace",
]

#: Bumped whenever a record type changes incompatibly.  Version 2
#: added the optional heterogeneous-population fields
#: (``delivery.node_class``, ``run-end.node_classes``); version-1 files
#: carry neither and stay readable.
SCHEMA_VERSION = 2

#: Header versions :func:`iter_trace` accepts.  Older versions here are
#: strict subsets of the current registry, so validation of their
#: records needs no special-casing.
SUPPORTED_VERSIONS = frozenset({1, 2})

_NUM = (int, float)
_INT = (int,)
_STR = (str,)
_BOOL = (bool,)
_DICT = (dict,)

#: type -> (required fields, optional fields); every record also
#: requires ``type`` (str) and ``t`` (number), checked separately.
RECORD_TYPES: Dict[str, Tuple[Dict[str, tuple], Dict[str, tuple]]] = {
    # File framing
    "trace-header": (
        {"schema": _INT},
        {"scheme": _STR, "seed": _INT, "n_nodes": _INT, "duration": _NUM},
    ),
    "run-end": (
        {},
        {
            "events": _INT,
            "supply": _NUM,
            "endowment": _NUM,
            "escrow": _NUM,
            "token_payments": _INT,
            "tokens_moved": _NUM,
            "balances": _DICT,
            # node id (as a string key) -> population class name;
            # emitted only by heterogeneous runs (schema v2).
            "node_classes": _DICT,
        },
    ),
    # Simulation core
    "engine-run": ({"events": _INT}, {"pending": _INT}),
    "contact-up": ({"a": _INT, "b": _INT}, {}),
    "contact-down": ({"a": _INT, "b": _INT}, {"reason": _STR}),
    "message-created": (
        {"uuid": _STR, "source": _INT},
        {"size": _INT, "priority": _INT, "quality": _NUM, "intended": _INT},
    ),
    "transfer-start": (
        {"uuid": _STR, "sender": _INT, "receiver": _INT},
        {"duration": _NUM},
    ),
    "transfer-complete": (
        {"uuid": _STR, "sender": _INT, "receiver": _INT}, {}
    ),
    "transfer-abort": (
        {"uuid": _STR, "sender": _INT, "receiver": _INT},
        {"reason": _STR},
    ),
    "delivery": (
        {"uuid": _STR, "node": _INT},
        # node_class: the receiver's population class, emitted only
        # by heterogeneous runs (schema v2).
        {"first": _BOOL, "node_class": _STR},
    ),
    "message-drop": ({"uuid": _STR, "node": _INT}, {}),
    "message-expiry": ({"uuid": _STR, "node": _INT}, {}),
    # Incentive protocol
    "offer": (
        {"uuid": _STR, "sender": _INT, "receiver": _INT, "role": _STR},
        {"award": _NUM, "promise": _NUM, "prepay": _NUM},
    ),
    "offer-declined": (
        {"uuid": _STR, "sender": _INT, "receiver": _INT, "reason": _STR},
        {"role": _STR},
    ),
    "enrichment": (
        {"uuid": _STR, "node": _INT},
        {"keyword": _STR, "relevant": _BOOL},
    ),
    # Token ledger
    "account-open": ({"node": _INT, "amount": _NUM}, {}),
    "transfer-payment": (
        {"payer": _INT, "payee": _INT, "amount": _NUM},
        {"reason": _STR, "key": _STR},
    ),
    "transfer-duplicate": (
        {"payer": _INT, "payee": _INT, "amount": _NUM},
        {"key": _STR},
    ),
    "escrow-hold": (
        {"hold": _INT, "payer": _INT, "amount": _NUM},
        {"reason": _STR, "expires_at": _NUM},
    ),
    "escrow-capture": (
        {"hold": _INT, "payer": _INT, "payee": _INT, "amount": _NUM},
        {"reason": _STR, "key": _STR},
    ),
    "escrow-duplicate": (
        {"hold": _INT, "payer": _INT, "payee": _INT, "amount": _NUM},
        {"key": _STR},
    ),
    "escrow-release": (
        {"hold": _INT, "payer": _INT, "amount": _NUM},
        {"cause": _STR},
    ),
    # Reputation
    "rating": (
        {"rater": _INT, "subject": _INT, "rating": _NUM},
        {"score": _NUM},
    ),
    "gossip": ({"a": _INT, "b": _INT}, {"merged_a": _INT, "merged_b": _INT}),
    "reputation-forget": ({"subject": _INT}, {"books": _INT}),
    # Faults
    "fault-crash": ({"node": _INT}, {"wiped": _BOOL}),
    "fault-restart": ({"node": _INT}, {}),
    "fault-blackout": ({"node": _INT}, {}),
}

_BASE_FIELDS = ("type", "t")


def validate_record(record: object) -> None:
    """Check one decoded record against the registry.

    Raises:
        TraceError: If the record is not a dict, has an unknown type, a
            missing/ill-typed field, or any field the registry does not
            declare.
    """
    if not isinstance(record, dict):
        raise TraceError(f"record must be a JSON object, got {type(record).__name__}")
    kind = record.get("type")
    if not isinstance(kind, str):
        raise TraceError(f"record has no string 'type' field: {record!r}")
    spec = RECORD_TYPES.get(kind)
    if spec is None:
        raise TraceError(f"unknown record type {kind!r}")
    t = record.get("t")
    if not isinstance(t, _NUM) or isinstance(t, bool):
        raise TraceError(f"{kind}: 't' must be a number, got {t!r}")
    required, optional = spec
    for name, types in required.items():
        value = record.get(name)
        if value is None and name not in record:
            raise TraceError(f"{kind}: missing required field {name!r}")
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            raise TraceError(
                f"{kind}: field {name!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, got {value!r}"
            )
    for name, value in record.items():
        if name in _BASE_FIELDS or name in required:
            continue
        types = optional.get(name)
        if types is None:
            raise TraceError(f"{kind}: unknown field {name!r}")
        if not isinstance(value, types) or (
            isinstance(value, bool) and bool not in types
        ):
            raise TraceError(
                f"{kind}: field {name!r} must be "
                f"{'/'.join(t.__name__ for t in types)}, got {value!r}"
            )


def iter_trace(
    path: Union[str, Path], *, validate: bool = True
) -> Iterator[dict]:
    """Yield every record of a JSONL trace file, in order.

    Args:
        path: The trace file.
        validate: Run :func:`validate_record` on each record (default).

    Raises:
        TraceError: On unreadable files, malformed JSON, a missing or
            version-mismatched header, or (with ``validate``) any
            schema violation — always naming the offending line.
    """
    source = Path(path)
    try:
        text = source.read_text(encoding="utf-8")
    except OSError as exc:
        raise TraceError(f"{source}: unreadable trace file: {exc}") from None
    first = True
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise TraceError(f"{source}:{lineno}: malformed JSON: {exc}") from None
        if validate:
            try:
                validate_record(record)
            except TraceError as exc:
                raise TraceError(f"{source}:{lineno}: {exc}") from None
        if first:
            first = False
            if not isinstance(record, dict) or record.get("type") != "trace-header":
                raise TraceError(
                    f"{source}:{lineno}: first record must be a trace-header"
                )
            version = record.get("schema")
            if version not in SUPPORTED_VERSIONS:
                raise TraceError(
                    f"{source}: schema version {version!r} is not supported "
                    f"(this build reads versions "
                    f"{sorted(SUPPORTED_VERSIONS)})"
                )
        yield record
    if first:
        raise TraceError(f"{source}: empty trace file (no records)")
