"""Heterogeneous node populations: first-class node classes.

The paper evaluates one homogeneous pedestrian population (Table 5.1),
but the incentive literature it sits in is about *heterogeneous* DTNs:
El-Azouzi et al. tune rewards per node class (arXiv:1704.02948) and
Chahin et al.'s minority-game activation presumes classes that differ
in cost and capability (arXiv:1207.6760).  This module is the single
source of truth for that heterogeneity:

* :class:`NodeClassSpec` — a declarative per-class override bundle
  (speed/pause, mobility kind, radio radius and link speed, buffer,
  battery and recharge, interests, behaviour mix, reward multiplier).
  ``ScenarioConfig.population`` is a tuple of these; the empty tuple
  (the default) means "one class derived from the legacy scalars".
* :func:`resolve_population` — fills every unset override from the
  config's scalar fields, so the scalars remain *validated views onto
  the default class* and every pre-population config keeps working.
* :func:`assign_classes` — deterministic membership.  Class sizes come
  from largest-remainder apportionment of the fractions (no RNG); each
  class then draws its members from the remaining pool on its **own**
  named stream ``population:{name}``.  A single-class population skips
  the draw entirely and consumes **zero** RNG — the bit-identity
  guarantee for legacy configs — and because streams are keyed by
  class *name* (derived from the master seed only, independent of
  creation order; see :mod:`repro.sim.rng`), editing one class never
  perturbs the draws of classes listed before it.
* :class:`PopulationMap` — the resolved per-node arrays (class id,
  radius, link speed, buffer, battery, recharge) every lower layer
  consumes: the SoA :class:`~repro.network.world_state.WorldState`,
  the contact detector's per-node radii, the world's per-link speed
  and the incentive layer's per-class award multipliers.
* The ``pedestrian`` / ``vehicular`` / ``infrastructure`` preset
  catalog and :func:`mixed_population`, the 3-class mix used by
  ``repro-dtn hetero`` and the CI hetero-smoke job.

Nothing here imports the experiment or network layers, so config,
mobility, world and routing code can all depend on it freely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "NodeClassSpec",
    "ResolvedClass",
    "PopulationMap",
    "resolve_population",
    "assign_classes",
    "class_counts",
    "population_stream_names",
    "PRESET_CLASSES",
    "mixed_population",
    "preset_rows",
]

#: Name of the default class a scalar-only config resolves to.
DEFAULT_CLASS = "default"

#: Tolerance when checking that population fractions sum to one.
_FRACTION_TOL = 1e-9


def _check_range(
    name: str, field_name: str, value: Tuple[float, float], *, low: float
) -> None:
    lo, hi = value
    if not (low <= lo <= hi):
        raise ConfigurationError(
            f"population[{name}].{field_name} must satisfy "
            f"{low} <= min <= max, got {value!r}"
        )


def _check_positive(name: str, field_name: str, value: float) -> None:
    if not value > 0:
        raise ConfigurationError(
            f"population[{name}].{field_name} must be > 0, got {value!r}"
        )


@dataclass(frozen=True)
class NodeClassSpec:
    """One node class: a fraction of the population plus its overrides.

    Every override defaults to ``None`` meaning "inherit the scenario's
    scalar field" — a population of ``(NodeClassSpec("default", 1.0),)``
    is therefore exactly the legacy homogeneous scenario.

    Attributes:
        name: Class name; also keys the class's dedicated RNG streams
            (``population:{name}``, ``mobility:{name}``,
            ``interests:{name}``, ``behavior-assignment:{name}``).
        fraction: Share of the population in ``[0, 1]``; all fractions
            in a population must sum to 1.  Integer class sizes come
            from largest-remainder apportionment (ties to the earlier
            class), so they are deterministic and total ``n_nodes``.
        mobility: Mobility model kind for this class (``None`` inherits
            the scenario's; ``"static"`` for fixed infrastructure).
        speed_range: ``(min, max)`` speed in m/s.
        pause_range: ``(min, max)`` pause in seconds.
        transmission_radius: Radio range in metres.  Two nodes are in
            contact when within ``max(r_a, r_b)`` — the stronger radio
            carries the pair (see DESIGN.md §11).
        link_speed: Transfer speed in bytes/second; a mixed link runs at
            ``min`` of the endpoints (the slower radio bottlenecks).
        buffer_capacity: Buffer size in bytes.
        battery_capacity: Battery in joules; inherits the scenario
            scalar when ``None`` (mains classes in a battery-mixed
            population get an infinite-capacity battery that never
            empties).
        recharge_amount: Joules restored per fault-config recharge tick
            (``None`` inherits the fault config's amount).
        interests_per_node: Interest keywords sampled per node.
        selfish_fraction: Share of this class that is selfish (``None``
            inherits the scenario fraction).
        malicious_fraction: Share of this class that is malicious.
        reward_multiplier: Per-class pricing knob consumed by
            class-aware incentive schemes (El-Azouzi-style class-tuned
            rewards): delivery awards earned by this class's nodes are
            scaled by it.  ``1.0`` is neutral.
        doc: One-line description for the generated preset table.
    """

    name: str
    fraction: float
    mobility: Optional[str] = None
    speed_range: Optional[Tuple[float, float]] = None
    pause_range: Optional[Tuple[float, float]] = None
    transmission_radius: Optional[float] = None
    link_speed: Optional[float] = None
    buffer_capacity: Optional[int] = None
    battery_capacity: Optional[float] = None
    recharge_amount: Optional[float] = None
    interests_per_node: Optional[int] = None
    selfish_fraction: Optional[float] = None
    malicious_fraction: Optional[float] = None
    reward_multiplier: float = 1.0
    doc: str = ""

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"population class name must be a non-empty string, "
                f"got {self.name!r}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"population[{self.name}].fraction must be in [0, 1], "
                f"got {self.fraction!r}"
            )
        if self.mobility is not None and self.mobility not in (
            "random-waypoint", "random-walk", "manhattan", "static",
        ):
            raise ConfigurationError(
                f"population[{self.name}].mobility is unknown: "
                f"{self.mobility!r}"
            )
        if self.speed_range is not None:
            _check_range(self.name, "speed_range", self.speed_range, low=0.0)
            if self.speed_range[1] <= 0 and (self.mobility or "") != "static":
                raise ConfigurationError(
                    f"population[{self.name}].speed_range max must be > 0 "
                    f"for mobile classes, got {self.speed_range!r}"
                )
        if self.pause_range is not None:
            _check_range(self.name, "pause_range", self.pause_range, low=0.0)
        for field_name in (
            "transmission_radius", "link_speed", "buffer_capacity",
            "battery_capacity", "recharge_amount", "interests_per_node",
        ):
            value = getattr(self, field_name)
            if value is not None:
                _check_positive(self.name, field_name, value)
        for field_name in ("selfish_fraction", "malicious_fraction"):
            value = getattr(self, field_name)
            if value is not None and not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"population[{self.name}].{field_name} must be in "
                    f"[0, 1], got {value!r}"
                )
        _check_positive(self.name, "reward_multiplier", self.reward_multiplier)


@dataclass(frozen=True)
class ResolvedClass:
    """A :class:`NodeClassSpec` with every override filled in."""

    name: str
    fraction: float
    mobility: str
    speed_range: Tuple[float, float]
    pause_range: Tuple[float, float]
    transmission_radius: float
    link_speed: float
    buffer_capacity: int
    battery_capacity: Optional[float]
    recharge_amount: Optional[float]
    interests_per_node: int
    selfish_fraction: float
    malicious_fraction: float
    reward_multiplier: float


def resolve_population(config) -> Tuple[ResolvedClass, ...]:
    """Fill every unset class override from ``config``'s scalar fields.

    An empty ``config.population`` resolves to one ``"default"`` class
    carrying exactly the scalars — the legacy homogeneous scenario.
    """
    specs: Sequence[NodeClassSpec] = config.population or (
        NodeClassSpec(DEFAULT_CLASS, 1.0),
    )

    def pick(spec: NodeClassSpec, field_name: str):
        value = getattr(spec, field_name)
        return value if value is not None else getattr(config, field_name)

    return tuple(
        ResolvedClass(
            name=spec.name,
            fraction=spec.fraction,
            mobility=pick(spec, "mobility"),
            speed_range=pick(spec, "speed_range"),
            pause_range=pick(spec, "pause_range"),
            transmission_radius=float(pick(spec, "transmission_radius")),
            link_speed=float(pick(spec, "link_speed")),
            buffer_capacity=int(pick(spec, "buffer_capacity")),
            battery_capacity=pick(spec, "battery_capacity"),
            recharge_amount=spec.recharge_amount,
            interests_per_node=int(pick(spec, "interests_per_node")),
            selfish_fraction=float(pick(spec, "selfish_fraction")),
            malicious_fraction=float(pick(spec, "malicious_fraction")),
            reward_multiplier=float(spec.reward_multiplier),
        )
        for spec in specs
    )


def class_counts(n_nodes: int, fractions: Sequence[float]) -> List[int]:
    """Integer class sizes by largest-remainder apportionment.

    Deterministic (no RNG): floors first, then the leftover seats go to
    the largest fractional remainders, ties resolved toward the earlier
    class.  The counts always sum to ``n_nodes``.
    """
    raw = [float(f) * n_nodes for f in fractions]
    counts = [int(math.floor(r)) for r in raw]
    leftover = n_nodes - sum(counts)
    remainders = sorted(
        range(len(raw)), key=lambda i: (-(raw[i] - counts[i]), i)
    )
    for i in remainders[:leftover]:
        counts[i] += 1
    return counts


def population_stream_names(classes: Sequence[ResolvedClass]) -> List[str]:
    """The dedicated stream names a heterogeneous population consumes."""
    names: List[str] = []
    for cls in classes:
        names.extend(
            (
                f"population:{cls.name}",
                f"mobility:{cls.name}",
                f"interests:{cls.name}",
                f"behavior-assignment:{cls.name}",
            )
        )
    return names


def assign_classes(
    n_nodes: int, classes: Sequence[ResolvedClass], streams
) -> np.ndarray:
    """Per-node class index array, deterministic given ``(seed, classes)``.

    A single class assigns everyone to index 0 **without touching any
    RNG stream** — the legacy bit-identity guarantee.  With several
    classes, each class except the last draws its members from the
    sorted remaining pool on its own ``population:{name}`` stream; the
    last class takes the remainder without drawing.  Because streams
    are derived from the master seed by *name*, the draws of a class
    are untouched by edits to classes listed after it — the isolation
    property pinned by ``tests/test_population.py``.
    """
    if len(classes) == 1:
        return np.zeros(n_nodes, dtype=np.int64)
    counts = class_counts(n_nodes, [c.fraction for c in classes])
    class_id = np.empty(n_nodes, dtype=np.int64)
    pool = np.arange(n_nodes, dtype=np.int64)
    for index, cls in enumerate(classes[:-1]):
        rng = streams.get(f"population:{cls.name}")
        picks = rng.choice(pool.size, size=counts[index], replace=False)
        picks.sort()
        class_id[pool[picks]] = index
        pool = np.delete(pool, picks)
    class_id[pool] = len(classes) - 1
    return class_id


class PopulationMap:
    """Resolved per-node population arrays, indexed by node id.

    Node ids are the contiguous ``0 .. n_nodes-1`` range the runner
    builds, so plain arrays serve as the id -> value maps every layer
    gathers from.
    """

    def __init__(
        self, classes: Tuple[ResolvedClass, ...], class_id: np.ndarray
    ):
        self.classes = classes
        self.class_id = class_id
        self.n_nodes = int(class_id.size)

    @classmethod
    def build(cls, config, streams) -> "PopulationMap":
        """Resolve ``config``'s population and assign classes."""
        classes = resolve_population(config)
        class_id = assign_classes(config.n_nodes, classes, streams)
        return cls(classes, class_id)

    @property
    def heterogeneous(self) -> bool:
        """More than one class — the gate for every hetero code path."""
        return len(self.classes) > 1

    def name_of(self, node_id: int) -> str:
        """Class name of ``node_id``."""
        return self.classes[int(self.class_id[node_id])].name

    def members(self, index: int) -> np.ndarray:
        """Ascending node ids belonging to class ``index``."""
        return np.nonzero(self.class_id == index)[0]

    def names_by_node(self) -> Dict[int, str]:
        """``{node_id: class name}`` for metrics and trace records."""
        names = [c.name for c in self.classes]
        return {
            node_id: names[cid]
            for node_id, cid in enumerate(self.class_id.tolist())
        }

    def _gather(self, field_name: str, dtype) -> np.ndarray:
        values = np.array(
            [getattr(c, field_name) for c in self.classes], dtype=dtype
        )
        return values[self.class_id]

    @property
    def radii(self) -> np.ndarray:
        """Per-node transmission radius in metres."""
        return self._gather("transmission_radius", np.float64)

    @property
    def link_speeds(self) -> np.ndarray:
        """Per-node link speed in bytes/second."""
        return self._gather("link_speed", np.float64)

    @property
    def buffer_capacities(self) -> np.ndarray:
        """Per-node buffer capacity in bytes."""
        return self._gather("buffer_capacity", np.int64)

    @property
    def battery_capacities(self) -> Optional[np.ndarray]:
        """Per-node battery in joules, or ``None`` when no class has one.

        In a mixed population, classes without a battery get ``inf`` —
        a battery that drains on paper but never empties, i.e. mains
        power — so the battery machinery stays one uniform array.
        """
        if all(c.battery_capacity is None for c in self.classes):
            return None
        values = np.array(
            [
                c.battery_capacity if c.battery_capacity is not None
                else np.inf
                for c in self.classes
            ],
            dtype=np.float64,
        )
        return values[self.class_id]

    def recharge_amounts(self, default: float) -> np.ndarray:
        """Per-node recharge joules per fault-config recharge tick."""
        values = np.array(
            [
                c.recharge_amount if c.recharge_amount is not None
                else default
                for c in self.classes
            ],
            dtype=np.float64,
        )
        return values[self.class_id]

    def reward_multipliers(self) -> Dict[str, float]:
        """``{class name: award multiplier}`` for class-aware pricing."""
        return {c.name: c.reward_multiplier for c in self.classes}


def validate_population(specs: Sequence[NodeClassSpec]) -> None:
    """Config-construction validation of a population tuple.

    Raises:
        ConfigurationError: On non-spec entries, duplicate class names,
            or fractions that do not sum to 1 (each named explicitly).
    """
    seen = set()
    for spec in specs:
        if not isinstance(spec, NodeClassSpec):
            raise ConfigurationError(
                f"population entries must be NodeClassSpec, got {spec!r}"
            )
        if spec.name in seen:
            raise ConfigurationError(
                f"population[{spec.name}] is defined twice"
            )
        seen.add(spec.name)
    total = sum(spec.fraction for spec in specs)
    if specs and abs(total - 1.0) > _FRACTION_TOL:
        raise ConfigurationError(
            f"population fractions must sum to 1, got {total!r}"
        )


def spec_as_dict(spec: NodeClassSpec) -> Dict[str, object]:
    """A JSON-stable dict of ``spec`` (tuples become lists)."""
    out: Dict[str, object] = {}
    for f in fields(spec):
        value = getattr(spec, f.name)
        if isinstance(value, tuple):
            value = list(value)
        out[f.name] = value
    return out


# ---------------------------------------------------------------------------
# Preset catalog
# ---------------------------------------------------------------------------
#: The three-class catalog backing ``repro-dtn hetero`` and the docs
#: preset table.  ``pedestrian`` carries no overrides: it *is* the
#: paper's Table 5.1 population, so an all-pedestrian mix is exactly
#: the legacy scenario.  Reward multipliers follow the El-Azouzi
#: class-tuned-reward argument: the more capable (cheaper-per-delivery)
#: a class, the smaller the award needed to keep it participating.
PRESET_CLASSES: Dict[str, NodeClassSpec] = {
    "pedestrian": NodeClassSpec(
        "pedestrian", 1.0,
        reward_multiplier=1.0,
        doc="Table 5.1 walkers: inherits every scenario scalar.",
    ),
    "vehicular": NodeClassSpec(
        "vehicular", 1.0,
        speed_range=(8.0, 14.0),
        pause_range=(0.0, 30.0),
        transmission_radius=150.0,
        link_speed=500_000.0,
        buffer_capacity=500_000_000,
        reward_multiplier=0.75,
        doc="Vehicles: 8-14 m/s, 150 m radio, 500 kBps, 500 MB buffers.",
    ),
    "infrastructure": NodeClassSpec(
        "infrastructure", 1.0,
        mobility="static",
        speed_range=(0.0, 0.0),
        pause_range=(0.0, 0.0),
        transmission_radius=200.0,
        link_speed=1_000_000.0,
        buffer_capacity=1_000_000_000,
        reward_multiplier=0.5,
        doc="Fixed kiosks: static, 200 m radio, 1 MBps, 1 GB buffers.",
    ),
}


def mixed_population(
    pedestrian: float = 0.6,
    vehicular: float = 0.3,
    infrastructure: float = 0.1,
) -> Tuple[NodeClassSpec, ...]:
    """The 3-class preset mix with the given fractions (must sum to 1)."""
    import dataclasses

    mix = []
    for name, fraction in (
        ("pedestrian", pedestrian),
        ("vehicular", vehicular),
        ("infrastructure", infrastructure),
    ):
        if fraction > 0:
            mix.append(
                dataclasses.replace(PRESET_CLASSES[name], fraction=fraction)
            )
    specs = tuple(mix)
    validate_population(specs)
    return specs


def preset_rows() -> List[Tuple[str, str, str, str, str, str]]:
    """Rows for the generated preset table in EXPERIMENTS.md/README.md."""
    rows = []
    for name, spec in PRESET_CLASSES.items():
        rows.append(
            (
                name,
                spec.mobility or "(scenario)",
                (
                    f"{spec.speed_range[0]:g}-{spec.speed_range[1]:g} m/s"
                    if spec.speed_range is not None else "(scenario)"
                ),
                (
                    f"{spec.transmission_radius:g} m"
                    if spec.transmission_radius is not None else "(scenario)"
                ),
                (
                    f"{spec.buffer_capacity // 1_000_000} MB"
                    if spec.buffer_capacity is not None else "(scenario)"
                ),
                f"{spec.reward_multiplier:g}x",
            )
        )
    return rows
