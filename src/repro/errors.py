"""Exception hierarchy for the ``repro`` package.

Every error raised on purpose by this library derives from
:class:`ReproError`, so callers can catch library failures with a single
``except`` clause while letting programming errors (``TypeError`` and
friends) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ExperimentError",
    "SimulationError",
    "SchedulingError",
    "LedgerError",
    "InsufficientTokensError",
    "UnknownAccountError",
    "BufferError_",
    "MessageError",
    "RoutingError",
    "MobilityError",
    "TraceError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A scenario or component was configured with invalid parameters."""


class ExperimentError(ReproError):
    """An experiment run failed (e.g. a worker process crashed).

    The message lists the failing ``(scheme, seed)`` combinations so a
    single bad grid point cannot silently poison a whole sweep.
    """


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or onto a finished engine."""


class LedgerError(ReproError):
    """Base class for token-ledger failures."""


class InsufficientTokensError(LedgerError):
    """An account attempted to pay more tokens than it holds."""

    def __init__(self, account: str, requested: float, available: float):
        self.account = account
        self.requested = requested
        self.available = available
        super().__init__(
            f"account {account!r} holds {available:.3f} tokens, "
            f"cannot pay {requested:.3f}"
        )


class UnknownAccountError(LedgerError):
    """An operation referenced an account that was never opened."""


class BufferError_(ReproError):
    """A message buffer was used incorrectly (not capacity exhaustion)."""


class MessageError(ReproError):
    """A message was constructed or mutated incorrectly."""


class RoutingError(ReproError):
    """A routing component was driven incorrectly."""


class MobilityError(ReproError):
    """A mobility model or contact detector was misconfigured."""


class TraceError(ReproError):
    """An event-trace file is malformed or violates its schema."""
