"""Network substrate: nodes, buffers, links, energy, and the world."""

from repro.network.buffer import DropPolicy, MessageBuffer
from repro.network.energy import EnergyModel
from repro.network.link import Link, Transfer
from repro.network.node import Node
from repro.network.world_state import NodeStateView, WorldState

__all__ = [
    "DropPolicy",
    "MessageBuffer",
    "EnergyModel",
    "Link",
    "Transfer",
    "Node",
    "NodeStateView",
    "WorldState",
]
