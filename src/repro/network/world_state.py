"""Struct-of-arrays per-node world state.

The object world core keeps per-node scalar state scattered across
Python containers: battery joules in a ``World`` dict, consumed radio
energy in an ``EnergyModel`` dict, token balances inside the ledger,
reputation summaries inside the reputation books.  That layout caps
simulations at paper scale (500 nodes): every update is a hash lookup
and every aggregate is a Python loop.

:class:`WorldState` is the contiguous alternative: one NumPy array per
scalar field, indexed by *slot* (a dense ``0..n-1`` renumbering of node
ids).  The arrays are the storage the SoA world core
(:mod:`repro.network.world_soa`) and the array-backed
:class:`~repro.network.energy.EnergyModel` write through, and
:class:`NodeStateView` (reachable as ``Node.state``) is the thin
per-node handle that keeps the object API readable.

Accumulation-order contract
---------------------------
Batched updates (:meth:`WorldState.charge_energy`,
:meth:`WorldState.drain_battery`) apply element updates **in argument
order** via ``np.add.at`` / per-slot assignment, which performs exactly
the same float additions, in exactly the same order, as the equivalent
scalar loop.  This is load-bearing: the differential test harness
(``tests/test_world_soa_differential.py``) asserts bit-identical energy
and battery trajectories between the object core and the SoA core, and
float addition is not associative.

Region layout
-------------
``region`` holds each node's current spatial shard id (assigned from a
:class:`~repro.mobility.regions.RegionGrid`).  :meth:`assign_regions`
recomputes the assignment from positions and returns the slots whose
region changed — the *handoff set* — so callers can migrate per-region
bookkeeping without ever losing or duplicating a node (every slot has
exactly one region before and after; the property tests pin this).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["WorldState", "NodeStateView"]


class WorldState:
    """Contiguous per-node scalar state for ``n`` nodes.

    Args:
        node_ids: The node population, in slot order.  Ids must be
            unique non-negative integers; slot ``k`` holds the state of
            ``node_ids[k]``.
        battery_capacity: Optional battery endowment in joules; when
            ``None`` the battery array is absent (mains-refreshed
            devices, the paper's evaluation setting).  Heterogeneous
            populations may pass an ``(n,)`` per-node array instead
            (``inf`` entries model mains power).
        class_id: Optional ``(n,)`` int64 population class index per
            slot (see :mod:`repro.population`); ``None`` for the
            homogeneous legacy case.
        radius: Optional ``(n,)`` per-node transmission radius.
        link_speed: Optional ``(n,)`` per-node link speed in B/s.
        buffer_capacity: Optional ``(n,)`` per-node buffer bytes.

    Attributes:
        positions: ``(n, 2)`` float64 positions in metres.
        velocities: ``(n, 2)`` float64 velocities in m/s.
        energy: ``(n,)`` float64 cumulative radio joules consumed.
        battery: ``(n,)`` float64 remaining joules, or ``None``.
        balance: ``(n,)`` float64 token-balance mirror (see
            :meth:`refresh_economics`).
        reputation: ``(n,)`` float64 reputation-summary mirror.
        region: ``(n,)`` int64 spatial shard id (0 when unsharded).
        alive: ``(n,)`` bool liveness flags (churn marks nodes down).
        class_id: ``(n,)`` int64 class index, or ``None``.
        radius: ``(n,)`` float64 per-node radio radius, or ``None``.
        link_speed: ``(n,)`` float64 per-node link speed, or ``None``.
        buffer_capacity: ``(n,)`` int64 per-node buffer, or ``None``.
    """

    def __init__(
        self,
        node_ids: Sequence[int],
        *,
        battery_capacity=None,
        class_id: Optional[np.ndarray] = None,
        radius: Optional[np.ndarray] = None,
        link_speed: Optional[np.ndarray] = None,
        buffer_capacity: Optional[np.ndarray] = None,
    ):
        ids = [int(i) for i in node_ids]
        if any(i < 0 for i in ids):
            raise ConfigurationError("node ids must be >= 0")
        if len(set(ids)) != len(ids):
            raise ConfigurationError("node ids must be unique")
        n = len(ids)
        if isinstance(battery_capacity, np.ndarray):
            if battery_capacity.shape != (n,):
                raise ConfigurationError(
                    f"battery_capacity array must have shape ({n},), "
                    f"got {battery_capacity.shape}"
                )
            if not (battery_capacity > 0).all():
                raise ConfigurationError(
                    "per-node battery_capacity entries must be > 0"
                )
        elif battery_capacity is not None and battery_capacity <= 0:
            raise ConfigurationError(
                f"battery_capacity must be > 0, got {battery_capacity!r}"
            )
        self._node_ids = np.asarray(ids, dtype=np.int64)
        #: node id -> slot.  Dense identity populations (the runner's)
        #: hit the fast path in :meth:`slot_of`.
        self._slots: Dict[int, int] = {nid: k for k, nid in enumerate(ids)}
        self._identity = bool(ids == list(range(n)))

        self.positions = np.zeros((n, 2), dtype=np.float64)
        self.velocities = np.zeros((n, 2), dtype=np.float64)
        self.energy = np.zeros(n, dtype=np.float64)
        self.battery_capacity = battery_capacity
        if isinstance(battery_capacity, np.ndarray):
            self.battery: Optional[np.ndarray] = np.array(
                battery_capacity, dtype=np.float64
            )
        else:
            self.battery = (
                np.full(n, float(battery_capacity), dtype=np.float64)
                if battery_capacity is not None else None
            )
        self.balance = np.zeros(n, dtype=np.float64)
        self.reputation = np.zeros(n, dtype=np.float64)
        self.region = np.zeros(n, dtype=np.int64)
        self.alive = np.ones(n, dtype=bool)
        self.class_id = (
            np.asarray(class_id, dtype=np.int64)
            if class_id is not None else None
        )
        self.radius = (
            np.asarray(radius, dtype=np.float64)
            if radius is not None else None
        )
        self.link_speed = (
            np.asarray(link_speed, dtype=np.float64)
            if link_speed is not None else None
        )
        self.buffer_capacity = (
            np.asarray(buffer_capacity, dtype=np.int64)
            if buffer_capacity is not None else None
        )
        for name in ("class_id", "radius", "link_speed", "buffer_capacity"):
            array = getattr(self, name)
            if array is not None and array.shape != (n,):
                raise ConfigurationError(
                    f"{name} array must have shape ({n},), got {array.shape}"
                )
        #: Fused [node-row × keyword] interest-weight store (see
        #: :class:`repro.routing.chitchat.InterestStore`), attached by
        #: a batching router at bind time; ``None`` until then.  Lives
        #: here so router tick state sits beside the other per-node
        #: arrays and survives router re-binds to the same world.
        self.interest_store = None

    def attach_interest_store(self, store) -> None:
        """Adopt ``store`` as the world's fused interest-weight store.

        Called by :meth:`repro.routing.chitchat.ChitChatRouter.bind`
        when it binds to an array-core world; the presence of this
        method is also what marks the world as fused-store capable.
        """
        self.interest_store = store

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of slots."""
        return int(self._node_ids.size)

    @property
    def node_ids(self) -> np.ndarray:
        """Node ids in slot order (read-only view)."""
        view = self._node_ids.view()
        view.flags.writeable = False
        return view

    def slot_of(self, node_id: int) -> int:
        """The slot holding ``node_id``'s state.

        Raises:
            ConfigurationError: For unknown ids.
        """
        if self._identity and 0 <= node_id < self._node_ids.size:
            return node_id
        try:
            return self._slots[node_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown node id {node_id}"
            ) from None

    def view(self, node_id: int) -> "NodeStateView":
        """A per-node handle over ``node_id``'s slot."""
        return NodeStateView(self, self.slot_of(node_id))

    def __len__(self) -> int:
        return self.n

    # ------------------------------------------------------------------
    # Batched scalar updates (scalar accumulation order preserved)
    # ------------------------------------------------------------------
    def charge_energy(
        self, slots: np.ndarray, joules: np.ndarray
    ) -> None:
        """Accumulate radio energy against ``slots`` element-by-element.

        ``np.add.at`` applies the additions in argument order, so a
        batch with repeated slots produces exactly the floats a scalar
        ``for`` loop would — the accumulation-order contract above.
        """
        np.add.at(self.energy, slots, joules)

    def drain_battery(
        self, slots: np.ndarray, joules: np.ndarray
    ) -> np.ndarray:
        """Drain batteries in argument order; clamp at zero.

        Returns:
            The slots (in argument order, deduplicated) that crossed
            from positive charge to empty during this batch — the
            blackout set the fault layer reacts to.  Empty when
            batteries are disabled.
        """
        if self.battery is None:
            return np.empty(0, dtype=np.int64)
        slots = np.asarray(slots, dtype=np.int64)
        joules = np.asarray(joules, dtype=np.float64)
        pre_entry = self.battery[slots]  # fancy indexing copies
        before_positive = pre_entry > 0.0
        np.subtract.at(self.battery, slots, joules)
        np.maximum(self.battery, 0.0, out=self.battery)
        now_empty = self.battery[slots] <= 0.0
        crossed = slots[before_positive & now_empty]
        if crossed.size > 1:
            # More than one candidate entry: replay the batch to order
            # crossings the way the scalar loop would.  A slot's entry
            # order in the batch is not its crossing order (earlier
            # entries may drain nothing), and the blackout set's order
            # feeds event scheduling, so it must match exactly.  Rare
            # path: at most len(batch) dict operations.
            remaining: Dict[int, float] = {}
            order: List[int] = []
            for k in range(slots.size):
                slot = int(slots[k])
                level = remaining.setdefault(slot, float(pre_entry[k]))
                if level <= 0.0:
                    continue
                level -= float(joules[k])
                remaining[slot] = level
                if level <= 0.0:
                    order.append(slot)
            crossed = np.asarray(order, dtype=np.int64)
        return crossed

    def recharge(self, amount: float) -> None:
        """Add ``amount`` joules to every battery, capped at capacity."""
        if self.battery is None:
            return
        np.minimum(
            self.battery + amount, self.battery_capacity, out=self.battery
        )

    # ------------------------------------------------------------------
    # Regions
    # ------------------------------------------------------------------
    def assign_regions(self, grid) -> np.ndarray:
        """Recompute region ids from positions via ``grid``.

        Args:
            grid: A :class:`~repro.mobility.regions.RegionGrid`.

        Returns:
            The slots whose region changed (the boundary-handoff set),
            in slot order.  Every slot has exactly one region before
            and after — nodes are never lost or duplicated by a
            handoff.
        """
        new = grid.region_of(self.positions)
        moved = np.flatnonzero(new != self.region)
        self.region[:] = new
        return moved

    def region_members(self, region: int) -> np.ndarray:
        """Slots currently assigned to ``region`` (ascending)."""
        return np.flatnonzero(self.region == int(region))

    def region_counts(self, n_regions: int) -> np.ndarray:
        """Population per region; sums to ``n`` by construction."""
        return np.bincount(self.region, minlength=int(n_regions))

    # ------------------------------------------------------------------
    # Economics mirrors
    # ------------------------------------------------------------------
    def refresh_economics(
        self, router, *, include_reputation: bool = True
    ) -> None:
        """Pull token balances and reputation summaries into the arrays.

        The ledger and reputation books stay the transactional source of
        truth (their idempotence and escrow machinery is audited by the
        trace subsystem); these arrays are the batch-query mirror for
        whole-population analytics at scale.  Call after ``finalize``
        or at sampling points.

        Args:
            router: The scheme router (``ledger`` / ``reputation``
                attributes are optional; absent ones are skipped).
            include_reputation: The reputation mirror averages every
                observer's book per subject — O(n^2) — so large-scale
                callers refresh balances only.
        """
        ledger = getattr(router, "ledger", None)
        if ledger is not None:
            for node_id, balance in ledger.balances().items():
                slot = self._slots.get(int(node_id))
                if slot is not None:
                    self.balance[slot] = balance
        reputation = (
            getattr(router, "reputation", None)
            if include_reputation else None
        )
        if reputation is not None:
            average = getattr(reputation, "average_score_of", None)
            if average is not None:
                observers = sorted(self._slots)
                for node_id, slot in self._slots.items():
                    self.reputation[slot] = float(
                        average(node_id, observers)
                    )

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_energy(self) -> float:
        """Total joules consumed across the population."""
        return float(self.energy.sum())

    def total_balance(self) -> float:
        """Sum of the token-balance mirror."""
        return float(self.balance.sum())


class NodeStateView:
    """A thin, allocation-free handle over one :class:`WorldState` slot.

    ``Node`` objects in the SoA core hold one of these instead of scalar
    attributes: reads and writes go straight to the shared arrays, so
    routers keep their object-style accessors while the storage stays
    contiguous.
    """

    __slots__ = ("_state", "_slot")

    def __init__(self, state: WorldState, slot: int):
        self._state = state
        self._slot = int(slot)

    @property
    def state(self) -> WorldState:
        """The backing :class:`WorldState`."""
        return self._state

    @property
    def slot(self) -> int:
        """This node's row in every state array."""
        return self._slot

    @property
    def node_id(self) -> int:
        """The node id stored in this slot."""
        return int(self._state._node_ids[self._slot])

    @property
    def position(self) -> np.ndarray:
        """``(2,)`` position in metres (a live view)."""
        return self._state.positions[self._slot]

    @position.setter
    def position(self, value: Iterable[float]) -> None:
        self._state.positions[self._slot] = value

    @property
    def velocity(self) -> np.ndarray:
        """``(2,)`` velocity in m/s (a live view)."""
        return self._state.velocities[self._slot]

    @velocity.setter
    def velocity(self, value: Iterable[float]) -> None:
        self._state.velocities[self._slot] = value

    @property
    def energy_consumed(self) -> float:
        """Cumulative radio joules consumed."""
        return float(self._state.energy[self._slot])

    @property
    def battery(self) -> Optional[float]:
        """Remaining battery joules (None when batteries are off)."""
        if self._state.battery is None:
            return None
        return float(self._state.battery[self._slot])

    @property
    def token_balance(self) -> float:
        """Token-balance mirror (see ``WorldState.refresh_economics``)."""
        return float(self._state.balance[self._slot])

    @property
    def reputation_score(self) -> float:
        """Reputation-summary mirror."""
        return float(self._state.reputation[self._slot])

    @property
    def region(self) -> int:
        """Current spatial shard id."""
        return int(self._state.region[self._slot])

    @property
    def alive(self) -> bool:
        """Whether the node is currently up (churn marks nodes down)."""
        return bool(self._state.alive[self._slot])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NodeStateView(node={self.node_id}, slot={self._slot}, "
            f"region={self.region})"
        )
