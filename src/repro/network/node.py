"""DTN node state.

A :class:`Node` is the per-device state shared by every routing scheme:
identity, role in the user hierarchy, direct social interests, the
finite message buffer, and delivery bookkeeping.  Protocol-specific
state (ChitChat weights, token balances, reputation books) lives in the
respective protocol components keyed by node id, so the same node
population can be replayed under different schemes — exactly how the
paper compares "ours vs ChitChat" on identical scenarios.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Optional, Set

from repro.errors import ConfigurationError
from repro.messages.message import Message
from repro.network.buffer import DropPolicy, MessageBuffer

__all__ = ["Node"]


class Node:
    """One mobile device in the DTN.

    Args:
        node_id: Unique integer id (>= 0).
        interests: Direct social-interest keywords (subscriptions).
        role: User-hierarchy rank; 1 is the top (e.g. Sergeant), larger
            numbers are lower ranks (paper Section 3.2).
        buffer_capacity: Buffer size in bytes (Table 5.1: 250 MB).
        drop_policy: Buffer eviction policy.
        behavior: Optional behaviour profile (honest/selfish/malicious);
            interpreted by :mod:`repro.agents`.
    """

    def __init__(
        self,
        node_id: int,
        interests: Iterable[str],
        *,
        role: int = 1,
        buffer_capacity: int = 250_000_000,
        drop_policy: DropPolicy = DropPolicy.DROP_OLDEST,
        behavior: Optional[Any] = None,
    ):
        if node_id < 0:
            raise ConfigurationError(f"node_id must be >= 0, got {node_id}")
        if role < 1:
            raise ConfigurationError(f"role must be >= 1, got {role}")
        self.node_id = int(node_id)
        self.role = int(role)
        self.interests: FrozenSet[str] = frozenset(interests)
        self.buffer = MessageBuffer(buffer_capacity, drop_policy)
        self.behavior = behavior
        #: Struct-of-arrays handle (a
        #: :class:`~repro.network.world_state.NodeStateView`) when this
        #: node is part of an SoA world core; ``None`` under the object
        #: core.  Scalar per-node state — position, energy, battery,
        #: token-balance mirror — is read through it, so ``Node`` stays
        #: a thin view over contiguous arrays rather than the storage.
        self.state: Optional[Any] = None

        #: UUIDs of messages this node originated.
        self.generated: Set[str] = set()
        #: UUID -> delivery time for messages received *as a destination*.
        self.delivered: Dict[str, float] = {}
        #: UUIDs ever seen (buffered or delivered); used for dedup so the
        #: same message is never accepted twice (the UUID's purpose).
        self.seen: Set[str] = set()

    # ------------------------------------------------------------------
    # Interest predicates
    # ------------------------------------------------------------------
    def is_interested_in(self, message: Message) -> bool:
        """Whether the node has a *direct* interest in any message tag.

        Per ChitChat, a device with a direct interest in a message's
        keywords is a *destination* for it.
        """
        return bool(self.interests & message.keywords)

    def matching_interests(self, message: Message) -> FrozenSet[str]:
        """Direct interests that appear among the message's tags."""
        return self.interests & message.keywords

    # ------------------------------------------------------------------
    # Message custody
    # ------------------------------------------------------------------
    def originate(self, message: Message, now: float) -> None:
        """Record and buffer a message created by this node."""
        if message.source != self.node_id:
            raise ConfigurationError(
                f"node {self.node_id} cannot originate a message whose "
                f"source is {message.source}"
            )
        self.generated.add(message.uuid)
        self.seen.add(message.uuid)
        self.buffer.add(message, now)

    def accept_for_relay(self, message: Message, now: float) -> None:
        """Buffer a message received for forwarding."""
        self.seen.add(message.uuid)
        self.buffer.add(message, now)

    def accept_delivery(self, message: Message, now: float) -> bool:
        """Record a message delivered to this node as a destination.

        Returns:
            ``True`` on first delivery, ``False`` for a duplicate copy
            (per the paper, only the first deliverer is rewarded; the
            UUID guarantees the message "does not get duplicated in any
            device").
        """
        if message.uuid in self.delivered:
            return False
        self.delivered[message.uuid] = float(now)
        self.seen.add(message.uuid)
        return True

    def has_seen(self, uuid: str) -> bool:
        """Whether this node ever held or received the message."""
        return uuid in self.seen

    # ------------------------------------------------------------------
    # Struct-of-arrays binding
    # ------------------------------------------------------------------
    def bind_state(self, view: Any) -> None:
        """Attach a ``NodeStateView`` over this node's array slot.

        Raises:
            ConfigurationError: If the view belongs to another node.
        """
        if view.node_id != self.node_id:
            raise ConfigurationError(
                f"state view for node {view.node_id} cannot back node "
                f"{self.node_id}"
            )
        self.state = view

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Node({self.node_id}, role={self.role}, "
            f"interests={len(self.interests)}, buffered={len(self.buffer)})"
        )
