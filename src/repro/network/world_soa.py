"""The struct-of-arrays world core.

:class:`SoAWorld` is a drop-in :class:`~repro.network.world.World`
replacement whose per-node scalar state — energy, battery, token-balance
and reputation mirrors, region ids — lives in one contiguous
:class:`~repro.network.world_state.WorldState` instead of scattered
Python dicts, and whose contact trace is loaded as **per-scan-tick
batches**: one heap event per ``(time, up/down)`` tick instead of one
per pair.  At 10k nodes that turns ~750k contact heap events into a few
hundred batch events, which is where the throughput headroom for
million-node runs comes from (ROADMAP item 1).

Equivalence contract
--------------------
The SoA core must be **bit-identical** to the object core — same
contact sequence, same deliveries, same final token balances, same
energy floats.  The differential harness
(``tests/test_world_soa_differential.py``) enforces it.  The load-
bearing arguments:

* **Batch order.** ``ContactTrace.events()`` yields events sorted by
  ``(time, down-before-up, pair)``, so all same-time same-kind events
  are consecutive.  The object core schedules them individually at
  priority 0 (down) / 1 (up); at equal time, priority dominates and
  within priority the load-time sequence (== trace order) decides.  A
  single batch event per ``(time, kind)`` at the same priority firing
  its pairs in trace order is therefore the exact same interleaving —
  runtime-scheduled events (transfers, TTL sweeps, churn re-arms)
  always carry larger sequences than every load-time event and so
  never split a same-``(time, priority)`` run of loaded events.
* **RNG order.** Behaviour draws (``contact_enabled``) happen inside
  the per-pair ``_contact_up`` in endpoint order; batches invoke the
  same method per pair in the same order, so the behaviour stream is
  consumed identically.  Admission checks are deliberately *not*
  vectorised for this reason.
* **Float order.** Energy and battery updates stay one scalar
  operation per (node, transfer) in event order — the arrays change
  the storage, not the arithmetic (see
  :mod:`repro.network.world_state`).

Transfers remain individually scheduled events: their firing times are
data-dependent (message size / link speed), so they do not pile up on
scan ticks; their *settlement* (energy, battery) is what writes through
the arrays.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.faults import FaultConfig
from repro.messages.message import Message
from repro.metrics.collector import MetricsCollector
from repro.mobility.trace import ContactTrace
from repro.network.energy import EnergyModel
from repro.network.link import Link
from repro.network.node import Node
from repro.network.world import World
from repro.network.world_state import WorldState
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams
from repro.trace.recorder import TraceRecorder

__all__ = ["SoAWorld"]


class SoAWorld(World):
    """A :class:`World` backed by a :class:`WorldState` array core.

    Accepts exactly the :class:`World` constructor arguments.  Every
    node is bound to a :class:`~repro.network.world_state.NodeStateView`
    over its array slot (``node.state``), the energy model writes
    through ``WorldState.energy``, and batteries live in
    ``WorldState.battery`` instead of a dict.
    """

    def __init__(
        self,
        engine: Engine,
        nodes: Sequence[Node],
        router: "Router",
        *,
        link_speed: float = 250_000.0,
        streams: Optional[RandomStreams] = None,
        metrics: Optional[MetricsCollector] = None,
        energy: Optional[EnergyModel] = None,
        ttl: Optional[float] = None,
        ttl_check_interval: float = 300.0,
        nominal_distance: float = 100.0,
        battery_capacity: Optional[float] = None,
        resume_partial_transfers: bool = False,
        faults: Optional[FaultConfig] = None,
        trace: Optional[TraceRecorder] = None,
        population=None,
    ):
        node_list = list(nodes)
        # The array core must exist before the parent constructor runs:
        # ``router.bind(self)`` fires inside it, and a router is allowed
        # to inspect per-node state at bind time.  A heterogeneous
        # population threads its per-node arrays straight into the
        # state; node ids are the runner's dense 0..n-1 range there, so
        # slot order == node-id order and the arrays line up.
        hetero = population is not None and population.heterogeneous
        state_battery = battery_capacity
        if hetero:
            pop_caps = population.battery_capacities
            if pop_caps is not None:
                state_battery = pop_caps
        self.state = WorldState(
            [node.node_id for node in node_list],
            battery_capacity=state_battery,
            class_id=population.class_id if hetero else None,
            radius=population.radii if hetero else None,
            link_speed=population.link_speeds if hetero else None,
            buffer_capacity=population.buffer_capacities if hetero else None,
        )
        for node in node_list:
            node.bind_state(self.state.view(node.node_id))
        self._build_interest_matrix(node_list)
        super().__init__(
            engine, node_list, router,
            link_speed=link_speed, streams=streams, metrics=metrics,
            energy=energy, ttl=ttl, ttl_check_interval=ttl_check_interval,
            nominal_distance=nominal_distance,
            battery_capacity=battery_capacity,
            resume_partial_transfers=resume_partial_transfers,
            faults=faults, trace=trace, population=population,
        )
        # The parent built a battery dict; the array is the store here.
        self._battery = {}
        self.energy.bind_state(self.state)

    def _build_interest_matrix(self, nodes: Sequence[Node]) -> None:
        """Dense (n, keywords) interest incidence for fast fan-out.

        Columns cover the union of node interests in sorted order;
        message keywords outside the union interest nobody and simply
        contribute no column — the same answer the object core's
        per-node ``is_interested_in`` loop gives.
        """
        keywords = sorted({kw for node in nodes for kw in node.interests})
        self._interest_columns: Dict[str, int] = {
            kw: col for col, kw in enumerate(keywords)
        }
        matrix = np.zeros((len(nodes), len(keywords)), dtype=bool)
        for node in nodes:
            slot = self.state.slot_of(node.node_id)
            for kw in node.interests:
                matrix[slot, self._interest_columns[kw]] = True
        self._interest_matrix = matrix

    # ------------------------------------------------------------------
    # Batched contact loading
    # ------------------------------------------------------------------
    def load_contact_trace(self, trace: ContactTrace) -> None:
        """Schedule the trace as one batch event per ``(time, kind)``.

        See the module docstring for why this fires in exactly the
        object core's order.
        """
        run_up = self._run_up_batch
        run_down = self._run_down_batch

        def batches():
            current: Optional[Tuple[float, str]] = None
            pairs: List[Tuple[int, int]] = []
            for time, kind, pair in trace.events():
                if (time, kind) != current:
                    if current is not None:
                        yield current, pairs
                    current = (time, kind)
                    pairs = []
                pairs.append(pair)
            if current is not None:
                yield current, pairs

        self.engine.schedule_many(
            (
                time,
                (lambda b=batch: run_up(b)),
                1,
                "contact-up-batch",
            )
            if kind == "up"
            else (
                time,
                (lambda b=batch: run_down(b)),
                0,
                "contact-down-batch",
            )
            for (time, kind), batch in batches()
        )

    # ------------------------------------------------------------------
    # Batched tick execution
    # ------------------------------------------------------------------
    def _run_up_batch(self, batch: List[Tuple[int, int]]) -> None:
        """One contact-up tick: admit, batch-prepare, open.

        With a batching router this splits the per-pair handler into
        three phases — (1) admission for every pair in trace order
        (consuming the behaviour RNG stream exactly as the per-pair
        loop does: admission outcomes cannot be changed by earlier
        pairs' exchanges, whose transfers settle at strictly later
        events), (2) one ``prepare_contact_batch`` so non-interleaved
        pairs decay vectorised, then (3) the open/trace/exchange half
        per admitted pair in order.  A pair admitted earlier in the
        batch suppresses later duplicates before their RNG draws —
        the same skip the live-link check performs per-pair.  Without
        a batching router this is the plain per-pair loop.
        """
        router = self.router
        if not router.supports_contact_batching:
            contact_up = self._contact_up
            for pair in batch:
                contact_up(pair)
            return
        admit = self._admit_contact
        admitted: List[Tuple[int, int]] = []
        admitted_set: Set[Tuple[int, int]] = set()
        for pair in batch:
            if pair in admitted_set:
                continue
            if admit(pair):
                admitted.append(pair)
                admitted_set.add(pair)
        if not admitted:
            return
        router.prepare_contact_batch(admitted)
        open_contact = self._open_contact
        for pair in admitted:
            open_contact(pair)

    def _run_down_batch(self, batch: List[Tuple[int, int]]) -> None:
        """One contact-down tick: close in order, batch the growths.

        Every live pair is popped, closed and traced at its per-pair
        point (aborting in-flight transfers exactly as before).  The
        router's ``on_contact_end`` — the ChitChat growth phase — is
        deferred for *every* closed pair to one ``contact_end_batch``
        call in close order: close/abort handling never reads interest
        tables, so nothing between a growth's legacy point and the end
        of the batch observes it, and the router reconstructs each
        node's own growth order exactly via round decomposition (see
        ``ChitChatRouter.contact_end_batch``).
        """
        router = self.router
        if not router.supports_contact_batching:
            contact_down = self._contact_down
            for pair in batch:
                contact_down(pair)
            return
        close = self._close_contact
        deferred: List["Link"] = []
        for pair in batch:
            link = close(pair)
            if link is None:
                continue
            deferred.append(link)
        if deferred:
            router.contact_end_batch(deferred)

    # ------------------------------------------------------------------
    # Array-backed batteries
    # ------------------------------------------------------------------
    def battery_level(self, node_id: int) -> Optional[float]:
        """Remaining battery in joules (None when batteries are off)."""
        if self.state.battery is None:
            return None
        return float(self.state.battery[self.state.slot_of(node_id)])

    def _battery_dead(self, node_id: int) -> bool:
        if self.state.battery is None:
            return False
        return bool(
            self.state.battery[self.state.slot_of(node_id)] <= 0.0
        )

    def _drain_battery(self, node_id: int, joules: float) -> None:
        battery = self.state.battery
        if battery is None:
            return
        slot = self.state.slot_of(node_id)
        # Same scalar float sequence as the dict path:
        # max(0.0, before - joules).
        before = float(battery[slot])
        battery[slot] = max(0.0, before - joules)
        if (
            self.faults is not None
            and before > 0.0
            and battery[slot] <= 0.0
        ):
            self._battery_blackout(node_id)

    def _recharge(self, now: float) -> None:
        if self.state.battery is None or self.faults is None:
            return
        # Element-wise min(capacity, battery + amount): identical floats
        # to the object core's per-node loop.  Heterogeneous populations
        # recharge with a per-node amount array (slot order == node-id
        # order); np.minimum broadcasts both forms the same way.
        amount = self.faults.config.recharge_amount
        if self.population is not None:
            amount = self.population.recharge_amounts(amount)
        self.state.recharge(amount)

    # ------------------------------------------------------------------
    # Vectorised interest fan-out
    # ------------------------------------------------------------------
    def _intended_destinations(self, message: Message) -> Set[int]:
        cols = [
            self._interest_columns[kw]
            for kw in message.keywords
            if kw in self._interest_columns
        ]
        if not cols:
            return set()
        mask = self._interest_matrix[:, cols].any(axis=1)
        source_slot = self.state.slot_of(message.source)
        mask[source_slot] = False
        return set(self.state.node_ids[mask].tolist())

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> MetricsCollector:
        """Run for ``duration`` seconds, then refresh the balance mirror.

        The token ledger stays the transactional source of truth; the
        refresh only mirrors final balances into ``state.balance`` for
        whole-population analytics.  The O(n^2) reputation mirror is
        *not* refreshed here — call ``state.refresh_economics`` with
        ``include_reputation=True`` explicitly when needed.
        """
        metrics = super().run(duration)
        self.state.refresh_economics(self.router, include_reputation=False)
        return metrics


# Imported late to avoid a circular reference in type checking (same
# pattern as repro.network.world).
from repro.routing.base import Router  # noqa: E402  (documentation import)
