"""Finite message buffers.

Every DTN node carries in-transit messages in a finite buffer (Table 5.1:
250 MB).  When a new message does not fit, a drop policy decides which
resident messages to evict — or whether to reject the newcomer.  The
paper's incentive scheme argues larger messages deserve more tokens
precisely because they consume more buffer, so buffer accounting must be
byte-accurate.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import BufferError_, ConfigurationError
from repro.messages.message import Message

__all__ = ["DropPolicy", "MessageBuffer"]


class DropPolicy(enum.Enum):
    """What to do when an arriving message does not fit."""

    #: Reject the newcomer; residents are never evicted.
    REJECT = "reject"
    #: Evict oldest-received messages until the newcomer fits (ONE default).
    DROP_OLDEST = "drop-oldest"
    #: Evict lowest-priority (ties: oldest) messages first.
    DROP_LOWEST_PRIORITY = "drop-lowest-priority"


class MessageBuffer:
    """A byte-bounded message store keyed by message UUID.

    Args:
        capacity: Buffer size in bytes (> 0).
        policy: Eviction policy when a newcomer does not fit.

    Example:
        >>> from repro.messages import Message
        >>> buffer = MessageBuffer(capacity=10)
        >>> message = Message(0, 0.0, size=5, quality=0.5)
        >>> buffer.add(message, now=0.0)
        []
    """

    def __init__(
        self,
        capacity: int,
        policy: DropPolicy = DropPolicy.DROP_OLDEST,
    ):
        if capacity <= 0:
            raise ConfigurationError(f"buffer capacity must be > 0, got {capacity}")
        self._capacity = int(capacity)
        self._policy = DropPolicy(policy)
        self._messages: Dict[str, Message] = {}
        self._arrival: Dict[str, float] = {}
        # ``_messages``/``_arrival`` are always mutated together, so
        # their (identical) insertion order doubles as arrival order as
        # long as ``add`` timestamps never run backwards.  Simulation
        # clocks are monotone, so this stays ``False`` in practice and
        # :meth:`messages` skips its sort; an out-of-order add (unit
        # tests construct these) flips it permanently.
        self._unordered = False
        self._max_arrival = float("-inf")
        # Residency-change counter keying the size/quality maxima memo
        # (the incentive layer asks for them on every promise).
        self._mutations = 0
        self._maxima_key = -1
        self._maxima: Tuple[int, float] = (0, 0.0)
        self._used = 0
        self._drops = 0
        self._rejections = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        """Capacity in bytes."""
        return self._capacity

    @property
    def used(self) -> int:
        """Bytes currently occupied."""
        return self._used

    @property
    def free(self) -> int:
        """Bytes available."""
        return self._capacity - self._used

    @property
    def drops(self) -> int:
        """Number of resident messages evicted so far."""
        return self._drops

    @property
    def rejections(self) -> int:
        """Number of arriving messages rejected so far."""
        return self._rejections

    @property
    def mutations(self) -> int:
        """Residency-change counter (bumps on add/remove, never else).

        A memo keyed on this token stays valid exactly as long as the
        resident set does.  Note it deliberately does *not* track
        in-place message annotation — callers caching per-message
        derived state must read mutable message fields at use time.
        """
        return self._mutations

    def __len__(self) -> int:
        return len(self._messages)

    def __contains__(self, uuid: str) -> bool:
        return uuid in self._messages

    def __iter__(self) -> Iterator[Message]:
        return iter(list(self._messages.values()))

    def get(self, uuid: str) -> Optional[Message]:
        """The resident message with ``uuid``, or ``None``."""
        return self._messages.get(uuid)

    def messages(self) -> List[Message]:
        """All resident messages in arrival order."""
        if self._unordered:
            # Stable sort: equal timestamps keep insertion order, which
            # is exactly what the fast path below returns — the two
            # branches agree whenever both are applicable.
            ordered = sorted(self._arrival.items(), key=lambda kv: kv[1])
            return [self._messages[uuid] for uuid, _ in ordered]
        return list(self._messages.values())

    def size_quality_maxima(self) -> Tuple[int, float]:
        """``(max size, max quality)`` over residents, ``(0, 0.0)`` when
        empty.  Cached per residency change: message size and quality
        are immutable, so the maxima only move when membership does.
        """
        if self._maxima_key != self._mutations:
            messages = self._messages.values()
            if messages:
                self._maxima = (
                    max(m.size for m in messages),
                    max(m.quality for m in messages),
                )
            else:
                self._maxima = (0, 0.0)
            self._maxima_key = self._mutations
        return self._maxima

    def arrival_time(self, uuid: str) -> float:
        """When the message with ``uuid`` was stored.

        Raises:
            BufferError_: If the message is not resident.
        """
        try:
            return self._arrival[uuid]
        except KeyError:
            raise BufferError_(f"message {uuid!r} is not in the buffer") from None

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, message: Message, now: float) -> List[Message]:
        """Store ``message``, evicting residents if the policy allows.

        Returns:
            The list of evicted messages (empty when nothing was dropped).

        Raises:
            BufferError_: If the message is larger than the whole buffer,
                if it is already resident, or if the policy is REJECT and
                it does not fit (the rejection is also counted).
        """
        if message.uuid in self._messages:
            raise BufferError_(f"message {message.uuid!r} is already buffered")
        if message.size > self._capacity:
            self._rejections += 1
            raise BufferError_(
                f"message {message.uuid!r} ({message.size} B) exceeds buffer "
                f"capacity ({self._capacity} B)"
            )
        evicted: List[Message] = []
        if message.size > self.free:
            if self._policy is DropPolicy.REJECT:
                self._rejections += 1
                raise BufferError_(
                    f"buffer full: {self.free} B free, message needs "
                    f"{message.size} B"
                )
            evicted = self._make_room(message.size)
        self._messages[message.uuid] = message
        arrival = float(now)
        self._arrival[message.uuid] = arrival
        if arrival >= self._max_arrival:
            self._max_arrival = arrival
        else:
            self._unordered = True
        self._used += message.size
        self._mutations += 1
        return evicted

    def remove(self, uuid: str) -> Message:
        """Remove and return the message with ``uuid``.

        Raises:
            BufferError_: If the message is not resident.
        """
        message = self._messages.pop(uuid, None)
        if message is None:
            raise BufferError_(f"message {uuid!r} is not in the buffer")
        del self._arrival[uuid]
        self._used -= message.size
        self._mutations += 1
        return message

    def discard(self, uuid: str) -> Optional[Message]:
        """Remove the message if present; return it or ``None``."""
        if uuid not in self._messages:
            return None
        return self.remove(uuid)

    def expire(self, now: float, ttl: float) -> List[Message]:
        """Drop every message older than ``ttl`` seconds.

        Age is measured from message *creation*, matching DTN TTL
        semantics (a copy does not get younger by being forwarded).
        """
        if ttl <= 0:
            raise ConfigurationError(f"ttl must be > 0, got {ttl!r}")
        expired = [
            m for m in self._messages.values() if now - m.created_at > ttl
        ]
        for message in expired:
            self.remove(message.uuid)
            self._drops += 1
        return expired

    def _make_room(self, needed: int) -> List[Message]:
        """Evict residents according to the policy until ``needed`` fits."""
        victims = self._eviction_order()
        evicted: List[Message] = []
        for uuid in victims:
            if needed <= self.free:
                break
            evicted.append(self.remove(uuid))
            self._drops += 1
        if needed > self.free:  # pragma: no cover - guarded by size check
            raise BufferError_("eviction failed to make room")
        return evicted

    def _eviction_order(self) -> List[str]:
        if self._policy is DropPolicy.DROP_OLDEST:
            ranked: List[Tuple[Tuple[float, str], str]] = [
                ((time, uuid), uuid) for uuid, time in self._arrival.items()
            ]
        elif self._policy is DropPolicy.DROP_LOWEST_PRIORITY:
            # Higher Priority value = less important = evicted first;
            # within a priority class the oldest goes first.
            ranked = [
                ((-int(self._messages[uuid].priority), self._arrival[uuid]), uuid)
                for uuid in self._messages
            ]
        else:  # pragma: no cover - REJECT never evicts
            return []
        ranked.sort(key=lambda item: item[0])
        return [uuid for _, uuid in ranked]
