"""The simulation world: mobility, links, transfers, workload, TTL.

``World`` is the substrate every routing scheme runs on.  It consumes a
contact trace (from :mod:`repro.mobility`), manages link lifecycles and
bandwidth-limited transfers, injects the message workload, enforces TTL,
applies node behaviours (a selfish node's radio is off for most
encounters), charges radio energy, and feeds every observable event to
the :class:`~repro.metrics.collector.MetricsCollector`.

Routers receive hooks (contact start/end, message received/aborted) and
call back into :meth:`send_message`, :meth:`deliver` and
:meth:`accept_relay`; see :class:`repro.routing.base.Router`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import BufferError_, ConfigurationError, SimulationError
from repro.faults import FaultConfig, FaultInjector
from repro.messages.generator import MessageGenerator
from repro.messages.message import Message
from repro.metrics.collector import MetricsCollector
from repro.mobility.trace import ContactTrace
from repro.network.energy import EnergyModel
from repro.network.link import Link, Transfer
from repro.network.node import Node
from repro.sim.engine import Engine
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams
from repro.trace.recorder import NULL_RECORDER, TraceRecorder

__all__ = ["World"]

#: Shared empty result for :meth:`World.open_links` on unknown nodes.
_NO_LINKS: List[Link] = []


class World:
    """Wires nodes, contacts, transfers and a router into one simulation.

    Args:
        engine: The discrete-event engine driving the run.
        nodes: The node population (ids must be unique).
        router: The routing protocol under test.
        link_speed: Transfer speed in bytes/second (Table 5.1: 250 kBps).
        streams: Named RNG streams (behaviour draws, workload, ...).
        metrics: Metrics sink; a fresh collector is created when omitted.
        energy: Radio energy model; a default Friis model when omitted.
        ttl: Optional message time-to-live in seconds.
        ttl_check_interval: How often buffers are swept for expiry.
        nominal_distance: Distance (metres) assumed between connected
            devices for energy purposes.  The contact trace abstracts
            exact geometry away, so the transmission radius is the
            conservative stand-in (documented in DESIGN.md).
        battery_capacity: Optional per-node battery in joules.  When
            set, radio energy drains the battery and a node whose
            battery is empty stops forming contacts — the resource
            scarcity the paper names as the *reason* nodes turn selfish.
            ``None`` (the default, and the paper's evaluation setting)
            models mains-refreshed devices.
        resume_partial_transfers: DTN *reactive fragmentation*: bytes
            moved before a contact broke are remembered, and the next
            transfer of the same message to the same receiver only moves
            the remainder.  Off by default — ONE's (and the paper's)
            baseline behaviour restarts aborted transfers from zero.
        faults: Optional :class:`~repro.faults.FaultConfig`.  When set
            and enabled, a :class:`~repro.faults.FaultInjector` drives
            link-layer loss/corruption, node churn, and battery
            recharge against this world.  ``None`` (or an all-zero
            config) is bit-identical to the pre-fault behaviour: no
            fault RNG streams are created and no events scheduled.
        trace: Optional event-trace recorder (see :mod:`repro.trace`).
            Shared with the engine, links, fault injector, and (via the
            router's ``bind``) the ledger and reputation layers.  The
            default no-op recorder keeps untraced runs bit-identical
            and nearly free.
        population: Optional :class:`~repro.population.PopulationMap`
            for heterogeneous node classes.  When heterogeneous, links
            run at the *slower* endpoint's class link speed over the
            *larger* endpoint's class radius (energy distance), and
            per-class battery capacities/recharge amounts replace the
            scalars.  ``None`` or a single-class map is bit-identical
            to the scalar path.
    """

    def __init__(
        self,
        engine: Engine,
        nodes: Sequence[Node],
        router: "Router",
        *,
        link_speed: float = 250_000.0,
        streams: Optional[RandomStreams] = None,
        metrics: Optional[MetricsCollector] = None,
        energy: Optional[EnergyModel] = None,
        ttl: Optional[float] = None,
        ttl_check_interval: float = 300.0,
        nominal_distance: float = 100.0,
        battery_capacity: Optional[float] = None,
        resume_partial_transfers: bool = False,
        faults: Optional[FaultConfig] = None,
        trace: Optional[TraceRecorder] = None,
        population=None,
    ):
        if link_speed <= 0:
            raise ConfigurationError(f"link_speed must be > 0, got {link_speed!r}")
        if ttl is not None and ttl <= 0:
            raise ConfigurationError(f"ttl must be > 0, got {ttl!r}")
        if battery_capacity is not None and battery_capacity <= 0:
            raise ConfigurationError(
                f"battery_capacity must be > 0, got {battery_capacity!r}"
            )
        self.engine = engine
        # Set before the fault injector is built — it reads world.trace.
        self.trace = trace if trace is not None else NULL_RECORDER
        engine.trace = self.trace
        self._nodes: Dict[int, Node] = {}
        for node in nodes:
            if node.node_id in self._nodes:
                raise ConfigurationError(
                    f"duplicate node id {node.node_id}"
                )
            self._nodes[node.node_id] = node
        self.router = router
        self.link_speed = float(link_speed)
        self.streams = streams if streams is not None else RandomStreams(0)
        self.metrics = metrics if metrics is not None else MetricsCollector()
        self.energy = energy if energy is not None else EnergyModel()
        self.ttl = ttl
        self.nominal_distance = float(nominal_distance)
        self.battery_capacity = battery_capacity
        # Per-node class arrays (node ids are the runner's dense
        # 0..n-1 range whenever a population is threaded through).
        self.population = (
            population
            if population is not None and population.heterogeneous else None
        )
        self._pop_link_speed = (
            self.population.link_speeds if self.population else None
        )
        self._pop_radius = self.population.radii if self.population else None
        pop_caps = (
            self.population.battery_capacities if self.population else None
        )
        if pop_caps is not None:
            self._battery_caps: Dict[int, float] = {
                node_id: float(pop_caps[node_id]) for node_id in self._nodes
            }
        elif battery_capacity is not None:
            self._battery_caps = {
                node_id: battery_capacity for node_id in self._nodes
            }
        else:
            self._battery_caps = {}
        self._battery: Dict[int, float] = dict(self._battery_caps)

        self.resume_partial_transfers = bool(resume_partial_transfers)
        # (receiver, uuid) -> bytes already moved in an aborted attempt.
        self._partial_bytes: Dict[Tuple[int, str], float] = {}
        self._links: Dict[Tuple[int, int], Link] = {}
        self._links_by_node: Dict[int, List[Link]] = {
            node_id: [] for node_id in self._nodes
        }
        self._in_flight: Set[Tuple[int, str]] = set()
        self._generator: Optional[MessageGenerator] = None

        # Fault injection: only instantiated when a fault process is
        # actually enabled, so fault-free runs schedule no extra events
        # and create no extra RNG streams (bit-identical behaviour).
        self.faults: Optional[FaultInjector] = None
        if faults is not None and faults.enabled:
            self.faults = FaultInjector(self, faults)
            if faults.recharging and self._battery_caps:
                self._recharge_process = PeriodicProcess(
                    engine, faults.recharge_interval, self._recharge,
                    start_at=engine.now + faults.recharge_interval,
                    label="battery-recharge",
                )
                self._recharge_process.start()

        router.bind(self)
        if ttl is not None:
            self._ttl_process = PeriodicProcess(
                engine, ttl_check_interval, self._sweep_ttl,
                start_at=engine.now + ttl_check_interval, label="ttl-sweep",
            )
            self._ttl_process.start()

    # ------------------------------------------------------------------
    # RoutingContext interface
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.engine.now

    def schedule_in(self, delay: float, callback, *, label=""):
        """Schedule ``callback`` ``delay`` seconds from now.

        Exposed for routers (retransmission backoff timers); returns
        the engine's cancellable event handle.  ``label`` may be a
        string or a lazy zero-argument callable.
        """
        return self.engine.schedule_in(delay, callback, label=label)

    def node(self, node_id: int) -> Node:
        """The node with ``node_id``.

        Raises:
            ConfigurationError: For unknown ids.
        """
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigurationError(f"unknown node id {node_id}") from None

    def node_ids(self) -> List[int]:
        """All node ids, sorted."""
        return sorted(self._nodes)

    def node_class(self, node_id: int) -> str:
        """Population class name of ``node_id`` (``"default"`` when
        the world runs a homogeneous population)."""
        if self.population is None:
            return "default"
        return self.population.name_of(node_id)

    def nodes(self) -> List[Node]:
        """All nodes, sorted by id."""
        return [self._nodes[i] for i in self.node_ids()]

    def active_links(self, node_id: int) -> List[Link]:
        """Open links ``node_id`` currently participates in."""
        return [l for l in self._links_by_node.get(node_id, []) if not l.closed]

    def open_links(self, node_id: int) -> List[Link]:
        """``node_id``'s open links, zero-copy (router hot-path view).

        Links are removed from the per-node lists *before* they close
        (contact-down, disconnect), so the internal list only ever holds
        open links.  Treat as read-only — callers that might mutate the
        link set while iterating must use :meth:`active_links`, which
        copies (and re-checks ``closed`` as belt and braces).
        """
        links = self._links_by_node.get(node_id)
        return links if links is not None else _NO_LINKS

    def link_between(self, a: int, b: int) -> Optional[Link]:
        """The open link between ``a`` and ``b``, if any."""
        link = self._links.get((a, b) if a < b else (b, a))
        if link is not None and not link.closed:
            return link
        return None

    def can_send(self, link: Link, sender: int, message: Message) -> bool:
        """Whether :meth:`send_message` would actually start a transfer.

        Lets protocols settle payments only for transfers that will
        happen (the incentive scheme pays *before* transferring).
        """
        if link.closed:
            return False
        receiver_id = link.peer_of(sender)
        receiver = self.node(receiver_id)
        if receiver.has_seen(message.uuid):
            return False
        return (receiver_id, message.uuid) not in self._in_flight

    def send_message(
        self, link: Link, sender: int, message: Message
    ) -> Optional[Transfer]:
        """Queue a copy of ``message`` from ``sender`` over ``link``.

        The transfer is suppressed (returns ``None``) when the link is
        closed, the receiver has already seen the message, or an
        identical copy is already in flight to that receiver.
        """
        if link.closed:
            self.metrics.on_transfer_suppressed()
            return None
        receiver_id = link.peer_of(sender)
        receiver = self.node(receiver_id)
        key = (receiver_id, message.uuid)
        if receiver.has_seen(message.uuid) or key in self._in_flight:
            self.metrics.on_transfer_suppressed()
            return None
        copy = message.copy_for_transfer()
        self._in_flight.add(key)
        self.metrics.on_transfer_started(copy)
        duration = None
        if self.resume_partial_transfers:
            done = self._partial_bytes.get(key, 0.0)
            if done > 0.0:
                remaining = max(copy.size - done, 0.0)
                duration = remaining / link.speed
        return link.send(
            sender,
            copy,
            on_complete=lambda transfer: self._transfer_done(transfer, link),
            on_abort=lambda transfer: self._transfer_aborted(transfer, link),
            duration=duration,
        )

    # ------------------------------------------------------------------
    # Delivery / relay bookkeeping (called by routers)
    # ------------------------------------------------------------------
    def deliver(self, receiver: Node, message: Message) -> bool:
        """Record delivery of ``message`` to ``receiver`` as destination.

        Returns:
            ``True`` on first delivery, ``False`` on duplicates.
        """
        first = receiver.accept_delivery(message, self.now)
        if first:
            self.metrics.on_delivered(message, receiver.node_id, self.now)
        if self.trace.enabled:
            record = {
                "type": "delivery", "t": self.now, "uuid": message.uuid,
                "node": receiver.node_id, "first": first,
            }
            if self.population is not None:
                record["node_class"] = self.population.name_of(
                    receiver.node_id
                )
            self.trace.emit(record)
        return first

    def accept_relay(self, receiver: Node, message: Message) -> bool:
        """Buffer ``message`` at ``receiver`` for onward forwarding.

        Returns:
            ``True`` if buffered (evictions are metered), ``False`` if
            the buffer rejected the message.
        """
        if message.uuid in receiver.buffer:
            return True
        try:
            evicted = receiver.buffer.add(message, self.now)
        except BufferError_:
            return False
        receiver.seen.add(message.uuid)
        if evicted:
            self.metrics.on_buffer_evicted(len(evicted))
            for victim in evicted:
                if self.trace.enabled:
                    self.trace.emit({
                        "type": "message-drop", "t": self.now,
                        "uuid": victim.uuid, "node": receiver.node_id,
                    })
                self.router.on_message_dropped(receiver.node_id, victim)
        self.metrics.on_relayed(message, receiver.node_id)
        return True

    # ------------------------------------------------------------------
    # Contacts
    # ------------------------------------------------------------------
    def load_contact_trace(self, trace: ContactTrace) -> None:
        """Schedule every contact up/down event from ``trace``.

        Labels are static strings on purpose: a paper-scale trace
        schedules hundreds of thousands of events whose labels only
        surface in error messages, so per-event f-string formatting is
        pure overhead (the pair is in the callback closure regardless).
        The events go through :meth:`Engine.schedule_many` — one O(n)
        heapify instead of n pushes — with firing order identical to a
        ``schedule_at`` loop.
        """
        contact_up = self._contact_up
        contact_down = self._contact_down
        self.engine.schedule_many(
            (time, (lambda p=pair: contact_up(p)), 1, "contact-up")
            if kind == "up"
            else (time, (lambda p=pair: contact_down(p)), 0, "contact-down")
            for time, kind, pair in trace.events()
        )

    def battery_level(self, node_id: int) -> Optional[float]:
        """Remaining battery in joules (None when batteries are off)."""
        if not self._battery:
            return None
        return self._battery.get(node_id, 0.0)

    def _battery_dead(self, node_id: int) -> bool:
        if not self._battery:
            return False
        return self._battery.get(node_id, 0.0) <= 0.0

    def _drain_battery(self, node_id: int, joules: float) -> None:
        if not self._battery:
            return
        before = self._battery.get(node_id, 0.0)
        self._battery[node_id] = max(0.0, before - joules)
        # Under fault injection a depleted battery is a blackout: the
        # node drops its links on the spot instead of merely refusing
        # new contacts.  (Without the injector the legacy semantics —
        # existing links survive — are preserved.)
        if (
            self.faults is not None
            and before > 0.0
            and self._battery[node_id] <= 0.0
        ):
            self._battery_blackout(node_id)

    def _battery_blackout(self, node_id: int) -> None:
        """React to a battery crossing positive -> empty (faults only)."""
        if self.trace.enabled:
            self.trace.emit({
                "type": "fault-blackout", "t": self.now, "node": node_id,
            })
        self._disconnect_node(node_id, reason="blackout")
        self.metrics.on_blackout()

    def node_available(self, node_id: int) -> bool:
        """Whether ``node_id`` exists and is up (powered, not faulted).

        The fault-state half of :meth:`_behavior_allows_contact` —
        deliberately *without* the behaviour gate, which models radio
        duty-cycling (a probabilistic per-contact coin that consumes
        the behaviour RNG stream) rather than the node being dark.
        Routers consult this before spending bounded resources, e.g. a
        retransmission attempt, on a peer that cannot receive.
        """
        if node_id not in self._nodes:
            return False
        if self._battery_dead(node_id):
            return False
        if self.faults is not None and self.faults.is_down(node_id):
            return False
        return True

    def _behavior_allows_contact(self, node: Node) -> bool:
        if self._battery_dead(node.node_id):
            return False
        if self.faults is not None and self.faults.is_down(node.node_id):
            return False
        behavior = node.behavior
        if behavior is None:
            return True
        enabled = getattr(behavior, "contact_enabled", None)
        if enabled is None:
            return True
        return bool(enabled(self.streams.get("behavior")))

    def _admit_contact(self, pair: Tuple[int, int]) -> bool:
        """The admission half of a contact-up event.

        Runs every check — node existence, duplicate live link, and the
        behaviour gates (which consume the behaviour RNG stream) — in
        exactly the order the historical monolithic handler did, but
        creates nothing.  Split out so batching world cores can admit a
        whole tick's pairs first and open them afterwards.
        """
        a, b = pair
        if a not in self._nodes or b not in self._nodes:
            return False
        if self._links.get(pair) is not None and not self._links[pair].closed:
            return False
        # A selfish node's radio is usually off: the contact only forms
        # when both endpoints participate (Paper I, experiment A).
        if not self._behavior_allows_contact(self._nodes[a]):
            return False
        if not self._behavior_allows_contact(self._nodes[b]):
            return False
        return True

    def _open_contact(self, pair: Tuple[int, int]) -> None:
        """The opening half: create the link, trace it, start routing."""
        a, b = pair
        fault_hook = None
        if self.faults is not None and self.faults.config.lossy:
            fault_hook = self.faults.transfer_verdict
        speed = self.link_speed
        distance = self.nominal_distance
        if self._pop_link_speed is not None:
            # Heterogeneous endpoints: the slower radio bottlenecks the
            # transfer; energy is billed at the larger class radius (the
            # same conservative stand-in as the scalar nominal distance).
            speed = float(
                min(self._pop_link_speed[a], self._pop_link_speed[b])
            )
            distance = float(max(self._pop_radius[a], self._pop_radius[b]))
        link = Link(
            self.engine, a, b,
            speed=speed, distance=distance,
            fault_hook=fault_hook, trace=self.trace,
        )
        self._links[pair] = link
        self._links_by_node[a].append(link)
        self._links_by_node[b].append(link)
        if self.trace.enabled:
            self.trace.emit({
                "type": "contact-up", "t": self.now, "a": a, "b": b,
            })
        self.router.on_contact_start(link)

    def _contact_up(self, pair: Tuple[int, int]) -> None:
        if self._admit_contact(pair):
            self._open_contact(pair)

    def _close_contact(self, pair: Tuple[int, int]) -> Optional[Link]:
        """Pop, unregister, close and trace the pair's live link.

        Returns the closed link (``None`` when there was no live link),
        so callers decide when the router's ``on_contact_end`` runs —
        the batching core defers it for non-interleaved pairs.
        """
        link = self._links.pop(pair, None)
        if link is None or link.closed:
            return None
        a, b = pair
        self._links_by_node[a].remove(link)
        self._links_by_node[b].remove(link)
        link.close()
        if self.trace.enabled:
            self.trace.emit({
                "type": "contact-down", "t": self.now, "a": a, "b": b,
                "reason": "mobility",
            })
        return link

    def _contact_down(self, pair: Tuple[int, int]) -> None:
        link = self._close_contact(pair)
        if link is not None:
            self.router.on_contact_end(link)

    # ------------------------------------------------------------------
    # Faults: churn, blackouts, recharge (driven by the FaultInjector)
    # ------------------------------------------------------------------
    def _disconnect_node(self, node_id: int, reason: str) -> None:
        """Force-close every link ``node_id`` participates in."""
        for link in list(self._links_by_node.get(node_id, [])):
            if link.closed:
                continue
            self._links.pop(link.pair, None)
            self._links_by_node[link.a].remove(link)
            self._links_by_node[link.b].remove(link)
            link.close(reason=reason)
            if self.trace.enabled:
                self.trace.emit({
                    "type": "contact-down", "t": self.now,
                    "a": link.a, "b": link.b, "reason": reason,
                })
            self.router.on_contact_end(link)

    def on_node_crashed(self, node_id: int, *, wipe_state: bool) -> None:
        """A churn crash: drop links and (optionally) volatile state.

        With ``wipe_state`` the buffer contents are lost and the dedup
        ``seen`` memory resets to what survives in durable records
        (originated and delivered messages), so a restarted node can
        re-receive relayed copies — the scenario idempotent settlement
        exists for.  Delivery receipts and reputation books are kept:
        they live in the (conceptually replicated) ledger layer.
        """
        self._disconnect_node(node_id, reason="churn")
        node = self._nodes[node_id]
        if wipe_state:
            for message in node.buffer.messages():
                node.buffer.discard(message.uuid)
                if self.trace.enabled:
                    self.trace.emit({
                        "type": "message-drop", "t": self.now,
                        "uuid": message.uuid, "node": node_id,
                    })
                self.router.on_message_dropped(node_id, message)
            node.seen = set(node.delivered) | set(node.generated)
            # Router-side volatile state (interest tables, memo caches)
            # is part of what a wipe loses; fire after the buffer drain
            # so the router saw every drop first.
            self.router.on_node_wiped(node_id)
        self.metrics.on_node_crash()

    def on_node_restarted(self, node_id: int) -> None:
        """A churn restart: the node resumes forming contacts."""
        self.metrics.on_node_restart()

    def _recharge(self, now: float) -> None:
        if not self._battery or self.faults is None:
            return
        default_amount = self.faults.config.recharge_amount
        amounts = (
            self.population.recharge_amounts(default_amount)
            if self.population is not None else None
        )
        for node_id in self._battery:
            amount = (
                default_amount if amounts is None
                else float(amounts[node_id])
            )
            self._battery[node_id] = min(
                self._battery_caps[node_id], self._battery[node_id] + amount
            )

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def _transfer_done(self, transfer: Transfer, link: Link) -> None:
        self._in_flight.discard((transfer.receiver, transfer.message.uuid))
        self._partial_bytes.pop(
            (transfer.receiver, transfer.message.uuid), None
        )
        self.metrics.on_transfer_completed(transfer.message)
        if self.trace.enabled:
            self.trace.emit({
                "type": "transfer-complete", "t": self.now,
                "uuid": transfer.message.uuid,
                "sender": transfer.sender, "receiver": transfer.receiver,
            })
        # Energy: transmitter pays P_t * t; receiver pays the Friis
        # received power at the nominal contact distance times t.
        tx_energy = self.energy.transmit_energy(transfer.duration)
        rx_energy = self.energy.receive_energy(
            transfer.duration, link.distance
        )
        self.energy.charge(transfer.sender, tx_energy)
        self.energy.charge(transfer.receiver, rx_energy)
        self._drain_battery(transfer.sender, tx_energy)
        self._drain_battery(transfer.receiver, rx_energy)
        self.router.on_message_received(transfer, link)

    def _transfer_aborted(self, transfer: Transfer, link: Link) -> None:
        key = (transfer.receiver, transfer.message.uuid)
        self._in_flight.discard(key)
        faulted = transfer.abort_reason in ("loss", "corruption")
        if (
            self.resume_partial_transfers
            and transfer.started_at is not None
            and not faulted
        ):
            # Reactive fragmentation only credits bytes that actually
            # survived: a lost/corrupt frame leaves nothing to resume.
            elapsed = max(self.now - transfer.started_at, 0.0)
            moved_now = min(elapsed * link.speed, float(transfer.message.size))
            already = self._partial_bytes.get(key, 0.0)
            self._partial_bytes[key] = min(
                already + moved_now, float(transfer.message.size)
            )
        if faulted:
            # The full transfer duration elapsed before the fault was
            # detected, so both radios spent the energy regardless.
            tx_energy = self.energy.transmit_energy(transfer.duration)
            rx_energy = self.energy.receive_energy(
                transfer.duration, link.distance
            )
            self.energy.charge(transfer.sender, tx_energy)
            self.energy.charge(transfer.receiver, rx_energy)
            self._drain_battery(transfer.sender, tx_energy)
            self._drain_battery(transfer.receiver, rx_energy)
            if transfer.abort_reason == "loss":
                self.metrics.on_transfer_lost()
            else:
                self.metrics.on_transfer_corrupted()
        self.metrics.on_transfer_aborted(transfer.message)
        if self.trace.enabled:
            self.trace.emit({
                "type": "transfer-abort", "t": self.now,
                "uuid": transfer.message.uuid,
                "sender": transfer.sender, "receiver": transfer.receiver,
                "reason": transfer.abort_reason or "unknown",
            })
        self.router.on_transfer_aborted(transfer, link)

    # ------------------------------------------------------------------
    # Workload
    # ------------------------------------------------------------------
    def use_generator(self, generator: MessageGenerator) -> None:
        """Attach the workload generator used by :meth:`schedule_workload`."""
        self._generator = generator

    def schedule_workload(self, plan: Iterable[Tuple[float, int]]) -> None:
        """Schedule message creations from ``(time, source)`` pairs."""
        if self._generator is None:
            raise SimulationError(
                "call use_generator() before schedule_workload()"
            )
        create = self._create_scheduled_message
        self.engine.schedule_many(
            (time, (lambda s=source: create(s)), 2, "create-message")
            for time, source in plan
        )

    def _create_scheduled_message(self, source: int) -> None:
        if self.faults is not None and self.faults.is_down(source):
            # A crashed device originates nothing; the message simply
            # never exists (it is not counted against MDR).
            self.metrics.on_creation_skipped_offline()
            return
        node = self.node(source)
        low_quality = False
        behavior = node.behavior
        if behavior is not None:
            creates_low = getattr(behavior, "creates_low_quality", None)
            if creates_low is not None:
                low_quality = bool(creates_low(self.streams.get("behavior")))
        message = self._generator.create_message(
            source, self.now, low_quality=low_quality
        )
        self.inject_message(message)

    def _intended_destinations(self, message: Message) -> Set[int]:
        """Node ids with a direct interest in ``message`` (source excluded).

        The SoA core overrides this with a vectorised interest-matrix
        lookup; both implementations must return the same set.
        """
        return {
            other.node_id
            for other in self._nodes.values()
            if other.node_id != message.source
            and other.is_interested_in(message)
        }

    def inject_message(self, message: Message) -> None:
        """Originate ``message`` at its source and register metrics."""
        node = self.node(message.source)
        intended = self._intended_destinations(message)
        if self.trace.enabled:
            self.trace.emit({
                "type": "message-created", "t": self.now,
                "uuid": message.uuid, "source": message.source,
                "size": message.size, "priority": int(message.priority),
                "quality": float(message.quality),
                "intended": len(intended),
            })
        try:
            node.originate(message, self.now)
        except BufferError_:
            # Source buffer full even after creation: the message dies at
            # birth but still counts against MDR, as in ONE.
            self.metrics.on_message_created(message, intended)
            return
        self.metrics.on_message_created(message, intended)
        self.router.on_message_created(message.source, message)

    # ------------------------------------------------------------------
    # TTL
    # ------------------------------------------------------------------
    def _sweep_ttl(self, now: float) -> None:
        if self.ttl is None:
            return
        for node in self._nodes.values():
            expired = node.buffer.expire(now, self.ttl)
            if expired:
                self.metrics.on_expired(len(expired))
                for message in expired:
                    if self.trace.enabled:
                        self.trace.emit({
                            "type": "message-expiry", "t": now,
                            "uuid": message.uuid, "node": node.node_id,
                        })
                    self.router.on_message_expired(node.node_id, message)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> MetricsCollector:
        """Run the simulation for ``duration`` seconds and return metrics."""
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration!r}")
        self.engine.run_until(self.engine.now + duration)
        return self.metrics


# Imported late to avoid a circular reference in type checking; Router
# only needs World at runtime through the RoutingContext protocol.
from repro.routing.base import Router  # noqa: E402  (documentation import)
