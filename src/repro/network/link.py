"""Contact links with bandwidth-limited transfers.

While two nodes are in range they share a link with a finite transfer
speed (Table 5.1: 250 kBps).  A transfer of a 1 MB message therefore
occupies the link for four seconds; transfers queued behind it wait, and
everything still in flight when the contact ends is aborted — the
standard ONE-simulator behaviour that makes short contacts deliver fewer
messages.

Each link direction is independently busy (full duplex across
directions, serial within a direction).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from collections import deque

from repro.errors import ConfigurationError, SimulationError
from repro.messages.message import Message
from repro.sim.engine import Engine
from repro.sim.events import EventHandle
from repro.trace.recorder import NULL_RECORDER, TraceRecorder

__all__ = ["Transfer", "Link"]


@dataclass
class Transfer:
    """One in-flight or queued message transfer.

    Attributes:
        message: The message copy being moved.
        sender: Sending node id.
        receiver: Receiving node id.
        duration: Transfer time in seconds (size / link speed).
        on_complete: Called with the transfer when it finishes.
        on_abort: Called with the transfer if the link closes first.
        started_at: Simulation time the transfer began (None if queued).
        completed: Whether the transfer finished successfully.
        aborted: Whether the transfer was cut off by link closure.
    """

    message: Message
    sender: int
    receiver: int
    duration: float
    on_complete: Callable[["Transfer"], None]
    on_abort: Optional[Callable[["Transfer"], None]] = None
    started_at: Optional[float] = None
    completed: bool = False
    aborted: bool = False
    #: Why the transfer aborted: ``"mobility"`` (the contact broke),
    #: ``"loss"`` / ``"corruption"`` (link-layer fault), ``"churn"``
    #: (an endpoint crashed) or ``"blackout"`` (battery depleted).
    abort_reason: Optional[str] = None
    _handle: Optional[EventHandle] = field(default=None, repr=False)


class Link:
    """A bidirectional contact link between two nodes.

    Args:
        engine: The event engine used to schedule completions.
        a: First node id.
        b: Second node id.
        speed: Transfer speed in bytes per second (> 0).
        distance: Physical distance between the endpoints in metres
            (used by the energy model via the protocol layer).
        fault_hook: Optional per-transfer fault oracle.  Called when a
            transfer is about to complete; returning a reason string
            (``"loss"``, ``"corruption"``) aborts the transfer with
            that :attr:`Transfer.abort_reason` instead of completing
            it.  ``None`` (the default) keeps the ideal-link behaviour.
        trace: Optional event-trace recorder (``transfer-start``
            records); defaults to the no-op recorder.
    """

    def __init__(
        self,
        engine: Engine,
        a: int,
        b: int,
        *,
        speed: float,
        distance: float = 0.0,
        fault_hook: Optional[Callable[[Transfer], Optional[str]]] = None,
        trace: Optional[TraceRecorder] = None,
    ):
        if a == b:
            raise ConfigurationError(f"link endpoints must differ, got {a}")
        if speed <= 0:
            raise ConfigurationError(f"link speed must be > 0, got {speed!r}")
        if distance < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance!r}")
        self._engine = engine
        self.a, self.b = (a, b) if a < b else (b, a)
        self.speed = float(speed)
        self.distance = float(distance)
        self.opened_at = engine.now
        self.closed = False
        self._fault_hook = fault_hook
        self.trace = trace if trace is not None else NULL_RECORDER
        # Per-direction state: key is the sending node id.
        self._active: Dict[int, Optional[Transfer]] = {self.a: None, self.b: None}
        self._queues: Dict[int, Deque[Transfer]] = {
            self.a: deque(), self.b: deque()
        }
        self._completed: List[Transfer] = []

    @property
    def pair(self) -> Tuple[int, int]:
        """Canonical ``(a, b)`` endpoint pair."""
        return (self.a, self.b)

    def peer_of(self, node: int) -> int:
        """The other endpoint of the link."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise ConfigurationError(f"node {node} is not on link {self.pair}")

    def transfer_time(self, message: Message) -> float:
        """Seconds needed to move ``message`` over this link."""
        return message.size / self.speed

    @property
    def completed_transfers(self) -> Tuple[Transfer, ...]:
        """Transfers that finished successfully on this link."""
        return tuple(self._completed)

    def busy(self, sender: int) -> bool:
        """Whether ``sender``'s direction currently has a transfer going."""
        self.peer_of(sender)  # validate membership
        return self._active[sender] is not None

    def queued(self, sender: int) -> int:
        """Number of transfers waiting behind the active one."""
        self.peer_of(sender)
        return len(self._queues[sender])

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def send(
        self,
        sender: int,
        message: Message,
        on_complete: Callable[[Transfer], None],
        on_abort: Optional[Callable[[Transfer], None]] = None,
        *,
        duration: Optional[float] = None,
    ) -> Transfer:
        """Enqueue a message transfer from ``sender`` to its peer.

        The transfer starts immediately if the direction is idle,
        otherwise it waits behind earlier transfers.  If the link closes
        before completion, ``on_abort`` fires instead of ``on_complete``.

        Args:
            duration: Optional explicit transfer time; defaults to
                ``size / speed``.  Used by reactive fragmentation, where
                a resumed transfer only moves the remaining bytes.

        Raises:
            SimulationError: If the link is already closed.
        """
        if self.closed:
            raise SimulationError(
                f"cannot send on closed link {self.pair}"
            )
        if duration is not None and duration < 0:
            raise ConfigurationError(
                f"duration must be >= 0, got {duration!r}"
            )
        receiver = self.peer_of(sender)
        transfer = Transfer(
            message=message,
            sender=sender,
            receiver=receiver,
            duration=(
                duration if duration is not None
                else self.transfer_time(message)
            ),
            on_complete=on_complete,
            on_abort=on_abort,
        )
        if self._active[sender] is None:
            self._start(transfer)
        else:
            self._queues[sender].append(transfer)
        return transfer

    def _start(self, transfer: Transfer) -> None:
        transfer.started_at = self._engine.now
        self._active[transfer.sender] = transfer
        if self.trace.enabled:
            self.trace.emit({
                "type": "transfer-start", "t": self._engine.now,
                "uuid": transfer.message.uuid,
                "sender": transfer.sender,
                "receiver": transfer.receiver,
                "duration": transfer.duration,
            })
        # Lazy label: rendered only if the handle is ever inspected.
        transfer._handle = self._engine.schedule_in(
            transfer.duration,
            lambda: self._finish(transfer),
            label=lambda: (
                f"transfer {transfer.message.uuid} "
                f"{transfer.sender}->{transfer.receiver}"
            ),
        )

    def _finish(self, transfer: Transfer) -> None:
        if self.closed or transfer.aborted:
            return
        if self._fault_hook is not None:
            verdict = self._fault_hook(transfer)
            if verdict is not None:
                # The bytes were sent but the frame was lost/mangled:
                # abort with the fault reason, on a link that stays
                # open (so a retransmission can go out immediately).
                transfer.aborted = True
                transfer.abort_reason = verdict
                self._active[transfer.sender] = None
                if transfer.on_abort is not None:
                    transfer.on_abort(transfer)
                self._start_next(transfer.sender)
                return
        transfer.completed = True
        self._active[transfer.sender] = None
        self._completed.append(transfer)
        transfer.on_complete(transfer)
        self._start_next(transfer.sender)

    def _start_next(self, sender: int) -> None:
        """Dequeue the next transfer unless a callback already did.

        Completion/abort callbacks may close the link or call
        :meth:`send` re-entrantly (retransmission); both are guarded.
        """
        if self.closed:
            return
        queue = self._queues[sender]
        if queue and self._active[sender] is None:
            self._start(queue.popleft())

    def close(self, reason: str = "mobility") -> List[Transfer]:
        """Tear the link down, aborting in-flight and queued transfers.

        All per-direction state is cleared *before* any ``on_abort``
        callback fires, so a callback that re-entrantly calls
        :meth:`close` is a no-op and one that calls :meth:`send` fails
        cleanly (the link is already closed) without corrupting queues
        or firing callbacks twice.

        Args:
            reason: Recorded as each casualty's
                :attr:`Transfer.abort_reason` (default ``"mobility"``).

        Returns:
            The transfers that were cut off (in-flight first).
        """
        if self.closed:
            return []
        self.closed = True
        casualties: List[Transfer] = []
        for sender in (self.a, self.b):
            active = self._active[sender]
            if active is not None:
                active.aborted = True
                active.abort_reason = reason
                if active._handle is not None:
                    active._handle.cancel()
                casualties.append(active)
                self._active[sender] = None
            while self._queues[sender]:
                waiting = self._queues[sender].popleft()
                waiting.aborted = True
                waiting.abort_reason = reason
                casualties.append(waiting)
        for transfer in casualties:
            if transfer.on_abort is not None:
                transfer.on_abort(transfer)
        return casualties

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "closed" if self.closed else "open"
        return f"Link({self.a}<->{self.b}, {self.speed:.0f} B/s, {state})"
