"""Radio energy model based on the Friis transmission equation.

The paper's hardware incentive factor compensates nodes for the energy
spent transmitting and receiving.  It computes the received power with
the Friis free-space equation::

    P_r = P_t / L_v,      L_v = (4 * pi * R / lambda)^2

where ``R`` is the distance between the devices and ``lambda`` the
carrier wavelength.  (The paper's symbol table calls lambda "bandwidth";
in the Friis equation it is the wavelength — we derive it from a carrier
frequency, default 2.4 GHz, the Bluetooth/Wi-Fi band used by the demo
app.)

Energy is power times time: a transmitter spends ``P_t * t`` over a
transfer of duration ``t``; per the paper, the receiver side is charged
the (distance-dependent) received power ``P_r * t``.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.errors import ConfigurationError

__all__ = ["EnergyModel", "SPEED_OF_LIGHT"]

#: Speed of light in vacuum, m/s.
SPEED_OF_LIGHT = 299_792_458.0


class EnergyModel:
    """Friis-equation energy accounting.

    Args:
        transmit_power: Radio transmit power in watts (> 0).
        frequency_hz: Carrier frequency in Hz (> 0); default 2.4 GHz.
        reference_distance: Minimum distance used in the path-loss
            computation, metres.  Friis diverges as R -> 0; distances
            below this are clamped (near-field cutoff).

    Example:
        >>> model = EnergyModel(transmit_power=0.1)
        >>> model.path_loss(100.0) > 1.0
        True
    """

    def __init__(
        self,
        transmit_power: float = 0.1,
        *,
        frequency_hz: float = 2.4e9,
        reference_distance: float = 1.0,
    ):
        if transmit_power <= 0:
            raise ConfigurationError(
                f"transmit_power must be > 0, got {transmit_power!r}"
            )
        if frequency_hz <= 0:
            raise ConfigurationError(
                f"frequency_hz must be > 0, got {frequency_hz!r}"
            )
        if reference_distance <= 0:
            raise ConfigurationError(
                f"reference_distance must be > 0, got {reference_distance!r}"
            )
        self._p_t = float(transmit_power)
        self._wavelength = SPEED_OF_LIGHT / float(frequency_hz)
        self._ref = float(reference_distance)
        self._consumed: Dict[int, float] = {}
        #: Optional :class:`~repro.network.world_state.WorldState`
        #: backing the consumption counters (SoA core); ``None`` keeps
        #: the per-node dict (object core).
        self._state: Optional[Any] = None

    @property
    def transmit_power(self) -> float:
        """Transmit power P_t in watts."""
        return self._p_t

    @property
    def wavelength(self) -> float:
        """Carrier wavelength lambda in metres."""
        return self._wavelength

    # ------------------------------------------------------------------
    # Friis equation
    # ------------------------------------------------------------------
    def path_loss(self, distance: float) -> float:
        """Free-space path loss ``L_v = (4*pi*R/lambda)^2`` (linear)."""
        if distance < 0:
            raise ConfigurationError(f"distance must be >= 0, got {distance!r}")
        effective = max(distance, self._ref)
        factor = 4.0 * math.pi * effective / self._wavelength
        return factor * factor

    def received_power(self, distance: float) -> float:
        """Received power ``P_r = P_t / L_v`` in watts."""
        return self._p_t / self.path_loss(distance)

    # ------------------------------------------------------------------
    # Energy accounting
    # ------------------------------------------------------------------
    def transmit_energy(self, duration: float) -> float:
        """Energy (joules) spent transmitting for ``duration`` seconds."""
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration!r}")
        return self._p_t * duration

    def receive_energy(self, duration: float, distance: float) -> float:
        """Energy (joules) charged to a receiver at ``distance`` metres."""
        if duration < 0:
            raise ConfigurationError(f"duration must be >= 0, got {duration!r}")
        return self.received_power(distance) * duration

    def bind_state(self, state: Any) -> None:
        """Back the consumption counters with ``WorldState.energy``.

        Any joules already accumulated in the per-node dict are migrated
        into the array and the dict is retired.  Per-node additions hit
        the same float sequence either way (one scalar ``+=`` per
        charge), so rebinding never perturbs the energy trajectory —
        the accumulation-order contract the differential tests pin.
        """
        for node, joules in self._consumed.items():
            state.energy[state.slot_of(node)] += joules
        self._consumed.clear()
        self._state = state

    def charge(self, node: int, joules: float) -> None:
        """Accumulate ``joules`` against ``node``'s consumption counter."""
        if joules < 0:
            raise ConfigurationError(f"joules must be >= 0, got {joules!r}")
        if self._state is not None:
            self._state.energy[self._state.slot_of(node)] += joules
            return
        self._consumed[node] = self._consumed.get(node, 0.0) + joules

    def consumed(self, node: int) -> float:
        """Total joules charged to ``node`` so far."""
        if self._state is not None:
            try:
                slot = self._state.slot_of(node)
            except ConfigurationError:
                return 0.0
            return float(self._state.energy[slot])
        return self._consumed.get(node, 0.0)

    def total_consumed(self) -> float:
        """Total joules charged across all nodes."""
        if self._state is not None:
            return float(self._state.energy.sum())
        return sum(self._consumed.values())
