"""Statistical analysis of simulation results.

The paper reports bare averages of five runs; a credible open-source
release should also quantify uncertainty and fairness.  This module adds:

* seed-series summaries with Student-t confidence intervals,
* Welch's t-test for scheme comparisons ("is the MDR gap real?"),
* delivery-latency percentiles and an MDR-vs-time curve from the raw
  delivery records,
* the Gini coefficient of final token balances — how unequal the credit
  economy ends up (selfish populations drive it up).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from repro.errors import ConfigurationError
from repro.metrics.collector import MetricsCollector

__all__ = [
    "SeriesSummary",
    "merge_summaries",
    "summarize",
    "welch_t_test",
    "delivery_latencies",
    "latency_percentiles",
    "mdr_over_time",
    "gini",
]


def merge_summaries(
    summaries: Sequence[Dict[str, float]]
) -> Dict[str, float]:
    """Mean of per-run summary dicts (the paper's five-run averages).

    Each key is summed where present and divided by the total number of
    runs, so keys that only some runs report (``token_supply`` exists
    only for incentive schemes) are treated as zero elsewhere.  Both the
    serial and the multiprocess experiment runners aggregate through
    this single function, in seed order, which keeps their results
    bit-identical (floating-point addition is order-sensitive).

    Raises:
        ConfigurationError: For an empty sequence of summaries.
    """
    if not summaries:
        raise ConfigurationError("cannot merge an empty list of summaries")
    totals: Dict[str, float] = {}
    for summary in summaries:
        for key, value in summary.items():
            totals[key] = totals.get(key, 0.0) + value
    count = len(summaries)
    return {key: value / count for key, value in totals.items()}


@dataclass(frozen=True)
class SeriesSummary:
    """Mean and confidence interval of a repeated measurement.

    Attributes:
        mean: Sample mean.
        std: Sample standard deviation (ddof=1; 0 for a single sample).
        count: Number of samples.
        ci_low: Lower bound of the confidence interval.
        ci_high: Upper bound.
        confidence: The confidence level used.
    """

    mean: float
    std: float
    count: int
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0


def summarize(
    values: Sequence[float], *, confidence: float = 0.95
) -> SeriesSummary:
    """Mean with a Student-t confidence interval.

    Raises:
        ConfigurationError: For an empty sample or a bad confidence.
    """
    if not values:
        raise ConfigurationError("cannot summarise an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence!r}"
        )
    data = np.asarray(values, dtype=float)
    mean = float(data.mean())
    count = int(data.size)
    if count == 1:
        return SeriesSummary(mean, 0.0, 1, mean, mean, confidence)
    std = float(data.std(ddof=1))
    if std == 0.0:
        return SeriesSummary(mean, 0.0, count, mean, mean, confidence)
    sem = std / math.sqrt(count)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=count - 1))
    half = t_crit * sem
    return SeriesSummary(
        mean, std, count, mean - half, mean + half, confidence
    )


def welch_t_test(
    a: Sequence[float], b: Sequence[float]
) -> Tuple[float, float]:
    """Welch's unequal-variance t-test between two seed series.

    Returns:
        ``(t_statistic, p_value)``; a small p-value means the means
        differ beyond seed noise.
    """
    if len(a) < 2 or len(b) < 2:
        raise ConfigurationError(
            "Welch's t-test needs at least two samples per side"
        )
    result = scipy_stats.ttest_ind(
        np.asarray(a, dtype=float),
        np.asarray(b, dtype=float),
        equal_var=False,
    )
    return float(result.statistic), float(result.pvalue)


def delivery_latencies(metrics: MetricsCollector) -> List[float]:
    """Creation-to-delivery delays for all intended deliveries."""
    latencies: List[float] = []
    for record in metrics.messages:
        for delivered_at in record.delivered_to.values():
            latencies.append(delivered_at - record.created_at)
    return latencies


def latency_percentiles(
    metrics: MetricsCollector,
    percentiles: Sequence[float] = (50.0, 90.0, 99.0),
) -> Dict[float, float]:
    """Latency percentiles in seconds (empty metrics -> all zero)."""
    latencies = delivery_latencies(metrics)
    if not latencies:
        return {p: 0.0 for p in percentiles}
    data = np.asarray(latencies, dtype=float)
    return {
        p: float(np.percentile(data, p)) for p in percentiles
    }


def mdr_over_time(
    metrics: MetricsCollector, *, horizon: float, points: int = 20
) -> List[Tuple[float, float]]:
    """Cumulative MDR as a function of time.

    Args:
        metrics: A completed run's collector.
        horizon: The run duration in seconds.
        points: Number of evenly spaced samples.

    Returns:
        ``(time, cumulative MDR)`` pairs; the final point equals the
        run's overall MDR.
    """
    if horizon <= 0:
        raise ConfigurationError(f"horizon must be > 0, got {horizon!r}")
    if points < 1:
        raise ConfigurationError(f"points must be >= 1, got {points!r}")
    denominator = metrics.intended_pairs()
    times = sorted(
        delivered_at
        for record in metrics.messages
        for delivered_at in record.delivered_to.values()
    )
    curve: List[Tuple[float, float]] = []
    index = 0
    for step in range(1, points + 1):
        cutoff = horizon * step / points
        while index < len(times) and times[index] <= cutoff:
            index += 1
        ratio = index / denominator if denominator else 0.0
        curve.append((cutoff, ratio))
    return curve


def gini(values: Iterable[float]) -> float:
    """The Gini coefficient of a non-negative distribution.

    0 means perfect equality (everyone holds the same balance); values
    toward 1 mean a few nodes hold everything.  Empty or all-zero inputs
    return 0.

    Raises:
        ConfigurationError: If any value is negative.
    """
    data = np.asarray(sorted(values), dtype=float)
    if data.size == 0:
        return 0.0
    if (data < 0).any():
        raise ConfigurationError("gini requires non-negative values")
    total = data.sum()
    if total == 0.0:
        return 0.0
    n = data.size
    # Standard formula over sorted data:
    # G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n, i starting at 1.
    indexed = np.arange(1, n + 1)
    return float((2.0 * (indexed * data).sum()) / (n * total) - (n + 1) / n)
