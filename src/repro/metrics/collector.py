"""Metric collection for simulation runs.

The collector records the raw events every experiment in the paper
aggregates from:

* **MDR** — delivered ``(message, destination)`` pairs over intended
  pairs, where the intended destinations of a message are the nodes
  holding a direct interest in its tags *at creation time*.  Deliveries
  to destinations that only exist because relays enriched the message
  are counted separately (``bonus_deliveries``) so enrichment cannot
  inflate MDR above one.
* **Traffic** — completed transfers and bytes moved (Fig. 5.2 compares
  this between schemes).
* **Priority-segmented MDR** (Fig. 5.6), token payment volume
  (Fig. 5.3), and sampled time series such as the average rating of
  malicious nodes (Fig. 5.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.messages.message import Message, Priority

__all__ = ["DeliveryRecord", "MetricsCollector"]


@dataclass
class DeliveryRecord:
    """Static facts about one created message plus its delivery state."""

    uuid: str
    source: int
    created_at: float
    priority: Priority
    quality: float
    size: int
    intended: FrozenSet[int]
    delivered_to: Dict[int, float] = field(default_factory=dict)
    bonus_delivered_to: Dict[int, float] = field(default_factory=dict)

    @property
    def intended_count(self) -> int:
        """Number of destinations counted in the MDR denominator."""
        return len(self.intended)

    @property
    def delivered_count(self) -> int:
        """Deliveries to originally intended destinations."""
        return len(self.delivered_to)


class MetricsCollector:
    """Accumulates events during a run and computes summary metrics."""

    def __init__(self) -> None:
        self._messages: Dict[str, DeliveryRecord] = {}
        self.transfers_started = 0
        self.transfers_completed = 0
        self.transfers_aborted = 0
        self.transfers_suppressed = 0
        self.bytes_transferred = 0
        self.relay_receptions = 0
        self.buffer_evictions = 0
        self.expirations = 0
        self.token_payments = 0
        self.tokens_moved = 0.0
        self.blocked_no_tokens = 0
        self.enrichment_tags = 0
        self.enrichment_relevant = 0
        # Fault-injection counters (repro.faults); all stay 0 in
        # fault-free runs and are reported via :meth:`fault_summary`
        # (kept out of :meth:`summary` so fault-free outputs remain
        # bit-identical to pre-fault-subsystem golden results).
        self.transfers_lost = 0
        self.transfers_corrupted = 0
        self.node_crashes = 0
        self.node_restarts = 0
        self.blackouts = 0
        self.creations_skipped_offline = 0
        self.retransmissions = 0
        self.escrow_reclaimed = 0.0
        #: ``(time, {node_id: rating})`` samples (Fig. 5.4 style series).
        self.rating_samples: List[Tuple[float, Dict[int, float]]] = []

    # ------------------------------------------------------------------
    # Event hooks (called by the world / protocol)
    # ------------------------------------------------------------------
    def on_message_created(
        self, message: Message, intended: Set[int]
    ) -> None:
        """Register a freshly originated message and its destinations."""
        self._messages[message.uuid] = DeliveryRecord(
            uuid=message.uuid,
            source=message.source,
            created_at=message.created_at,
            priority=message.priority,
            quality=message.quality,
            size=message.size,
            intended=frozenset(intended),
        )

    def on_transfer_started(self, message: Message) -> None:
        self.transfers_started += 1

    def on_transfer_completed(self, message: Message) -> None:
        self.transfers_completed += 1
        self.bytes_transferred += message.size

    def on_transfer_aborted(self, message: Message) -> None:
        self.transfers_aborted += 1

    def on_transfer_suppressed(self) -> None:
        self.transfers_suppressed += 1

    def on_delivered(self, message: Message, destination: int, now: float) -> None:
        """Record a (first) delivery of ``message`` to ``destination``."""
        record = self._messages.get(message.uuid)
        if record is None:
            return
        if destination in record.intended:
            record.delivered_to.setdefault(destination, now)
        else:
            record.bonus_delivered_to.setdefault(destination, now)

    def on_relayed(self, message: Message, relay: int) -> None:
        self.relay_receptions += 1

    def on_buffer_evicted(self, count: int = 1) -> None:
        self.buffer_evictions += count

    def on_expired(self, count: int = 1) -> None:
        self.expirations += count

    def on_payment(self, amount: float) -> None:
        self.token_payments += 1
        self.tokens_moved += amount

    def on_blocked_no_tokens(self) -> None:
        self.blocked_no_tokens += 1

    def on_enrichment(self, relevant: bool) -> None:
        self.enrichment_tags += 1
        if relevant:
            self.enrichment_relevant += 1

    # ------------------------------------------------------------------
    # Fault-injection hooks (no-ops in fault-free runs)
    # ------------------------------------------------------------------
    def on_transfer_lost(self) -> None:
        self.transfers_lost += 1

    def on_transfer_corrupted(self) -> None:
        self.transfers_corrupted += 1

    def on_node_crash(self) -> None:
        self.node_crashes += 1

    def on_node_restart(self) -> None:
        self.node_restarts += 1

    def on_blackout(self) -> None:
        self.blackouts += 1

    def on_creation_skipped_offline(self) -> None:
        self.creations_skipped_offline += 1

    def on_retransmission(self) -> None:
        self.retransmissions += 1

    def on_escrow_reclaimed(self, amount: float) -> None:
        self.escrow_reclaimed += amount

    def sample_ratings(self, now: float, ratings: Dict[int, float]) -> None:
        """Store a time sample of per-node ratings (Fig. 5.4 series)."""
        self.rating_samples.append((now, dict(ratings)))

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    @property
    def messages(self) -> Tuple[DeliveryRecord, ...]:
        """All registered message records."""
        return tuple(self._messages.values())

    def record_for(self, uuid: str) -> Optional[DeliveryRecord]:
        """The record for one message, or None."""
        return self._messages.get(uuid)

    def intended_pairs(self) -> int:
        """MDR denominator: sum of intended destination counts."""
        return sum(r.intended_count for r in self._messages.values())

    def delivered_pairs(self) -> int:
        """MDR numerator: deliveries to intended destinations."""
        return sum(r.delivered_count for r in self._messages.values())

    def bonus_deliveries(self) -> int:
        """Deliveries to enrichment-created destinations."""
        return sum(len(r.bonus_delivered_to) for r in self._messages.values())

    def message_delivery_ratio(self) -> float:
        """The paper's MDR (0.0 when no pairs were intended)."""
        denominator = self.intended_pairs()
        if denominator == 0:
            return 0.0
        return self.delivered_pairs() / denominator

    def mdr_by_priority(self) -> Dict[Priority, float]:
        """MDR split by source-set priority class (Fig. 5.6)."""
        delivered: Dict[Priority, int] = {p: 0 for p in Priority}
        intended: Dict[Priority, int] = {p: 0 for p in Priority}
        for record in self._messages.values():
            intended[record.priority] += record.intended_count
            delivered[record.priority] += record.delivered_count
        return {
            priority: (delivered[priority] / intended[priority]
                       if intended[priority] else 0.0)
            for priority in Priority
        }

    def delivered_quality_mean(self) -> float:
        """Mean quality of messages with at least one delivery."""
        qualities = [
            r.quality for r in self._messages.values() if r.delivered_count
        ]
        if not qualities:
            return 0.0
        return sum(qualities) / len(qualities)

    def average_delay(self) -> float:
        """Mean creation-to-delivery delay over delivered pairs."""
        total = 0.0
        count = 0
        for record in self._messages.values():
            for delivered_at in record.delivered_to.values():
                total += delivered_at - record.created_at
                count += 1
        return total / count if count else 0.0

    def summary(self) -> Dict[str, float]:
        """A flat dict of the headline metrics."""
        return {
            "messages_created": float(len(self._messages)),
            "intended_pairs": float(self.intended_pairs()),
            "delivered_pairs": float(self.delivered_pairs()),
            "mdr": self.message_delivery_ratio(),
            "bonus_deliveries": float(self.bonus_deliveries()),
            "transfers_completed": float(self.transfers_completed),
            "transfers_aborted": float(self.transfers_aborted),
            "bytes_transferred": float(self.bytes_transferred),
            "relay_receptions": float(self.relay_receptions),
            "buffer_evictions": float(self.buffer_evictions),
            "expirations": float(self.expirations),
            "token_payments": float(self.token_payments),
            "tokens_moved": self.tokens_moved,
            "blocked_no_tokens": float(self.blocked_no_tokens),
            "enrichment_tags": float(self.enrichment_tags),
            "enrichment_relevant": float(self.enrichment_relevant),
            "average_delay": self.average_delay(),
        }

    def class_breakdown(
        self, node_classes: Mapping[int, str]
    ) -> Dict[str, Dict[str, float]]:
        """Per-population-class delivery metrics (heterogeneous runs).

        Each message/destination pair is attributed twice: to the
        *source's* class under ``created``/``sourced_*`` (how much a
        class originates and how well its traffic fares) and to the
        *destination's* class under ``intended``/``delivered``/``mdr``
        (how well members of a class are served).  Kept out of
        :meth:`summary` so homogeneous outputs stay bit-identical.

        Args:
            node_classes: node id -> class name for every node.
        """
        counters = (
            "nodes", "created", "sourced_intended", "sourced_delivered",
            "intended", "delivered", "bonus_deliveries", "delay_total",
        )
        rows: Dict[str, Dict[str, float]] = {
            name: dict.fromkeys(counters, 0.0)
            for name in sorted(set(node_classes.values()))
        }

        def row_of(node_id: int) -> Dict[str, float]:
            name = node_classes.get(node_id, "default")
            row = rows.get(name)
            if row is None:
                row = rows[name] = dict.fromkeys(counters, 0.0)
            return row

        for cls in node_classes.values():
            rows[cls]["nodes"] += 1.0
        for record in self._messages.values():
            source_row = row_of(record.source)
            source_row["created"] += 1.0
            source_row["sourced_intended"] += float(record.intended_count)
            source_row["sourced_delivered"] += float(record.delivered_count)
            for destination in record.intended:
                row_of(destination)["intended"] += 1.0
            for destination, delivered_at in record.delivered_to.items():
                row = row_of(destination)
                row["delivered"] += 1.0
                row["delay_total"] += delivered_at - record.created_at
            for destination in record.bonus_delivered_to:
                row_of(destination)["bonus_deliveries"] += 1.0
        for row in rows.values():
            row["mdr"] = (
                row["delivered"] / row["intended"] if row["intended"] else 0.0
            )
            row["average_delay"] = (
                row.pop("delay_total") / row["delivered"]
                if row["delivered"] else 0.0
            )
        return rows

    def fault_summary(self) -> Dict[str, float]:
        """Fault-injection counters, separate from :meth:`summary`.

        Kept out of the headline summary so fault-free runs stay
        bit-identical to the committed golden results.
        """
        return {
            "transfers_lost": float(self.transfers_lost),
            "transfers_corrupted": float(self.transfers_corrupted),
            "node_crashes": float(self.node_crashes),
            "node_restarts": float(self.node_restarts),
            "blackouts": float(self.blackouts),
            "creations_skipped_offline": float(
                self.creations_skipped_offline
            ),
            "retransmissions": float(self.retransmissions),
            "escrow_reclaimed": self.escrow_reclaimed,
        }
