"""Metrics collection and report formatting."""

from repro.metrics.analysis import (
    SeriesSummary,
    delivery_latencies,
    gini,
    latency_percentiles,
    mdr_over_time,
    merge_summaries,
    summarize,
    welch_t_test,
)
from repro.metrics.collector import DeliveryRecord, MetricsCollector
from repro.metrics.reports import format_series, format_table

__all__ = [
    "MetricsCollector",
    "DeliveryRecord",
    "format_table",
    "format_series",
    "SeriesSummary",
    "merge_summaries",
    "summarize",
    "welch_t_test",
    "delivery_latencies",
    "latency_percentiles",
    "mdr_over_time",
    "gini",
]
