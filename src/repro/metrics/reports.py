"""Plain-text report formatting for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and copy-paste friendly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple, Union

__all__ = ["format_table", "format_series", "ascii_chart"]

Cell = Union[str, int, float]


def _render(cell: Cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    *,
    title: str = "",
) -> str:
    """Render an aligned ASCII table.

    Example:
        >>> print(format_table(["x", "y"], [[1, 2.0]]))
        x | y
        --+-------
        1 | 2.0000
    """
    rendered: List[List[str]] = [[_render(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(
            " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_series(
    name: str,
    points: Sequence[Tuple[Cell, Cell]],
    *,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as an aligned two-column table."""
    return format_table(
        [x_label, y_label], [list(p) for p in points], title=name
    )


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    *,
    width: int = 50,
    y_min: float = 0.0,
    y_max: Union[float, None] = None,
    title: str = "",
) -> str:
    """Render series as horizontal terminal bars, one row per x value.

    Multiple series are interleaved per x value with a one-letter marker
    ('a', 'b', ...) keyed in a legend — enough to eyeball the paper's
    figure shapes without a plotting stack.

    Args:
        series: Series name -> ``(x, y)`` points.
        width: Bar width in characters (>= 1).
        y_min: Value mapped to an empty bar.
        y_max: Value mapped to a full bar (defaults to the data maximum).
        title: Optional heading line.

    Raises:
        ValueError: On an empty series dict or nonpositive width.
    """
    if not series:
        raise ValueError("ascii_chart requires at least one series")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    top = y_max
    if top is None:
        top = max(
            (y for points in series.values() for _, y in points),
            default=y_min,
        )
    span = max(top - y_min, 1e-12)
    names = sorted(series)
    markers = {name: chr(ord("a") + i) for i, name in enumerate(names)}
    x_values = sorted({x for points in series.values() for x, _ in points})
    label_width = max((len(f"{x:g}") for x in x_values), default=1)

    lines: List[str] = []
    if title:
        lines.append(title)
    for name in names:
        lines.append(f"  [{markers[name]}] {name}")
    for x in x_values:
        for name in names:
            lookup = dict(series[name])
            if x not in lookup:
                continue
            y = lookup[x]
            filled = int(round((y - y_min) / span * width))
            filled = min(max(filled, 0), width)
            bar = "#" * filled + "." * (width - filled)
            lines.append(
                f"{x:>{label_width}g} {markers[name]} |{bar}| {y:.4f}"
            )
    return "\n".join(lines)
