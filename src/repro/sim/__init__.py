"""Discrete-event simulation engine.

This subpackage replaces the core of the ONE simulator used by the paper:
a monotonic simulation clock, a binary-heap event queue with deterministic
tie-breaking, seeded per-purpose random streams, and light-weight periodic
processes.
"""

from repro.sim.engine import Engine
from repro.sim.events import Event, EventHandle
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams

__all__ = ["Engine", "Event", "EventHandle", "PeriodicProcess", "RandomStreams"]
