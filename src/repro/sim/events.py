"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a zero-argument callback.
Events are ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: lower ``priority`` first, then
insertion order.  Determinism matters here because the paper's experiments
are averages over seeded runs, and a nondeterministic queue would make runs
irreproducible.

Events are ``__slots__`` dataclasses and labels may be lazy: a callable
label is only rendered when someone actually asks for it (error messages,
debugging), so the hot loop never pays for f-string formatting on the
hundreds of thousands of events a paper-scale run schedules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Union

__all__ = ["Event", "EventHandle", "resolve_label"]

#: A label is either the string itself or a zero-argument callable that
#: renders it on demand.
LabelLike = Union[str, Callable[[], str]]


def resolve_label(label: LabelLike) -> str:
    """Render a possibly-lazy event label."""
    return label() if callable(label) else label


@dataclass(order=True, slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time (seconds) at which the event fires.
        priority: Tie-break for simultaneous events; lower fires first.
        sequence: Monotonic insertion counter (assigned by the engine).
        callback: Zero-argument callable invoked when the event fires.
        label: Human-readable tag used in error messages and traces;
            either a string or a zero-argument callable rendered lazily.
        cancelled: Whether the event has been cancelled (lazy deletion).
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: LabelLike = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """A cancellation handle for a scheduled event.

    The engine uses lazy deletion: cancelling marks the event and the
    engine skips it when popped, which keeps cancellation O(1).  The
    handle also notifies the owning engine so it can compact the heap
    once cancelled events dominate the queue.
    """

    __slots__ = ("_event", "_engine")

    def __init__(self, event: Event, engine=None):
        self._event = event
        self._engine = engine

    @property
    def time(self) -> float:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def label(self) -> str:
        """Label of the underlying event (lazy labels are rendered)."""
        return resolve_label(self._event.label)

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            if self._engine is not None:
                self._engine._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {self.label!r}, {state})"
