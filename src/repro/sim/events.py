"""Event primitives for the discrete-event engine.

An :class:`Event` couples a firing time with a zero-argument callback.
Events are ordered by ``(time, priority, sequence)`` so that simultaneous
events fire in a deterministic order: lower ``priority`` first, then
insertion order.  Determinism matters here because the paper's experiments
are averages over seeded runs, and a nondeterministic queue would make runs
irreproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Event", "EventHandle"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: Simulation time (seconds) at which the event fires.
        priority: Tie-break for simultaneous events; lower fires first.
        sequence: Monotonic insertion counter (assigned by the engine).
        callback: Zero-argument callable invoked when the event fires.
        label: Human-readable tag used in error messages and traces.
    """

    time: float
    priority: int
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """A cancellation handle for a scheduled event.

    The engine uses lazy deletion: cancelling marks the event and the
    engine skips it when popped, which keeps cancellation O(1).
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event):
        self._event = event

    @property
    def time(self) -> float:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def label(self) -> str:
        """Label of the underlying event."""
        return self._event.label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:.3f}, {self.label!r}, {state})"
