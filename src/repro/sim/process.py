"""Periodic processes on top of the event engine.

A :class:`PeriodicProcess` re-schedules itself every ``interval`` seconds
until stopped — the building block for contact scans, message-generation
ticks and metric sampling.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SchedulingError
from repro.sim.engine import Engine
from repro.sim.events import EventHandle

__all__ = ["PeriodicProcess"]


class PeriodicProcess:
    """Invoke a callback at a fixed simulated interval.

    The callback receives the current simulation time.  The process stops
    either when :meth:`stop` is called or when ``until`` is reached.

    Example:
        >>> engine = Engine()
        >>> ticks = []
        >>> process = PeriodicProcess(engine, 2.0, ticks.append, start_at=0.0)
        >>> process.start()
        >>> engine.run_until(5.0)
        >>> ticks
        [0.0, 2.0, 4.0]
    """

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: Callable[[float], None],
        *,
        start_at: Optional[float] = None,
        until: Optional[float] = None,
        label: str = "periodic",
    ):
        if interval <= 0:
            raise SchedulingError(f"interval must be > 0, got {interval!r}")
        self._engine = engine
        self._interval = float(interval)
        self._callback = callback
        self._start_at = engine.now if start_at is None else float(start_at)
        self._until = until
        self._label = label
        self._handle: Optional[EventHandle] = None
        self._stopped = False
        self._ticks = 0

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    @property
    def running(self) -> bool:
        """Whether the process has a pending event."""
        return self._handle is not None and not self._stopped

    def start(self) -> None:
        """Schedule the first tick.  Starting twice is an error."""
        if self._handle is not None:
            raise SchedulingError(f"process {self._label!r} already started")
        self._schedule(self._start_at)

    def stop(self) -> None:
        """Cancel the pending tick, if any.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _schedule(self, time: float) -> None:
        if self._until is not None and time > self._until:
            self._handle = None
            return
        self._handle = self._engine.schedule_at(
            time, self._fire, label=self._label
        )

    def _fire(self) -> None:
        if self._stopped:
            return
        self._ticks += 1
        now = self._engine.now
        self._callback(now)
        if not self._stopped:
            self._schedule(now + self._interval)
