"""Seeded random-number streams.

Experiments in the paper are averages over five seeded simulation runs.
To make every run reproducible we never touch global random state;
instead each consumer (mobility, workload, behaviour, ratings, ...) gets
its own named :class:`numpy.random.Generator` derived from a master seed,
so adding a new consumer does not perturb the draws seen by existing
ones.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """A family of independent, named random generators.

    Each distinct ``name`` maps to a generator seeded from
    ``(master_seed, name)`` via :class:`numpy.random.SeedSequence`, so
    streams are stable across runs and independent of request order.

    Example:
        >>> streams = RandomStreams(seed=7)
        >>> a = streams.get("mobility").random()
        >>> b = RandomStreams(seed=7).get("mobility").random()
        >>> a == b
        True
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this family was created with."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        generator = self._streams.get(name)
        if generator is None:
            # Hash the name into spawn-key material so the stream depends
            # only on (seed, name), not on creation order.
            key = [ord(ch) for ch in name]
            sequence = np.random.SeedSequence(entropy=self._seed, spawn_key=key)
            generator = np.random.default_rng(sequence)
            self._streams[name] = generator
        return generator

    def spawn(self, offset: int) -> "RandomStreams":
        """Return a new family whose master seed is shifted by ``offset``.

        Used by repetition runners: repetition *i* of an experiment uses
        ``streams.spawn(i)`` so repetitions differ but remain reproducible.
        """
        return RandomStreams(seed=self._seed + int(offset))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomStreams(seed={self._seed}, streams={sorted(self._streams)})"
