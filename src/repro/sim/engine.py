"""The discrete-event engine.

The engine owns the simulation clock and a binary-heap event queue.  It is
deliberately small: everything domain-specific (contacts, transfers,
message generation) is expressed as scheduled callbacks, exactly as in
event-driven network simulators such as ONE or ns-3.

Cancellation is lazy (cancelled events are skipped when popped), but the
engine compacts the heap whenever cancelled events outnumber live ones —
retransmission backoff under fault injection can otherwise litter the
queue with tens of thousands of dead timers.

Example:
    >>> engine = Engine()
    >>> fired = []
    >>> _ = engine.schedule_at(5.0, lambda: fired.append(engine.now))
    >>> engine.run_until(10.0)
    >>> fired
    [5.0]
"""

from __future__ import annotations

import gc
import heapq
import math
from typing import Callable, Iterable, List, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event, EventHandle, LabelLike, resolve_label
from repro.trace.recorder import NULL_RECORDER, TraceRecorder

__all__ = ["Engine"]


class Engine:
    """A deterministic discrete-event simulation engine.

    Events scheduled for the same instant fire in (priority, insertion)
    order.  The clock only moves forward; scheduling in the past raises
    :class:`~repro.errors.SchedulingError`.
    """

    #: Queues smaller than this are never compacted — rebuilding them
    #: costs more than lazily skipping a handful of dead events.
    _COMPACT_MIN_QUEUE = 64

    def __init__(self, start_time: float = 0.0):
        if not math.isfinite(start_time):
            raise SchedulingError(f"start_time must be finite, got {start_time!r}")
        self._now = float(start_time)
        self._queue: List[Event] = []
        self._sequence = 0
        self._running = False
        self._events_fired = 0
        self._cancelled_pending = 0
        self._compactions = 0
        #: Event-trace sink; the world swaps in a real recorder when
        #: tracing is enabled.  Never None.
        self.trace: TraceRecorder = NULL_RECORDER

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events in the queue, **including cancelled ones**.

        Cancellation is lazy: a cancelled event stays in the heap (still
        counted here) until its firing time comes around — or until a
        heap compaction drops it — at which point it is discarded
        without running and without incrementing :attr:`events_fired`.
        ``pending`` is therefore an upper bound on the events that will
        actually fire.
        """
        return len(self._queue)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far."""
        return self._events_fired

    @property
    def compactions(self) -> int:
        """Number of heap compactions performed so far."""
        return self._compactions

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: LabelLike = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire at absolute simulation ``time``.

        Args:
            time: Absolute firing time; must be >= :attr:`now`.
            callback: Zero-argument callable.
            priority: Tie-break among simultaneous events; lower first.
            label: Tag used in error messages — a string, or a
                zero-argument callable rendered only when the label is
                actually needed.

        Returns:
            A handle that can cancel the event.

        Raises:
            SchedulingError: If ``time`` is in the past or not finite.
        """
        if not math.isfinite(time):
            raise SchedulingError(f"event time must be finite, got {time!r}")
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule {resolve_label(label) or 'event'!r} "
                f"at t={time:.6f}, clock is already at t={self._now:.6f}"
            )
        event = Event(
            time=float(time),
            priority=priority,
            sequence=self._sequence,
            callback=callback,
            label=label,
        )
        self._sequence += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def schedule_in(
        self,
        delay: float,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: LabelLike = "",
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"delay must be >= 0, got {delay!r}")
        return self.schedule_at(
            self._now + delay, callback, priority=priority, label=label
        )

    def schedule_many(
        self,
        items: "Iterable[Tuple[float, Callable[[], None], int, LabelLike]]",
    ) -> int:
        """Bulk-schedule ``(time, callback, priority, label)`` tuples.

        Fires in exactly the order the equivalent :meth:`schedule_at`
        loop would: sequences are assigned in iteration order and events
        are totally ordered by ``(time, priority, sequence)``, so a
        single O(n) ``heapify`` over the extended queue pops identically
        to n O(log n) pushes.  This is the bulk-load path for contact
        traces and workload plans, whose event counts dominate the queue
        (hundreds of thousands at paper scale, millions beyond).

        The scheduled events are not individually cancellable — bulk
        loads are static by construction.

        Returns:
            The number of events scheduled.

        Raises:
            SchedulingError: If any time is in the past or not finite.
        """
        now = self._now
        sequence = self._sequence
        events: List[Event] = []
        try:
            for time, callback, priority, label in items:
                if not math.isfinite(time) or time < now:
                    raise SchedulingError(
                        f"cannot bulk-schedule "
                        f"{resolve_label(label) or 'event'!r} at "
                        f"t={time!r}, clock is at t={now:.6f}"
                    )
                events.append(Event(
                    time=float(time),
                    priority=priority,
                    sequence=sequence,
                    callback=callback,
                    label=label,
                ))
                sequence += 1
        finally:
            # Keep sequences unique even when a bad item aborts the load
            # partway (none of the batch is scheduled in that case).
            self._sequence = sequence
        if events:
            self._queue.extend(events)
            heapq.heapify(self._queue)
        return len(events)

    def _note_cancelled(self) -> None:
        """Called by :class:`EventHandle` when an event is cancelled.

        Triggers a compaction once cancelled events outnumber live ones
        (and the queue is large enough for the rebuild to pay off).
        """
        self._cancelled_pending += 1
        if (
            len(self._queue) >= self._COMPACT_MIN_QUEUE
            and self._cancelled_pending * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled events and re-heapify the survivors.

        Firing order is untouched: events are totally ordered by
        ``(time, priority, sequence)`` (sequence is unique), so any heap
        over the same live set pops in the same order.
        """
        live = [event for event in self._queue if not event.cancelled]
        if len(live) != len(self._queue):
            heapq.heapify(live)
            self._queue = live
            self._compactions += 1
        self._cancelled_pending = 0

    def step(self) -> bool:
        """Fire the next pending event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                if self._cancelled_pending:
                    self._cancelled_pending -= 1
                continue
            self._now = event.time
            self._events_fired += 1
            event.callback()
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run events until the clock reaches ``end_time``.

        Events scheduled exactly at ``end_time`` are fired.  The clock is
        left at ``end_time`` even if the queue drains early, so metric
        windows line up with the configured duration.
        """
        if end_time < self._now:
            raise SimulationError(
                f"end_time {end_time:.6f} is before current time {self._now:.6f}"
            )
        if self._running:
            raise SimulationError("engine is already running (reentrant run call)")
        self._running = True
        # Pause the cyclic collector for the duration of the loop: the
        # event path allocates heavily but forms no cycles that must be
        # reclaimed mid-run, and generation-2 scans over a large world
        # cost ~20% of wall clock at 10k nodes.  Purely a memory-timing
        # change — results are byte-identical either way.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            queue = self._queue
            while queue:
                event = queue[0]
                if event.time > end_time:
                    break
                heapq.heappop(queue)
                if event.cancelled:
                    if self._cancelled_pending:
                        self._cancelled_pending -= 1
                    continue
                self._now = event.time
                self._events_fired += 1
                event.callback()
                queue = self._queue  # a compaction may have replaced it
            self._now = float(end_time)
            if self.trace.enabled:
                self.trace.emit({
                    "type": "engine-run", "t": self._now,
                    "events": self._events_fired,
                    "pending": len(self._queue),
                })
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def run(self) -> None:
        """Run until the event queue is exhausted."""
        if self._running:
            raise SimulationError("engine is already running (reentrant run call)")
        self._running = True
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while self.step():
                pass
        finally:
            self._running = False
            if gc_was_enabled:
                gc.enable()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Engine(now={self._now:.3f}, pending={self.pending}, "
            f"fired={self._events_fired})"
        )
