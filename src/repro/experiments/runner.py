"""Scenario runners.

``run_scenario`` builds a full simulation (mobility -> contact trace ->
world -> router) from a :class:`ScenarioConfig` and executes it.
``run_comparison`` runs several schemes over the *same* contact trace
and workload plan — the paper's methodology for "ours vs ChitChat"
comparisons — and ``run_averaged`` repeats over seeds, as the paper
averages five simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.agents.behaviors import assign_behaviors
from repro.agents.roles import RoleHierarchy
from repro.core.incentive_layer import IncentiveLayer
from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.trace_cache import TraceCache, get_default_cache
from repro.messages.generator import MessageGenerator
from repro.messages.keywords import KeywordUniverse
from repro.metrics.analysis import merge_summaries
from repro.metrics.collector import MetricsCollector
from repro.mobility.composite import make_population_model
from repro.mobility.contact import detect_contacts
from repro.mobility.regions import detect_contacts_sharded
from repro.mobility.trace import ContactTrace
from repro.network.buffer import DropPolicy
from repro.network.node import Node
from repro.network.world import World
from repro.network.world_soa import SoAWorld
from repro.population import PopulationMap
from repro.routing.base import Router
from repro.schemes import resolve_scheme, scheme_names
from repro.sim.engine import Engine
from repro.sim.process import PeriodicProcess
from repro.sim.rng import RandomStreams
from repro.trace.recorder import JsonlTraceRecorder, derive_trace_path

__all__ = [
    "SCHEMES",
    "RunResult",
    "build_contact_trace",
    "make_router",
    "run_scenario",
    "run_comparison",
    "run_averaged",
]

#: Scheme names accepted by :func:`run_scenario`, derived from the
#: scheme registry (see ``repro/schemes/``) in registration order.
SCHEMES: Tuple[str, ...] = scheme_names()


@dataclass
class RunResult:
    """Everything a figure generator needs from one run."""

    scheme: str
    seed: int
    config: ScenarioConfig
    metrics: MetricsCollector
    router: Router
    malicious_ids: Set[int] = field(default_factory=set)
    selfish_ids: Set[int] = field(default_factory=set)
    honest_ids: Set[int] = field(default_factory=set)
    #: Where this run's event trace was written (None when untraced).
    trace_path: Optional[str] = None
    #: ``{node_id: class name}`` for heterogeneous populations
    #: (``None`` on homogeneous runs, keeping legacy results identical).
    node_classes: Optional[Dict[int, str]] = None

    @property
    def mdr(self) -> float:
        """Message delivery ratio of this run."""
        return self.metrics.message_delivery_ratio()

    @property
    def traffic(self) -> int:
        """Completed transfers (the paper's traffic measure)."""
        return self.metrics.transfers_completed

    def summary(self) -> Dict[str, float]:
        """Headline metrics plus token statistics where applicable."""
        data = self.metrics.summary()
        ledger = getattr(self.router, "ledger", None)
        if ledger is not None and ledger.total_endowment() > 0:
            balances = ledger.balances()
            data["token_supply"] = ledger.total_supply()
            data["exhausted_accounts"] = float(
                sum(1 for b in balances.values() if b < 1e-9)
            )
        return data

    def class_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-class delivery/cost/balance metrics (hetero runs only).

        Raises:
            ConfigurationError: When the run had no heterogeneous
                population (``node_classes`` is ``None``).
        """
        if self.node_classes is None:
            raise ConfigurationError(
                "class_breakdown() requires a heterogeneous population "
                "(config.population with more than one class)"
            )
        breakdown = self.metrics.class_breakdown(self.node_classes)
        ledger = getattr(self.router, "ledger", None)
        if ledger is not None and ledger.total_endowment() > 0:
            balances = ledger.balances()
            for name, row in breakdown.items():
                members = [
                    node_id for node_id, cls in self.node_classes.items()
                    if cls == name
                ]
                held = [balances.get(node_id, 0.0) for node_id in members]
                row["mean_balance"] = (
                    sum(held) / len(held) if held else 0.0
                )
                row["exhausted_accounts"] = float(
                    sum(1 for b in held if b < 1e-9)
                )
        return breakdown

    def fault_summary(self) -> Dict[str, float]:
        """Robustness counters, kept separate from :meth:`summary`.

        Fault-free runs must stay bit-identical to the committed golden
        summaries, so fault/ledger-integrity counters live here:
        everything from
        :meth:`~repro.metrics.collector.MetricsCollector.fault_summary`
        plus, for token schemes, the stranded escrow left after
        finalize (must be 0), the duplicate settlements blocked by
        idempotence keys, and the conservation error of the total
        supply (must be 0).
        """
        data = self.metrics.fault_summary()
        ledger = getattr(self.router, "ledger", None)
        if ledger is not None and ledger.total_endowment() > 0:
            data["stranded_escrow"] = ledger.escrowed_total()
            data["duplicate_settlements"] = float(
                ledger.duplicate_settlements
            )
            data["supply_error"] = (
                ledger.total_supply() - ledger.total_endowment()
            )
            # Actual double-payments: settlement keys that paid out more
            # than once.  The idempotence machinery exists to pin this
            # at exactly zero under every fault mix.
            keyed = [
                t.settlement_key for t in ledger.transactions
                if t.settlement_key is not None
            ]
            data["double_payments"] = float(len(keyed) - len(set(keyed)))
        return data


def build_contact_trace(
    config: ScenarioConfig,
    seed: int,
    *,
    cache: Optional["TraceCache"] = None,
) -> ContactTrace:
    """Generate the scenario's contact trace under its mobility model.

    Args:
        config: The scenario (only its mobility-relevant fields matter).
        seed: Master seed; the trace uses the ``"mobility"`` stream.
        cache: A :class:`~repro.experiments.trace_cache.TraceCache` to
            consult before detecting contacts (and to populate after).
            Defaults to the process-wide cache configured via
            ``REPRO_TRACE_CACHE`` / ``--trace-cache``; no caching when
            neither is set.
    """
    if cache is None:
        cache = get_default_cache()
    if cache is not None:
        cached = cache.get(config, seed)
        if cached is not None:
            return cached
    resolved = config.resolved_population()
    if len(resolved) > 1:
        # Heterogeneous population: per-class mobility sub-models on
        # dedicated streams, detection under per-node radii.  Spatial
        # sharding (detect_regions > 1) is deliberately bypassed here:
        # the strip/halo proof in repro.mobility.regions assumes one
        # uniform radius, and sharding is purely a perf knob — results
        # are defined by this single-sweep path (see DESIGN.md §11).
        streams = RandomStreams(seed)
        population = PopulationMap.build(config, streams)
        model = make_population_model(config, streams, population)
        trace = detect_contacts(
            model,
            radius=config.transmission_radius,
            duration=config.duration,
            scan_interval=config.scan_interval,
            radii=population.radii,
        )
    elif config.detect_regions > 1:
        # Spatially sharded sweep — bit-identical to the classic path
        # (tests/test_regions.py); worth it from ~10k nodes up.
        cls0 = resolved[0]
        trace = detect_contacts_sharded(
            kind=cls0.mobility,
            n_nodes=config.n_nodes,
            area=config.area,
            seed=seed,
            radius=cls0.transmission_radius,
            duration=config.duration,
            scan_interval=config.scan_interval,
            speed_range=cls0.speed_range,
            pause_range=cls0.pause_range,
            manhattan_block=config.manhattan_block,
            regions=config.detect_regions,
            workers=config.detect_workers,
        )
    else:
        cls0 = resolved[0]
        streams = RandomStreams(seed)
        population = PopulationMap(
            resolved, np.zeros(config.n_nodes, dtype=np.int64)
        )
        model = make_population_model(config, streams, population)
        trace = detect_contacts(
            model,
            radius=cls0.transmission_radius,
            duration=config.duration,
            scan_interval=config.scan_interval,
        )
    if cache is not None:
        cache.put(config, seed, trace)
    return trace


def make_router(
    scheme: str, config: ScenarioConfig, universe: KeywordUniverse
) -> Router:
    """Instantiate the router for ``scheme`` via the scheme registry.

    Raises:
        ConfigurationError: For unknown scheme names (from
            :func:`~repro.schemes.resolve_scheme`, which names every
            registered scheme).
    """
    return resolve_scheme(scheme).builder(config, universe)


def _build_population(
    config: ScenarioConfig,
    streams: RandomStreams,
    universe: KeywordUniverse,
    *,
    drop_policy: DropPolicy = DropPolicy.DROP_OLDEST,
    population: Optional[PopulationMap] = None,
) -> Tuple[List[Node], Dict[int, object]]:
    """Build the node objects and behaviour assignment for one run.

    With a single-class (default) population this is exactly the legacy
    construction — interests on the shared ``"interests"`` stream,
    behaviours on ``"behavior-assignment"`` — consuming the same draws
    in the same order (the bit-identity guarantee).  A heterogeneous
    population samples each class on its own ``interests:{name}`` /
    ``behavior-assignment:{name}`` streams over its members in
    ascending id order, so classes never perturb one another; roles
    stay global (the hierarchy is an organisational overlay, not a
    device property).
    """
    if population is None:
        population = PopulationMap.build(config, streams)
    hierarchy = RoleHierarchy(config.role_levels, config.role_fractions)
    ranks = hierarchy.assign(range(config.n_nodes), streams.get("roles"))
    if not population.heterogeneous:
        cls0 = population.classes[0]
        behaviors = assign_behaviors(
            range(config.n_nodes),
            streams.get("behavior-assignment"),
            selfish_fraction=cls0.selfish_fraction,
            malicious_fraction=cls0.malicious_fraction,
            participation_probability=config.participation_probability,
            low_quality_probability=config.low_quality_probability,
        )
        nodes = [
            Node(
                node_id,
                universe.sample_interests(
                    streams.get("interests"), cls0.interests_per_node
                ),
                role=ranks[node_id],
                buffer_capacity=cls0.buffer_capacity,
                drop_policy=drop_policy,
                behavior=behaviors[node_id],
            )
            for node_id in range(config.n_nodes)
        ]
        return nodes, behaviors
    behaviors: Dict[int, object] = {}
    interests: Dict[int, object] = {}
    for index, cls in enumerate(population.classes):
        members = population.members(index).tolist()
        if not members:
            continue
        behaviors.update(
            assign_behaviors(
                members,
                streams.get(f"behavior-assignment:{cls.name}"),
                selfish_fraction=cls.selfish_fraction,
                malicious_fraction=cls.malicious_fraction,
                participation_probability=config.participation_probability,
                low_quality_probability=config.low_quality_probability,
            )
        )
        interest_rng = streams.get(f"interests:{cls.name}")
        for node_id in members:
            interests[node_id] = universe.sample_interests(
                interest_rng, cls.interests_per_node
            )
    buffer_caps = population.buffer_capacities
    nodes = [
        Node(
            node_id,
            interests[node_id],
            role=ranks[node_id],
            buffer_capacity=int(buffer_caps[node_id]),
            drop_policy=drop_policy,
            behavior=behaviors[node_id],
        )
        for node_id in range(config.n_nodes)
    ]
    return nodes, behaviors


def run_scenario(
    config: ScenarioConfig,
    scheme: Optional[str] = None,
    seed: int = 0,
    *,
    trace: Optional[ContactTrace] = None,
    sample_ratings: bool = False,
    rating_sample_interval: float = 600.0,
    trace_path: Optional[str] = None,
) -> RunResult:
    """Build and execute one simulation run.

    Args:
        config: The scenario.
        scheme: One of :data:`SCHEMES`.  Defaults to ``config.scheme``
            when the scenario pins one, else ``"incentive"``.
        seed: Master seed; population, workload and behaviour draws all
            derive from it.
        trace: Reuse a pre-built contact trace (for same-contacts
            comparisons); built from ``(config, seed)`` when omitted.
        sample_ratings: Periodically record the average rating of
            malicious nodes among honest observers (Fig. 5.4 series).
        rating_sample_interval: Sampling period in seconds.
        trace_path: Write a JSONL event trace of the run here; overrides
            ``config.trace_path``.  Tracing never changes results.

    Returns:
        The :class:`RunResult` with metrics and the router (whose ledger
        and reputation system remain inspectable).
    """
    if scheme is None:
        scheme = config.scheme if config.scheme is not None else "incentive"
    # Resolve up front: an unknown name fails here, before any
    # simulation state (or a trace file) is created.
    spec = resolve_scheme(scheme)
    effective_trace_path = trace_path if trace_path is not None else (
        config.trace_path
    )
    recorder = None
    if effective_trace_path is not None:
        recorder = JsonlTraceRecorder(
            effective_trace_path,
            meta={
                "scheme": scheme,
                "seed": seed,
                "n_nodes": config.n_nodes,
                "duration": config.duration,
            },
        )
    try:
        streams = RandomStreams(seed)
        universe = KeywordUniverse(config.keyword_pool)
        # Class assignment draws nothing for single-class populations,
        # so building the map here leaves every legacy stream untouched.
        population = PopulationMap.build(config, streams)
        # Under the incentive schemes, custody of a high-priority
        # message is worth more tokens, so rational nodes evict
        # low-priority messages first; baselines keep ONE's drop-oldest
        # buffers.  The policy is part of the scheme's registration.
        nodes, behaviors = _build_population(
            config, streams, universe, drop_policy=spec.drop_policy,
            population=population,
        )
        router = spec.builder(config, universe)
        engine = Engine()
        world_cls = SoAWorld if config.world_core == "soa" else World
        # Single-class scalars come from the resolved class (identical
        # to the config scalars unless the one class carries overrides);
        # heterogeneous worlds read the per-node arrays instead and the
        # scalars are only fallbacks.
        cls0 = population.classes[0]
        hetero = population.heterogeneous
        world = world_cls(
            engine,
            nodes,
            router,
            link_speed=config.link_speed if hetero else cls0.link_speed,
            streams=streams,
            ttl=config.ttl,
            nominal_distance=(
                config.transmission_radius if hetero
                else cls0.transmission_radius
            ),
            battery_capacity=(
                config.battery_capacity if hetero
                else cls0.battery_capacity
            ),
            resume_partial_transfers=config.resume_partial_transfers,
            faults=config.faults,
            trace=recorder,
            population=population,
        )
        generator = MessageGenerator(
            universe,
            streams.get("workload"),
            profiles=config.profiles,
            content_keywords=config.content_keywords,
            annotated_fraction=config.annotated_fraction,
        )
        world.use_generator(generator)
        plan = generator.schedule(
            list(range(config.n_nodes)),
            duration=config.duration,
            interval=config.message_interval,
        )
        world.schedule_workload(plan)
        if trace is None:
            trace = build_contact_trace(config, seed)
        world.load_contact_trace(trace)

        malicious_ids = {i for i, b in behaviors.items() if b.malicious}
        selfish_ids = {i for i, b in behaviors.items() if b.selfish}
        honest_ids = set(range(config.n_nodes)) - malicious_ids - selfish_ids

        if sample_ratings and isinstance(router, IncentiveLayer):
            observers = sorted(set(range(config.n_nodes)) - malicious_ids)

            def _sample(now: float) -> None:
                ratings = {
                    subject: router.reputation.average_score_of(
                        subject, observers
                    )
                    for subject in sorted(malicious_ids)
                }
                world.metrics.sample_ratings(now, ratings)

            sampler = PeriodicProcess(
                engine, rating_sample_interval, _sample,
                start_at=0.0, label="rating-sampler",
            )
            sampler.start()

        metrics = world.run(config.duration)
        # Settle the books: any escrow still held by transfers the fault
        # processes orphaned goes back to its payer (no-op fault-free).
        router.finalize(world.now)
        if recorder is not None:
            end = {
                "type": "run-end", "t": world.now,
                "events": engine.events_fired,
            }
            if hetero:
                end["node_classes"] = {
                    str(node_id): name
                    for node_id, name in population.names_by_node().items()
                }
            ledger = getattr(router, "ledger", None)
            if ledger is not None and ledger.trace is recorder:
                # Only trace-wired ledgers (the incentive protocol's)
                # snapshot balances: an untraced ledger's flows never
                # appeared in the file, so the auditor could not
                # reconcile them.
                end.update(
                    supply=ledger.total_supply(),
                    endowment=ledger.total_endowment(),
                    escrow=ledger.escrowed_total(),
                    token_payments=metrics.token_payments,
                    tokens_moved=metrics.tokens_moved,
                    balances={
                        str(node): balance
                        for node, balance in ledger.balances().items()
                    },
                )
            recorder.emit(end)
    finally:
        if recorder is not None:
            recorder.close()
    return RunResult(
        scheme=scheme,
        seed=seed,
        config=config,
        metrics=metrics,
        router=router,
        malicious_ids=malicious_ids,
        selfish_ids=selfish_ids,
        honest_ids=honest_ids,
        trace_path=(
            str(recorder.path) if recorder is not None else None
        ),
        node_classes=population.names_by_node() if hetero else None,
    )


def run_comparison(
    config: ScenarioConfig,
    schemes: Sequence[str],
    seed: int = 0,
    *,
    workers: Optional[int] = 1,
    trace_cache: Optional[TraceCache] = None,
    **kwargs,
):
    """Run several schemes over the same contact trace and seed.

    Args:
        config: The scenario.
        schemes: Schemes to compare (each sees identical contacts).
        seed: Shared master seed.
        workers: ``1`` (default) runs in-process and returns full
            :class:`RunResult` objects; any other value fans the schemes
            out over a process pool and returns picklable
            :class:`~repro.experiments.parallel.RunDigest` objects
            (``mdr``, ``traffic`` and ``summary()`` behave identically).
        trace_cache: Optional trace cache overriding the default.
        **kwargs: Forwarded to :func:`run_scenario`.
    """
    trace = build_contact_trace(config, seed, cache=trace_cache)
    # One trace file per run: schemes sharing config.trace_path would
    # clobber each other, so each gets a derived per-scheme path.
    trace_base = kwargs.pop("trace_path", None)
    if trace_base is None:
        trace_base = config.trace_path

    def _path_for(scheme: str) -> Optional[str]:
        if trace_base is None:
            return None
        return derive_trace_path(trace_base, scheme=scheme, seed=seed)

    if workers == 1:
        return {
            scheme: run_scenario(
                config, scheme, seed, trace=trace,
                trace_path=_path_for(scheme), **kwargs,
            )
            for scheme in schemes
        }
    from repro.experiments.parallel import RunSpec, ensure_success, run_specs

    specs = [
        RunSpec(
            config, scheme, seed,
            {**kwargs, "trace": trace, "trace_path": _path_for(scheme)},
        )
        for scheme in schemes
    ]
    digests = ensure_success(
        run_specs(specs, workers=workers, cache=trace_cache)
    )
    return dict(zip(schemes, digests))


def run_averaged(
    config: ScenarioConfig,
    scheme: str,
    seeds: Sequence[int],
    *,
    workers: Optional[int] = 1,
    trace_cache: Optional[TraceCache] = None,
    **kwargs,
) -> Dict[str, float]:
    """Mean of the headline metrics over repeated seeded runs.

    Both execution paths collect one summary per seed, in seed order,
    and average through :func:`~repro.metrics.analysis.merge_summaries`,
    so ``workers=4`` is bit-identical to ``workers=1``.

    Args:
        config: The scenario.
        scheme: One of :data:`SCHEMES`.
        seeds: Master seeds to average over.
        workers: ``1`` (default) runs in-process; ``None`` uses every
            core; ``N`` fans seeds out over ``N`` worker processes.
        trace_cache: Optional trace cache overriding the default.
        **kwargs: Forwarded to :func:`run_scenario`.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("seeds must be non-empty")
    trace_base = kwargs.pop("trace_path", None)
    if trace_base is None:
        trace_base = config.trace_path

    def _path_for(seed: int) -> Optional[str]:
        if trace_base is None:
            return None
        return derive_trace_path(trace_base, scheme=scheme, seed=seed)

    if workers == 1:
        summaries = [
            run_scenario(
                config, scheme, seed,
                trace_path=_path_for(seed), **kwargs,
            ).summary()
            for seed in seeds
        ]
    else:
        from repro.experiments.parallel import (
            RunSpec,
            ensure_success,
            run_specs,
        )

        specs = [
            RunSpec(
                config, scheme, seed,
                {**kwargs, "trace_path": _path_for(seed)},
            )
            for seed in seeds
        ]
        digests = ensure_success(
            run_specs(specs, workers=workers, cache=trace_cache)
        )
        summaries = [digest.summary() for digest in digests]
    return merge_summaries(summaries)
