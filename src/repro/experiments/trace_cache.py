"""On-disk contact-trace cache.

Building the deterministic contact trace — advancing the mobility model
and grid-hashing positions every ``scan_interval`` — dominates the cost
of a paper-scale run (Table 5.1: 500 nodes over 24 simulated hours), and
every figure re-derives the *same* traces for its ``(config, seed)``
grid.  This module caches built traces as ``.npz`` files keyed by a hash
of the mobility-relevant :class:`~repro.experiments.config.ScenarioConfig`
fields plus the seed, so a trace is detected once and shared by every
scheme, figure, benchmark, and worker process that needs it.

The cache directory is LRU-bounded: entries are touched on every hit and
the oldest entries are pruned once ``max_entries`` is exceeded.  Enable
it globally through the ``REPRO_TRACE_CACHE`` environment variable (the
CLI's ``--trace-cache`` flag and the benchmark harness set it up for
you), or pass a :class:`TraceCache` explicitly to
:func:`~repro.experiments.runner.build_contact_trace`.

Every entry is stored with a ``.sha256`` sidecar holding the digest of
the ``.npz`` bytes.  A hit re-hashes the file and compares: a mismatch
(bit rot, a partially synced network filesystem, manual tampering)
deletes the entry and reports a miss, so a corrupt trace can never be
fed into a simulation — the run silently rebuilds from the mobility
model instead.  Entries written by older versions without a sidecar are
still accepted (and their load-time parse remains the only guard).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Union

from repro.experiments.config import ScenarioConfig
from repro.mobility.trace import ContactTrace
from repro.population import spec_as_dict

__all__ = [
    "MOBILITY_FIELDS",
    "TraceCache",
    "trace_cache_key",
    "cache_from_env",
    "get_default_cache",
    "set_default_cache",
]

#: Environment variable naming the shared cache directory.
ENV_VAR = "REPRO_TRACE_CACHE"

#: Bump when the trace build pipeline changes in a way that invalidates
#: previously cached traces (detector semantics, npz layout, ...).
CACHE_FORMAT_VERSION = 1

#: The :class:`ScenarioConfig` fields that influence the contact trace.
#: Everything else (selfish fractions, token endowments, workload knobs)
#: is irrelevant to mobility, so sweeps over those fields share traces.
MOBILITY_FIELDS = (
    "n_nodes",
    "area",
    "duration",
    "mobility",
    "speed_range",
    "pause_range",
    "manhattan_block",
    "scan_interval",
    "transmission_radius",
)


def trace_cache_key(config: ScenarioConfig, seed: int) -> str:
    """A stable content hash for the trace of ``(config, seed)``.

    Only :data:`MOBILITY_FIELDS` participate, so two configs differing
    in, say, ``selfish_fraction`` map to the same cached trace.
    Heterogeneous populations change per-class mobility and per-node
    radii, so the class specs join the payload — but only when a
    population is set, keeping every legacy cache key byte-identical.
    """
    payload = {
        "version": CACHE_FORMAT_VERSION,
        "seed": int(seed),
    }
    for name in MOBILITY_FIELDS:
        value = getattr(config, name)
        payload[name] = list(value) if isinstance(value, tuple) else value
    if config.population:
        payload["population"] = [
            spec_as_dict(spec) for spec in config.population
        ]
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class TraceCache:
    """An LRU-bounded directory of ``.npz`` contact traces.

    Example:
        >>> cache = TraceCache("/tmp/traces", max_entries=64)  # doctest: +SKIP
        >>> trace = cache.get(config, seed=1)                  # doctest: +SKIP

    Writes are atomic (temp file + rename) so concurrent worker
    processes can share one directory without torn entries.
    """

    def __init__(
        self, directory: Union[str, Path], *, max_entries: int = 256
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries!r}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        #: Entries dropped because their bytes no longer matched their
        #: recorded sha256 digest (or failed to parse).
        self.corrupt = 0

    def path_for(self, config: ScenarioConfig, seed: int) -> Path:
        """The on-disk path the trace of ``(config, seed)`` maps to."""
        return self.directory / f"{trace_cache_key(config, seed)}.npz"

    def digest_path_for(self, path: Path) -> Path:
        """The sha256 sidecar path of an entry."""
        return path.with_name(f"{path.name}.sha256")

    @staticmethod
    def _sha256_of(path: Path) -> str:
        digest = hashlib.sha256()
        with path.open("rb") as handle:
            for chunk in iter(lambda: handle.read(1 << 20), b""):
                digest.update(chunk)
        return digest.hexdigest()

    def _quarantine(self, path: Path) -> None:
        """Delete a corrupt entry (and sidecar) so it rebuilds cleanly."""
        path.unlink(missing_ok=True)
        self.digest_path_for(path).unlink(missing_ok=True)
        self.corrupt += 1
        self.misses += 1

    def get(self, config: ScenarioConfig, seed: int) -> Optional[ContactTrace]:
        """Load the cached trace, or None on a miss.

        A hit refreshes the entry's mtime (the LRU clock).  Before
        loading, the entry's bytes are verified against its ``.sha256``
        sidecar; a mismatching or unparseable entry is deleted and
        reported as a (corrupt) miss.
        """
        path = self.path_for(config, seed)
        if not path.exists():
            self.misses += 1
            return None
        digest_path = self.digest_path_for(path)
        if digest_path.exists():
            try:
                expected = digest_path.read_text().strip()
            except OSError:
                expected = ""
            if self._sha256_of(path) != expected:
                self._quarantine(path)
                return None
        try:
            trace = ContactTrace.load_npz(path)
        except Exception:
            # Torn write from a crashed process: discard and rebuild.
            self._quarantine(path)
            return None
        os.utime(path)
        if digest_path.exists():
            os.utime(digest_path)
        self.hits += 1
        return trace

    def put(self, config: ScenarioConfig, seed: int, trace: ContactTrace) -> None:
        """Store ``trace`` (plus its sha256 sidecar) and prune old entries."""
        path = self.path_for(config, seed)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        trace.save_npz(tmp)
        sha = self._sha256_of(tmp)
        os.replace(tmp, path)
        digest_path = self.digest_path_for(path)
        digest_tmp = digest_path.with_name(
            f"{digest_path.name}.tmp-{os.getpid()}"
        )
        digest_tmp.write_text(sha + "\n")
        os.replace(digest_tmp, digest_path)
        self.prune()

    def entries(self) -> List[Path]:
        """Cached entry paths, least-recently-used first."""
        return sorted(
            self.directory.glob("*.npz"),
            key=lambda p: (p.stat().st_mtime, p.name),
        )

    def prune(self) -> int:
        """Evict least-recently-used entries beyond ``max_entries``."""
        entries = self.entries()
        evicted = 0
        for path in entries[: max(0, len(entries) - self.max_entries)]:
            path.unlink(missing_ok=True)
            self.digest_path_for(path).unlink(missing_ok=True)
            evicted += 1
        return evicted

    def clear(self) -> None:
        """Remove every cached entry (and sidecar)."""
        for path in self.entries():
            path.unlink(missing_ok=True)
            self.digest_path_for(path).unlink(missing_ok=True)

    def __len__(self) -> int:
        return len(self.entries())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TraceCache({str(self.directory)!r}, entries={len(self)}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# ----------------------------------------------------------------------
# Process-wide default cache (REPRO_TRACE_CACHE)
# ----------------------------------------------------------------------
_UNSET = object()
_default_cache: object = _UNSET


def cache_from_env() -> Optional[TraceCache]:
    """A cache for ``$REPRO_TRACE_CACHE``, or None when unset/empty."""
    path = os.environ.get(ENV_VAR)
    if not path:
        return None
    return TraceCache(path)


def get_default_cache() -> Optional[TraceCache]:
    """The process-wide cache, resolved lazily from the environment."""
    global _default_cache
    if _default_cache is _UNSET:
        _default_cache = cache_from_env()
    return _default_cache  # type: ignore[return-value]


def set_default_cache(cache: Optional[TraceCache]) -> None:
    """Install (or, with None, disable) the process-wide cache."""
    global _default_cache
    _default_cache = cache
