"""Experiment harness: scenario configuration, runners (serial and
multiprocess), a contact-trace cache, and one generator per paper
figure/table."""

from repro.experiments.config import ScenarioConfig
from repro.experiments.faults import fault_grid_configs, fault_sweep
from repro.experiments.parallel import (
    MetricsDigest,
    RunDigest,
    RunFailure,
    RunSpec,
    ensure_success,
    run_specs,
)
from repro.experiments.runner import (
    RunResult,
    build_contact_trace,
    run_averaged,
    run_comparison,
    run_scenario,
)
from repro.experiments.trace_cache import (
    TraceCache,
    get_default_cache,
    set_default_cache,
    trace_cache_key,
)
from repro.experiments.figures import (
    FigureResult,
    fig5_1_mdr_vs_selfish,
    fig5_2_traffic_reduction,
    fig5_3_initial_tokens,
    fig5_4_malicious_ratings,
    fig5_5_mdr_vs_users,
    fig5_6_priority_mdr,
    table5_1_parameters,
)
from repro.experiments.sweeps import sweep

__all__ = [
    "ScenarioConfig",
    "RunResult",
    "build_contact_trace",
    "run_scenario",
    "run_comparison",
    "run_averaged",
    "sweep",
    "fault_grid_configs",
    "fault_sweep",
    "RunSpec",
    "RunDigest",
    "RunFailure",
    "MetricsDigest",
    "run_specs",
    "ensure_success",
    "TraceCache",
    "trace_cache_key",
    "get_default_cache",
    "set_default_cache",
    "FigureResult",
    "fig5_1_mdr_vs_selfish",
    "fig5_2_traffic_reduction",
    "fig5_3_initial_tokens",
    "fig5_4_malicious_ratings",
    "fig5_5_mdr_vs_users",
    "fig5_6_priority_mdr",
    "table5_1_parameters",
]
