"""One generator per table/figure in the paper's evaluation (Paper I §5).

Every function returns a :class:`FigureResult` holding the same series
the paper plots; ``format()`` renders them as aligned text tables.  All
generators accept a ``base`` scenario so benchmarks can run a scaled
grid (:meth:`ScenarioConfig.small`) while ``--paper-scale`` runs Table
5.1 exactly.  Results are seed-averaged, as the paper averages five
simulation runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import (
    RunResult,
    build_contact_trace,
    run_scenario,
)
from repro.messages.message import Priority
from repro.metrics.reports import ascii_chart, format_series, format_table
from repro.schemes import tagged

__all__ = [
    "FigureResult",
    "fig5_1_mdr_vs_selfish",
    "fig5_2_traffic_reduction",
    "fig5_3_initial_tokens",
    "fig5_4_malicious_ratings",
    "fig5_5_mdr_vs_users",
    "fig5_6_priority_mdr",
    "table5_1_parameters",
]

DEFAULT_SEEDS: Tuple[int, ...] = (1, 2, 3)

#: The paper's head-to-head pair, from the registry's tag — sorted so
#: the baseline (ChitChat) series always precedes the proposed scheme,
#: matching the paper's figure legends.
PAPER_PAIR: Tuple[str, ...] = tuple(sorted(tagged("paper-comparison")))
BASELINE_SCHEME, INCENTIVE_SCHEME = PAPER_PAIR


@dataclass
class FigureResult:
    """The data behind one reproduced figure.

    Attributes:
        figure_id: Paper artefact id, e.g. ``"5.1"``.
        title: The paper's caption.
        x_label: X axis meaning.
        y_label: Y axis meaning.
        series: Series name -> list of ``(x, y)`` points.
        notes: Free-form remarks (scaling caveats etc.).
    """

    figure_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: str = ""

    def format(self) -> str:
        """Render every series as an aligned text table plus a chart."""
        blocks = [f"Figure {self.figure_id}: {self.title}"]
        if self.notes:
            blocks.append(f"  note: {self.notes}")
        for name in sorted(self.series):
            blocks.append(
                format_series(
                    name, self.series[name],
                    x_label=self.x_label, y_label=self.y_label,
                )
            )
        populated = {
            name: points for name, points in self.series.items() if points
        }
        if populated:
            blocks.append(
                ascii_chart(
                    populated,
                    title=f"{self.y_label} by {self.x_label}",
                )
            )
        return "\n\n".join(blocks)

    def series_values(self, name: str) -> List[float]:
        """The y values of one series (in x order)."""
        return [y for _, y in self.series[name]]


def _averaged_runs(
    config: ScenarioConfig,
    scheme: str,
    seeds: Sequence[int],
    traces: Dict[int, object],
    *,
    workers: Optional[int] = 1,
    **kwargs,
) -> List[RunResult]:
    """Run ``scheme`` once per seed, reusing per-seed contact traces.

    With ``workers != 1`` the seeds fan out over a process pool and the
    returned elements are picklable digests; their ``mdr``, ``traffic``
    and ``metrics`` accessors match :class:`RunResult`.
    """
    for seed in seeds:
        if traces.get(seed) is None:
            traces[seed] = build_contact_trace(config, seed)
    if workers == 1:
        return [
            run_scenario(config, scheme, seed, trace=traces[seed], **kwargs)
            for seed in seeds
        ]
    from repro.experiments.parallel import RunSpec, ensure_success, run_specs

    specs = [
        RunSpec(config, scheme, seed, {**kwargs, "trace": traces[seed]})
        for seed in seeds
    ]
    return ensure_success(run_specs(specs, workers=workers))


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
# Figure 5.1 — MDR vs percentage of selfish nodes
# ----------------------------------------------------------------------
def fig5_1_mdr_vs_selfish(
    base: Optional[ScenarioConfig] = None,
    *,
    selfish_grid: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: Optional[int] = 1,
) -> FigureResult:
    """MDR for the incentive scheme vs ChitChat as selfishness rises.

    Expected shape (paper): both fall with the selfish fraction; the
    incentive scheme sits slightly below ChitChat (token exhaustion);
    neither hits zero at 100 % because a selfish radio is still on for
    one in ten encounters.
    """
    config = base if base is not None else ScenarioConfig.small()
    result = FigureResult(
        figure_id="5.1",
        title="MDR vs Percentage of Selfish Nodes",
        x_label="selfish %",
        y_label="MDR",
        series={scheme: [] for scheme in PAPER_PAIR},
    )
    traces: Dict[int, object] = {}
    for fraction in selfish_grid:
        point = config.replace(selfish_fraction=fraction)
        for scheme in PAPER_PAIR:
            runs = _averaged_runs(point, scheme, seeds, traces,
                                  workers=workers)
            result.series[scheme].append(
                (fraction * 100.0, _mean([r.mdr for r in runs]))
            )
    return result


# ----------------------------------------------------------------------
# Figure 5.2 — traffic reduction over ChitChat
# ----------------------------------------------------------------------
def fig5_2_traffic_reduction(
    base: Optional[ScenarioConfig] = None,
    *,
    selfish_grid: Sequence[float] = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: Optional[int] = 1,
) -> FigureResult:
    """Percentage of traffic saved by the incentive scheme.

    Expected shape (paper): the saving grows with the selfish fraction —
    selfish nodes burn their endowment and stop generating transfers.
    """
    config = base if base is not None else ScenarioConfig.small()
    result = FigureResult(
        figure_id="5.2",
        title="Percentage of Reduced Traffic over ChitChat",
        x_label="selfish %",
        y_label="traffic reduction %",
        series={"reduction": []},
    )
    traces: Dict[int, object] = {}
    for fraction in selfish_grid:
        point = config.replace(selfish_fraction=fraction)
        chitchat = _averaged_runs(point, BASELINE_SCHEME, seeds, traces,
                                  workers=workers)
        incentive = _averaged_runs(point, INCENTIVE_SCHEME, seeds, traces,
                                   workers=workers)
        base_traffic = _mean([float(r.traffic) for r in chitchat])
        ours_traffic = _mean([float(r.traffic) for r in incentive])
        reduction = (
            100.0 * (base_traffic - ours_traffic) / base_traffic
            if base_traffic > 0 else 0.0
        )
        result.series["reduction"].append((fraction * 100.0, reduction))
    return result


# ----------------------------------------------------------------------
# Figure 5.3 — MDR vs initial tokens
# ----------------------------------------------------------------------
def fig5_3_initial_tokens(
    base: Optional[ScenarioConfig] = None,
    *,
    token_grid: Sequence[float] = (10.0, 30.0, 60.0, 120.0, 240.0),
    selfish_levels: Sequence[float] = (0.2, 0.4),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: Optional[int] = 1,
) -> FigureResult:
    """MDR of the incentive scheme as the endowment varies.

    Expected shape (paper): MDR rises with initial tokens (endowments
    stop exhausting) and falls with the selfish fraction.
    """
    config = base if base is not None else ScenarioConfig.small()
    result = FigureResult(
        figure_id="5.3",
        title="Initial Tokens' Variance",
        x_label="initial tokens",
        y_label="MDR",
    )
    traces: Dict[int, object] = {}
    for selfish in selfish_levels:
        name = f"{INCENTIVE_SCHEME} selfish={selfish:.0%}"
        result.series[name] = []
        for tokens in token_grid:
            point = config.replace(
                selfish_fraction=selfish
            ).with_tokens(tokens)
            runs = _averaged_runs(point, INCENTIVE_SCHEME, seeds, traces,
                                  workers=workers)
            result.series[name].append(
                (float(tokens), _mean([r.mdr for r in runs]))
            )
    return result


# ----------------------------------------------------------------------
# Figure 5.4 — recognising malicious nodes
# ----------------------------------------------------------------------
def fig5_4_malicious_ratings(
    base: Optional[ScenarioConfig] = None,
    *,
    malicious_levels: Sequence[float] = (0.1, 0.2, 0.3, 0.4),
    seeds: Sequence[int] = (1, 2),
    sample_interval: Optional[float] = None,
    workers: Optional[int] = 1,
) -> FigureResult:
    """Average rating of malicious nodes among non-malicious observers.

    Expected shape (paper): the average falls over time as the DRM
    spreads bad ratings, and falls *faster* with more malicious nodes
    (more chances to encounter and expose one).
    """
    config = base if base is not None else ScenarioConfig.small()
    interval = (
        sample_interval if sample_interval is not None
        else max(config.duration / 12.0, 1.0)
    )
    result = FigureResult(
        figure_id="5.4",
        title="Average Rating of Malicious Nodes in Non-Malicious Nodes vs Time",
        x_label="time (s)",
        y_label="average rating (0-5)",
        notes="rating ceiling r_m = 5; unknown nodes default to "
              f"{config.incentive.default_rating}",
    )
    for level in malicious_levels:
        point = config.replace(malicious_fraction=level)
        per_time: Dict[float, List[float]] = {}
        sampling = dict(sample_ratings=True, rating_sample_interval=interval)
        if workers == 1:
            runs = [
                run_scenario(point, INCENTIVE_SCHEME, seed, **sampling)
                for seed in seeds
            ]
        else:
            from repro.experiments.parallel import (
                RunSpec,
                ensure_success,
                run_specs,
            )

            runs = ensure_success(run_specs(
                [RunSpec(point, INCENTIVE_SCHEME, seed, dict(sampling))
                 for seed in seeds],
                workers=workers,
            ))
        for run in runs:
            for time, ratings in run.metrics.rating_samples:
                if ratings:
                    per_time.setdefault(time, []).append(
                        _mean(list(ratings.values()))
                    )
        series_name = f"malicious={level:.0%}"
        result.series[series_name] = [
            (time, _mean(values))
            for time, values in sorted(per_time.items())
        ]
    return result


# ----------------------------------------------------------------------
# Figure 5.5 — MDR vs number of users
# ----------------------------------------------------------------------
def fig5_5_mdr_vs_users(
    base: Optional[ScenarioConfig] = None,
    *,
    user_grid: Sequence[int] = (30, 60, 90),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: Optional[int] = 1,
) -> FigureResult:
    """MDR as the population grows in a fixed area.

    Expected shape (paper): both schemes improve with density, and the
    ChitChat-vs-incentive gap narrows as carriers multiply (the paper's
    gap nearly vanishes at 1500 users).
    """
    config = base if base is not None else ScenarioConfig.small()
    result = FigureResult(
        figure_id="5.5",
        title="MDR vs Number of Users",
        x_label="users",
        y_label="MDR",
        series={scheme: [] for scheme in PAPER_PAIR},
    )
    for users in user_grid:
        point = config.replace(n_nodes=int(users))
        traces: Dict[int, object] = {}
        for scheme in PAPER_PAIR:
            runs = _averaged_runs(point, scheme, seeds, traces,
                                  workers=workers)
            result.series[scheme].append(
                (float(users), _mean([r.mdr for r in runs]))
            )
    return result


# ----------------------------------------------------------------------
# Figure 5.6 — priority-segmented MDR
# ----------------------------------------------------------------------
def fig5_6_priority_mdr(
    base: Optional[ScenarioConfig] = None,
    *,
    selfish_levels: Sequence[float] = (0.2, 0.4),
    seeds: Sequence[int] = DEFAULT_SEEDS,
    workers: Optional[int] = 1,
) -> FigureResult:
    """MDR per priority class at 20 % and 40 % selfish nodes.

    Expected shape (paper): the incentive scheme delivers a larger share
    of HIGH-priority messages than ChitChat (bigger promises attract
    forwarders), at the cost of the LOW class.
    """
    config = base if base is not None else ScenarioConfig.small()
    result = FigureResult(
        figure_id="5.6",
        title="Priority Segmented MDR vs Selfish Percent of Nodes",
        x_label="priority (1=high, 3=low)",
        y_label="MDR",
    )
    traces: Dict[int, object] = {}
    for selfish in selfish_levels:
        point = config.replace(selfish_fraction=selfish)
        for scheme in PAPER_PAIR:
            runs = _averaged_runs(point, scheme, seeds, traces,
                                  workers=workers)
            by_priority: Dict[Priority, List[float]] = {
                p: [] for p in Priority
            }
            for run in runs:
                for priority, value in run.metrics.mdr_by_priority().items():
                    by_priority[priority].append(value)
            name = f"{scheme} selfish={selfish:.0%}"
            result.series[name] = [
                (float(int(priority)), _mean(values))
                for priority, values in sorted(by_priority.items())
            ]
    return result


# ----------------------------------------------------------------------
# Table 5.1 — simulation parameters
# ----------------------------------------------------------------------
def table5_1_parameters(config: Optional[ScenarioConfig] = None) -> str:
    """Render the scenario parameters in the paper's Table 5.1 layout."""
    scenario = config if config is not None else ScenarioConfig.paper_scale()
    return format_table(
        ["Configuration", "Default Values"],
        [list(row) for row in scenario.table_rows()],
        title="Table 5.1. Simulation Parameters",
    )
