"""Scale benchmark suite: end-to-end throughput at 10k/100k/1M nodes.

``repro-dtn bench scale`` times full incentive-scheme runs on
constant-density blow-ups of the paper's Table 5.1 scenario (100 nodes
per km², the paper's density) and writes ``BENCH_scale.json``.  The
report uses the same schema as the micro suite
(:mod:`repro.experiments.bench`), so the same calibrated
:func:`~repro.experiments.bench.compare` gate CI already runs for the
micro benchmarks gates scale regressions too.

Tiers
-----
``1k``
    1,000 nodes, ten simulated minutes — the CI smoke tier: cheap
    enough to run per PR with ``--audit``, gating the batched SoA
    contact path on a clean conservation replay.
``10k``
    10,000 nodes, one simulated hour — the PR-gating tier.  Also the
    tier the conservation audit replays (``--audit``): the run is
    repeated with a JSONL trace and every settlement is checked against
    the ledger invariants.
``100k``
    100,000 nodes, ten simulated minutes — the contact-path stress
    tier.  Too heavy for per-PR CI; run when touching detection or the
    world core.
``1m``
    1,000,000 nodes, one simulated minute — opt-in smoke proving the
    SoA arrays and sharded detection survive seven figures.  Expect
    minutes of wall clock and several GB of RSS.

Baseline extrapolation
----------------------
The acceptance claim ("throughput-per-node vs the object-core
baseline") needs an object-core wall time at 10k nodes, but the legacy
per-object core is too slow to measure there directly.  Instead,
measured object-core points at feasible populations are fitted with a
power law ``wall = c * n**k`` (least squares in log space) and
evaluated at the target population.  :func:`fit_power_law` and
:func:`extrapolate` implement this; the committed ``BENCH_scale.json``
records the measured points, the fit, and the resulting improvement
factor so the claim is auditable.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.bench import SCHEMA_VERSION, machine_info

__all__ = [
    "SCALE_TIERS",
    "scale_config",
    "scale_probe",
    "fit_power_law",
    "extrapolate",
    "run_scale_suite",
]

#: Square metres per node at the paper's density (500 nodes / 5 km²).
_M2_PER_NODE = 1e4

#: tier name -> (n_nodes, simulated seconds, benchmark name)
SCALE_TIERS: Dict[str, Tuple[int, float, str]] = {
    "1k": (1_000, 600.0, "scale_1k_10min"),
    "10k": (10_000, 3_600.0, "scale_10k_1h"),
    "100k": (100_000, 600.0, "scale_100k_10min"),
    "1m": (1_000_000, 60.0, "scale_1m_smoke"),
}


def scale_config(
    n_nodes: int,
    duration: float,
    *,
    world_core: str = "soa",
    detect_regions: int = 1,
    detect_workers: int = 1,
):
    """Table 5.1 physics at ``n_nodes``, density held at the paper's.

    The arena grows with the population (10,000 m² per node), keeping
    per-node contact rates — and therefore per-node work — comparable
    across tiers, which is what makes throughput-per-node a meaningful
    cross-tier number.
    """
    from repro.experiments.config import ScenarioConfig

    side = math.sqrt(n_nodes * _M2_PER_NODE)
    return ScenarioConfig.paper_scale(
        n_nodes=n_nodes,
        area=(side, side),
        duration=duration,
        ttl=duration,
        world_core=world_core,
        detect_regions=detect_regions,
        detect_workers=detect_workers,
    )


def scale_probe(
    n_nodes: int,
    duration: float,
    *,
    scheme: str = "incentive",
    seed: int = 1,
    world_core: str = "soa",
    detect_regions: int = 1,
    detect_workers: int = 1,
    trace_path: Optional[str] = None,
) -> Dict[str, float]:
    """Time one full run; return wall clock and throughput numbers.

    The default on-disk trace cache is suspended so contact detection
    is always timed (the same fairness rule as the micro suite's paper
    probe).

    Returns keys: ``wall_seconds``, ``mdr``, ``n_nodes``,
    ``sim_seconds``, ``node_sim_seconds_per_wall_second`` (the
    throughput the tiers gate).
    """
    from repro.experiments import trace_cache
    from repro.experiments.runner import run_scenario

    config = scale_config(
        n_nodes, duration,
        world_core=world_core,
        detect_regions=detect_regions,
        detect_workers=detect_workers,
    )
    previous = trace_cache.get_default_cache()
    trace_cache.set_default_cache(None)
    try:
        start = time.perf_counter()
        result = run_scenario(
            config, scheme, seed=seed, trace_path=trace_path
        )
        wall = time.perf_counter() - start
    finally:
        trace_cache.set_default_cache(previous)
    return {
        "wall_seconds": wall,
        "mdr": result.mdr,
        "n_nodes": float(n_nodes),
        "sim_seconds": duration,
        "node_sim_seconds_per_wall_second": n_nodes * duration / wall,
    }


def fit_power_law(
    points: Sequence[Tuple[float, float]]
) -> Tuple[float, float]:
    """Least-squares fit of ``wall = c * n**k`` in log space.

    Args:
        points: ``(n_nodes, wall_seconds)`` measurements (>= 2, all
            positive).

    Returns:
        ``(c, k)``.
    """
    if len(points) < 2:
        raise ConfigurationError(
            f"power-law fit needs >= 2 points, got {len(points)}"
        )
    n = np.asarray([p[0] for p in points], dtype=np.float64)
    wall = np.asarray([p[1] for p in points], dtype=np.float64)
    if np.any(n <= 0) or np.any(wall <= 0):
        raise ConfigurationError("fit points must be positive")
    k, log_c = np.polyfit(np.log(n), np.log(wall), 1)
    return float(np.exp(log_c)), float(k)


def extrapolate(
    points: Sequence[Tuple[float, float]], n_nodes: float
) -> float:
    """Predicted wall seconds at ``n_nodes`` from the power-law fit."""
    c, k = fit_power_law(points)
    return c * float(n_nodes) ** k


def run_scale_suite(
    *,
    tiers: Sequence[str] = ("10k",),
    audit: bool = False,
    baseline_points: Optional[Sequence[Tuple[float, float]]] = None,
    baseline_label: Optional[str] = None,
    detect_regions: int = 1,
    detect_workers: int = 1,
    audit_dir: Optional[str] = None,
) -> Dict[str, object]:
    """Run the requested tiers and build the ``BENCH_scale.json`` dict.

    Args:
        tiers: Tier names from :data:`SCALE_TIERS`, run in the given
            order.
        audit: Re-run the first tier with a JSONL trace and replay it
            through the conservation auditor; the verdict lands in the
            report's ``audit`` block.
        baseline_points: ``(n_nodes, wall_seconds)`` measurements of
            the object-core baseline; when given, the report's
            ``baseline`` block records them plus the power-law
            extrapolation to each tier and the throughput-improvement
            factor.
        baseline_label: Short provenance note for the baseline points
            (e.g. the commit they were measured at).
        detect_regions / detect_workers: Spatial sharding for every
            probe (1/1 = classic single-sweep detection).

    Returns:
        A report dict in the micro suite's schema plus ``scale``,
        ``audit`` and ``baseline`` blocks.
    """
    unknown = [t for t in tiers if t not in SCALE_TIERS]
    if unknown:
        raise ConfigurationError(
            f"unknown scale tiers {unknown!r}; "
            f"known: {sorted(SCALE_TIERS)}"
        )
    if not tiers:
        raise ConfigurationError("at least one tier is required")

    benchmarks: Dict[str, Dict[str, float]] = {}
    scale: Dict[str, Dict[str, float]] = {}
    for tier in tiers:
        n_nodes, duration, name = SCALE_TIERS[tier]
        probe = scale_probe(
            n_nodes, duration,
            detect_regions=detect_regions,
            detect_workers=detect_workers,
        )
        benchmarks[name] = {
            "mean": probe["wall_seconds"],
            "stddev": 0.0,
            "best": probe["wall_seconds"],
            "rounds": 1,
        }
        scale[name] = probe

    report: Dict[str, object] = {
        "schema": SCHEMA_VERSION,
        "quick": False,
        "machine": machine_info(),
        "benchmarks": benchmarks,
        "scale": scale,
    }

    if audit:
        report["audit"] = _run_audit_tier(
            tiers[0],
            detect_regions=detect_regions,
            detect_workers=detect_workers,
            audit_dir=audit_dir,
        )

    if baseline_points:
        points = [(float(n), float(w)) for n, w in baseline_points]
        c, k = fit_power_law(points)
        baseline: Dict[str, object] = {
            "core": "object",
            "label": baseline_label or "measured object-core points",
            "points": [
                {"n_nodes": n, "wall_seconds": w} for n, w in points
            ],
            "fit": {"c": c, "k": k, "model": "wall = c * n**k"},
            "extrapolated": {},
        }
        for tier in tiers:
            n_nodes, duration, name = SCALE_TIERS[tier]
            predicted = extrapolate(points, n_nodes)
            # Baseline points are 1h runs; rescale linearly in
            # simulated time for shorter tiers.
            predicted *= duration / 3_600.0
            entry = {
                "wall_seconds": predicted,
                "improvement": predicted / scale[name]["wall_seconds"],
            }
            baseline["extrapolated"][name] = entry
        report["baseline"] = baseline
    return report


def _run_audit_tier(
    tier: str,
    *,
    detect_regions: int,
    detect_workers: int,
    audit_dir: Optional[str],
) -> Dict[str, object]:
    """Trace the tier's run and replay the conservation auditor."""
    import os
    import tempfile

    from repro.trace.audit import replay_trace

    n_nodes, duration, name = SCALE_TIERS[tier]
    directory = audit_dir or tempfile.mkdtemp(prefix="bench_scale_audit_")
    trace_path = os.path.join(directory, f"{name}.jsonl")
    probe = scale_probe(
        n_nodes, duration,
        detect_regions=detect_regions,
        detect_workers=detect_workers,
        trace_path=trace_path,
    )
    audit_report = replay_trace(trace_path)
    verdict: Dict[str, object] = {
        "tier": name,
        "ok": bool(audit_report.ok),
        "records": int(audit_report.records_read),
        "trace_path": trace_path,
        "wall_seconds_traced": probe["wall_seconds"],
    }
    if audit_dir is None:
        # Scratch trace: can be hundreds of MB at 10k nodes.
        try:
            os.remove(trace_path)
            os.rmdir(directory)
        except OSError:
            pass
        verdict["trace_path"] = None
    return verdict
