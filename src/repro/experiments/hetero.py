"""Heterogeneous-population comparison sweep.

The population layer's headline experiment: run the same 3-class
scenario (pedestrian / vehicular / infrastructure preset mix) under
several schemes and break every run's delivery, cost and token-balance
metrics down *per class* — who gets served, who does the relaying, and
who ends up holding the tokens.  Every traced run is replayed through
the conservation auditor, so a scheme whose class-tuned pricing leaks
tokens fails the sweep rather than producing a quietly wrong figure.

``repro-dtn hetero`` is a thin CLI wrapper around :func:`hetero_sweep`.
"""

from __future__ import annotations

import os
import tempfile
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, TraceError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import RunResult, build_contact_trace, run_scenario
from repro.trace.audit import replay_trace

__all__ = ["HETERO_SCHEMES", "hetero_sweep", "breakdown_rows"]

#: Default scheme line-up: the paper's scheme as the homogeneous-pricing
#: baseline, plus both class-aware schemes the population layer added.
HETERO_SCHEMES = ("incentive", "incentive-chitchat-hetero", "minority-game")


def hetero_sweep(
    base: Optional[ScenarioConfig] = None,
    *,
    schemes: Sequence[str] = HETERO_SCHEMES,
    seeds: Sequence[int] = (0,),
    trace_dir: Optional[str] = None,
    audit: bool = True,
) -> List[Dict[str, object]]:
    """Run ``schemes x seeds`` over one heterogeneous scenario.

    Args:
        base: The scenario; defaults to :meth:`ScenarioConfig.hetero`
            (the small scenario over the 3-class preset mix).  Must
            resolve to more than one class.
        schemes: Schemes to compare on identical contacts.
        seeds: Seeds to run per scheme.
        trace_dir: Directory for the JSONL event traces (a temporary
            directory per run when omitted and ``audit`` is on).
        audit: Replay every trace through the conservation auditor and
            attach the verdict; any violation raises.

    Returns:
        One record per ``(scheme, seed)``:
        ``{"scheme", "seed", "result", "summary", "per_class",
        "audit_ok"}`` where ``per_class`` is the
        :meth:`~repro.experiments.runner.RunResult.class_breakdown`
        mapping.

    Raises:
        ConfigurationError: When ``base`` is not heterogeneous or
            ``schemes``/``seeds`` is empty.
        TraceError: When a replayed trace violates conservation.
    """
    if base is None:
        base = ScenarioConfig.hetero()
    if len(base.resolved_population()) < 2:
        raise ConfigurationError(
            "hetero_sweep needs a heterogeneous population; "
            "use ScenarioConfig.hetero() or set config.population"
        )
    if not schemes:
        raise ConfigurationError("schemes must be non-empty")
    if not seeds:
        raise ConfigurationError("seeds must be non-empty")

    records: List[Dict[str, object]] = []
    for seed in seeds:
        # One contact trace per seed, shared by every scheme: the
        # comparison is on identical contacts, like the paper's figures.
        contacts = build_contact_trace(base, seed)
        for scheme in schemes:
            with tempfile.TemporaryDirectory() as scratch:
                directory = trace_dir if trace_dir is not None else scratch
                trace_path = None
                if audit or trace_dir is not None:
                    trace_path = os.path.join(
                        directory, f"hetero-{scheme}-seed{seed}.jsonl"
                    )
                result = run_scenario(
                    base, scheme, seed,
                    trace=contacts,
                    trace_path=trace_path,
                )
                audit_ok = None
                if audit and trace_path is not None:
                    verdict = replay_trace(trace_path)
                    if not verdict.ok:
                        raise TraceError(
                            f"{scheme} seed {seed}: trace audit found "
                            f"{len(verdict.violations)} violation(s); "
                            f"first: {verdict.violations[0]}"
                        )
                    audit_ok = True
            records.append(
                {
                    "scheme": scheme,
                    "seed": seed,
                    "result": result,
                    "summary": result.summary(),
                    "per_class": result.class_breakdown(),
                    "audit_ok": audit_ok,
                }
            )
    return records


def breakdown_rows(records: Sequence[Dict[str, object]]) -> List[tuple]:
    """Flatten sweep records into ``(scheme, seed, class, metric rows)``.

    A printing/figure helper: one tuple per ``(record, class)`` with the
    headline per-class numbers in a stable order.
    """
    rows: List[tuple] = []
    for record in records:
        for name, metrics in sorted(record["per_class"].items()):
            rows.append(
                (
                    record["scheme"],
                    record["seed"],
                    name,
                    int(metrics["nodes"]),
                    metrics["mdr"],
                    int(metrics["delivered"]),
                    int(metrics["intended"]),
                    metrics["average_delay"],
                    metrics.get("mean_balance"),
                )
            )
    return rows
