"""Robustness sweeps: the paper's comparison under injected faults.

The evaluation in the paper assumes ideal contacts; these sweeps rerun
the central "incentive vs plain ChitChat" comparison while dialing up
link-layer loss and node churn (see :mod:`repro.faults`), asking two
questions the paper leaves open:

1. **Graceful degradation** — how fast does the delivery ratio fall,
   and does bounded retransmission buy any of it back?
2. **Ledger integrity** — under every fault mix, the token supply must
   be exactly conserved, escrow must drain to zero by the end of the
   run, and no settlement key may ever pay out twice
   (``double_payments == 0``); ``duplicate_settlements`` counts the
   duplicate attempts the idempotence machinery *blocked*, which is the
   interesting signal, not a failure.

Each sweep record carries the seed-averaged delivery ratio and overhead
plus the worst-case integrity counters across its seeds, so a single
``assert record["double_payments"] == 0`` covers the whole grid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_contact_trace, run_scenario
from repro.experiments.trace_cache import TraceCache
from repro.faults import FaultConfig
from repro.schemes import tagged

__all__ = ["fault_grid_configs", "fault_sweep"]


def fault_grid_configs(
    base: ScenarioConfig,
    loss_levels: Sequence[float],
    *,
    corruption_fraction: float = 0.0,
    churn_mean_uptime: float = 0.0,
    churn_mean_downtime: float = 600.0,
    churn_policy: str = "wipe",
    max_retransmissions: int = 0,
    retransmit_backoff: float = 30.0,
) -> List[ScenarioConfig]:
    """One scenario per loss level, with shared churn/retry settings.

    Args:
        base: Base scenario; its mobility fields are untouched, so all
            grid points share one cached contact trace per seed.
        loss_levels: Total per-transfer fault probabilities to sweep
            (``0.0`` yields a genuinely fault-free config).
        corruption_fraction: Portion of each level attributed to
            corruption rather than loss (``0.3`` at level ``0.2`` means
            14% loss + 6% corruption).
        churn_mean_uptime: Mean exponential uptime, seconds; ``0``
            disables churn at every grid point.
        churn_mean_downtime: Mean exponential outage, seconds.
        churn_policy: ``"wipe"`` or ``"persist"`` (see
            :class:`~repro.faults.FaultConfig`).
        max_retransmissions: Retry budget forwarded to the routers.
        retransmit_backoff: Base retry backoff, seconds.
    """
    if not 0.0 <= corruption_fraction <= 1.0:
        raise ConfigurationError(
            f"corruption_fraction must be in [0, 1], got {corruption_fraction!r}"
        )
    configs = []
    for level in loss_levels:
        if not 0.0 <= level <= 1.0:
            raise ConfigurationError(
                f"loss levels must be in [0, 1], got {level!r}"
            )
        faults = FaultConfig(
            loss_probability=level * (1.0 - corruption_fraction),
            corruption_probability=level * corruption_fraction,
            mean_uptime=churn_mean_uptime,
            mean_downtime=churn_mean_downtime,
            churn_policy=churn_policy,
        )
        configs.append(
            base.replace(
                faults=faults if faults.enabled else None,
                max_retransmissions=max_retransmissions,
                retransmit_backoff=retransmit_backoff,
            )
        )
    return configs


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def fault_sweep(
    base: ScenarioConfig,
    *,
    loss_levels: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    schemes: Sequence[str] = tagged("paper-comparison"),
    seeds: Sequence[int] = (0,),
    corruption_fraction: float = 0.0,
    churn_mean_uptime: float = 0.0,
    churn_mean_downtime: float = 600.0,
    churn_policy: str = "wipe",
    max_retransmissions: int = 0,
    retransmit_backoff: float = 30.0,
    workers: Optional[int] = 1,
    trace_cache: Optional[TraceCache] = None,
) -> List[Dict[str, object]]:
    """Delivery and ledger integrity vs fault intensity, per scheme.

    Returns:
        One record per ``(loss_level, scheme)``:

        * ``value`` / ``scheme`` — the grid point;
        * ``mdr`` / ``overhead`` — seed-averaged delivery ratio and
          relay transmissions per delivery (the cost of robustness);
        * ``transfers_lost`` / ``transfers_corrupted`` /
          ``node_crashes`` / ``retransmissions`` — seed-averaged fault
          activity, to confirm the injector actually fired;
        * ``stranded_escrow`` / ``supply_error`` / ``double_payments``
          — worst case across seeds; all must be exactly 0 for token
          schemes (and are reported as 0 for ledgerless schemes);
        * ``duplicate_settlements`` — total blocked duplicates across
          seeds (informational);
        * ``results`` — the per-seed
          :class:`~repro.experiments.runner.RunResult` or
          :class:`~repro.experiments.parallel.RunDigest` objects.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("seeds must be non-empty")
    configs = fault_grid_configs(
        base,
        loss_levels,
        corruption_fraction=corruption_fraction,
        churn_mean_uptime=churn_mean_uptime,
        churn_mean_downtime=churn_mean_downtime,
        churn_policy=churn_policy,
        max_retransmissions=max_retransmissions,
        retransmit_backoff=retransmit_backoff,
    )

    if workers == 1:
        grouped: Dict[object, List[object]] = {}
        traces = {
            seed: build_contact_trace(base, seed, cache=trace_cache)
            for seed in seeds
        }
        for index, config in enumerate(configs):
            for scheme in schemes:
                grouped[(index, scheme)] = [
                    run_scenario(
                        config, scheme, seed, trace=traces[seed]
                    )
                    for seed in seeds
                ]
    else:
        from repro.experiments.parallel import (
            RunSpec,
            ensure_success,
            run_specs,
        )

        specs = []
        order = []
        for index, config in enumerate(configs):
            for scheme in schemes:
                for seed in seeds:
                    specs.append(RunSpec(config, scheme, seed))
                    order.append((index, scheme))
        digests = ensure_success(
            run_specs(specs, workers=workers, cache=trace_cache)
        )
        grouped = {}
        for key, digest in zip(order, digests):
            grouped.setdefault(key, []).append(digest)

    records: List[Dict[str, object]] = []
    for index, level in enumerate(loss_levels):
        for scheme in schemes:
            results = grouped[(index, scheme)]
            summaries = [r.summary() for r in results]
            fault_summaries = [r.fault_summary() for r in results]
            delivered = [s["delivered_pairs"] for s in summaries]
            relayed = [s["relay_receptions"] for s in summaries]
            overhead = _mean([
                relays / max(pairs, 1.0)
                for relays, pairs in zip(relayed, delivered)
            ])
            records.append(
                {
                    "value": float(level),
                    "scheme": scheme,
                    "mdr": _mean([s["mdr"] for s in summaries]),
                    "overhead": overhead,
                    "transfers_lost": _mean(
                        [f["transfers_lost"] for f in fault_summaries]
                    ),
                    "transfers_corrupted": _mean(
                        [f["transfers_corrupted"] for f in fault_summaries]
                    ),
                    "node_crashes": _mean(
                        [f["node_crashes"] for f in fault_summaries]
                    ),
                    "retransmissions": _mean(
                        [f["retransmissions"] for f in fault_summaries]
                    ),
                    "escrow_reclaimed": _mean(
                        [f["escrow_reclaimed"] for f in fault_summaries]
                    ),
                    "stranded_escrow": max(
                        f.get("stranded_escrow", 0.0)
                        for f in fault_summaries
                    ),
                    "supply_error": max(
                        (abs(f.get("supply_error", 0.0))
                         for f in fault_summaries),
                    ),
                    "double_payments": sum(
                        f.get("double_payments", 0.0)
                        for f in fault_summaries
                    ),
                    "duplicate_settlements": sum(
                        f.get("duplicate_settlements", 0.0)
                        for f in fault_summaries
                    ),
                    "results": results,
                }
            )
    return records
