"""Parallel experiment execution.

Every figure in the paper's evaluation averages five seeded runs, and
the sweeps behind Figs. 5.1-5.6 multiply that by a parameter grid and
several schemes.  Individual runs are completely independent — each one
derives all of its randomness from its own
:class:`~repro.sim.rng.RandomStreams` master seed — so they fan out over
a :class:`~concurrent.futures.ProcessPoolExecutor` without changing a
single draw: parallel results are **bit-identical** to serial ones.

The unit of work is a picklable :class:`RunSpec`.  Workers return a
:class:`RunDigest` — the run's summary dict plus the per-priority MDR
split and rating samples the figure generators need — rather than the
full :class:`~repro.experiments.runner.RunResult`, whose router graph is
not worth shipping across process boundaries.  A crashed worker returns
a :class:`RunFailure` naming the ``(scheme, seed)`` that died instead of
poisoning the pool; :func:`ensure_success` turns failures into one
:class:`~repro.errors.ExperimentError` listing every casualty.

``workers=1`` (the default everywhere) bypasses the pool entirely and
runs in-process; ``workers=None`` means ``os.cpu_count()``.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback as traceback_module
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ExperimentError
from repro.experiments.config import ScenarioConfig
from repro.experiments.trace_cache import (
    TraceCache,
    get_default_cache,
    set_default_cache,
)
from repro.messages.message import Priority

__all__ = [
    "RunSpec",
    "MetricsDigest",
    "RunDigest",
    "RunFailure",
    "run_specs",
    "ensure_success",
    "resolve_workers",
]


@dataclass(frozen=True)
class RunSpec:
    """One picklable unit of work: a single ``(config, scheme, seed)`` run.

    Attributes:
        config: The scenario to simulate.
        scheme: One of :data:`~repro.experiments.runner.SCHEMES`.
        seed: Master seed for the run's :class:`RandomStreams`.
        run_kwargs: Extra keyword arguments forwarded to
            :func:`~repro.experiments.runner.run_scenario` (for example a
            pre-built ``trace`` or ``sample_ratings=True``).
    """

    config: ScenarioConfig
    scheme: str
    seed: int
    run_kwargs: Dict[str, object] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Human-readable tag used in failure reports."""
        return f"({self.scheme}, seed={self.seed})"


@dataclass(frozen=True)
class MetricsDigest:
    """The picklable slice of a run's metrics that experiments consume.

    Mirrors the :class:`~repro.metrics.collector.MetricsCollector`
    accessors the figure generators call, so digests and full results
    are interchangeable in aggregation code.
    """

    summary_data: Dict[str, float]
    mdr_by_priority_data: Dict[Priority, float]
    rating_samples: Tuple[Tuple[float, Dict[int, float]], ...] = ()
    fault_summary_data: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> Dict[str, float]:
        """The run's headline metrics (a fresh copy)."""
        return dict(self.summary_data)

    def fault_summary(self) -> Dict[str, float]:
        """Robustness counters (``RunResult.fault_summary`` mirror)."""
        return dict(self.fault_summary_data)

    def mdr_by_priority(self) -> Dict[Priority, float]:
        """MDR split by priority class (Fig. 5.6)."""
        return dict(self.mdr_by_priority_data)

    def message_delivery_ratio(self) -> float:
        """The run's overall MDR."""
        return self.summary_data["mdr"]


@dataclass(frozen=True)
class RunDigest:
    """A completed run, reduced to what crosses process boundaries.

    Attributes:
        attempts: How many executions this digest took (1 = first try;
            2 or 3 mean the run initially failed and a retry succeeded).
    """

    scheme: str
    seed: int
    metrics: MetricsDigest
    attempts: int = 1
    #: Where the run's event trace was written (None when untraced);
    #: lets callers collect per-worker trace files after a sweep.
    trace_path: Optional[str] = None

    @property
    def mdr(self) -> float:
        """Message delivery ratio of this run."""
        return self.metrics.summary_data["mdr"]

    @property
    def traffic(self) -> int:
        """Completed transfers (the paper's traffic measure)."""
        return int(self.metrics.summary_data["transfers_completed"])

    def summary(self) -> Dict[str, float]:
        """Headline metrics, identical to ``RunResult.summary()``."""
        return self.metrics.summary()

    def fault_summary(self) -> Dict[str, float]:
        """Robustness counters, identical to ``RunResult.fault_summary()``."""
        return self.metrics.fault_summary()


@dataclass(frozen=True)
class RunFailure:
    """A run that raised instead of completing.

    Attributes:
        scheme: The failing scheme.
        seed: The failing seed.
        error: ``"ExceptionType: message"`` of the failure.
        traceback: Full worker-side traceback for debugging.
        attempts: Total executions tried (including retries) before
            giving up.
    """

    scheme: str
    seed: int
    error: str
    traceback: str = ""
    attempts: int = 1

    @property
    def label(self) -> str:
        """Human-readable tag used in failure reports."""
        return f"({self.scheme}, seed={self.seed})"


def digest_of(result) -> RunDigest:
    """Reduce a :class:`RunResult` to its picklable digest."""
    return RunDigest(
        scheme=result.scheme,
        seed=result.seed,
        metrics=MetricsDigest(
            summary_data=result.summary(),
            mdr_by_priority_data=result.metrics.mdr_by_priority(),
            rating_samples=tuple(
                (time, dict(ratings))
                for time, ratings in result.metrics.rating_samples
            ),
            fault_summary_data=result.fault_summary(),
        ),
        trace_path=result.trace_path,
    )


def execute_spec(spec: RunSpec) -> Union[RunDigest, RunFailure]:
    """Execute one spec, catching any failure into a :class:`RunFailure`.

    This is the worker entry point; it must stay a module-level function
    so the pool can pickle it.
    """
    from repro.experiments.runner import run_scenario

    try:
        result = run_scenario(
            spec.config, spec.scheme, spec.seed, **spec.run_kwargs
        )
        return digest_of(result)
    except Exception as exc:
        return RunFailure(
            scheme=spec.scheme,
            seed=spec.seed,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback_module.format_exc(),
        )


def _worker_initializer(cache_dir: Optional[str]) -> None:
    """Install the shared trace cache in a fresh worker process."""
    if cache_dir:
        set_default_cache(TraceCache(cache_dir))


def resolve_workers(workers: Optional[int]) -> int:
    """Normalise a ``workers`` argument: None means ``os.cpu_count()``."""
    if workers is None:
        return os.cpu_count() or 1
    count = int(workers)
    if count < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers!r}")
    return count


def _result_or_failure(future, spec: RunSpec) -> Union[RunDigest, RunFailure]:
    """Unwrap a future, mapping pool plumbing errors to RunFailure."""
    try:
        return future.result()
    except Exception as exc:
        # execute_spec never raises, so this is pool plumbing:
        # a worker died hard or the spec failed to pickle.
        return RunFailure(
            scheme=spec.scheme,
            seed=spec.seed,
            error=f"{type(exc).__name__}: {exc}",
        )


def _backoff(retry_backoff: float, round_index: int) -> None:
    """Sleep before retry round ``round_index`` (exponential)."""
    delay = retry_backoff * (2 ** round_index)
    if delay > 0:
        time.sleep(delay)


def run_specs(
    specs: Sequence[RunSpec],
    *,
    workers: Optional[int] = None,
    cache: Optional[TraceCache] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.5,
) -> List[Union[RunDigest, RunFailure]]:
    """Execute ``specs``, preserving order, optionally in parallel.

    Failed specs are retried up to ``max_retries`` times with
    exponential backoff — transient breakage (a worker killed by the
    OOM killer, a torn cache entry) heals on a clean re-run, while a
    deterministic bug simply fails again and is reported once retries
    are exhausted.  Each outcome records how many executions it took in
    its ``attempts`` field.

    Args:
        specs: Units of work; results come back in the same order.
        workers: Process count; ``1`` runs in-process (no pool, no
            pickling), ``None`` uses every core.
        cache: Trace cache shared with the workers; defaults to the
            process-wide cache (``REPRO_TRACE_CACHE``).
        max_retries: Extra executions allowed per failing spec (0
            disables retrying).
        retry_backoff: Base sleep before the first retry, seconds;
            doubles each round.  ``0`` retries immediately (tests).

    Returns:
        One :class:`RunDigest` or :class:`RunFailure` per spec.
    """
    specs = list(specs)
    worker_count = resolve_workers(workers)
    if max_retries < 0:
        raise ExperimentError(
            f"max_retries must be >= 0, got {max_retries!r}"
        )
    if retry_backoff < 0:
        raise ExperimentError(
            f"retry_backoff must be >= 0, got {retry_backoff!r}"
        )
    if cache is None:
        cache = get_default_cache()
    if worker_count == 1 or len(specs) <= 1:
        outcomes: List[Union[RunDigest, RunFailure]] = []
        for spec in specs:
            attempts = 0
            while True:
                attempts += 1
                outcome = execute_spec(spec)
                if isinstance(outcome, RunDigest) or attempts > max_retries:
                    break
                _backoff(retry_backoff, attempts - 1)
            outcomes.append(dataclasses.replace(outcome, attempts=attempts))
        return outcomes

    cache_dir = str(cache.directory) if cache is not None else None
    attempts_used = [1] * len(specs)
    with ProcessPoolExecutor(
        max_workers=min(worker_count, len(specs)),
        initializer=_worker_initializer,
        initargs=(cache_dir,),
    ) as pool:
        futures = [pool.submit(execute_spec, spec) for spec in specs]
        outcomes = [
            _result_or_failure(future, spec)
            for spec, future in zip(specs, futures)
        ]
        for round_index in range(max_retries):
            failed = [
                i for i, outcome in enumerate(outcomes)
                if isinstance(outcome, RunFailure)
            ]
            if not failed:
                break
            _backoff(retry_backoff, round_index)
            retry_futures = {
                i: pool.submit(execute_spec, specs[i]) for i in failed
            }
            for i, future in retry_futures.items():
                outcomes[i] = _result_or_failure(future, specs[i])
                attempts_used[i] += 1
    return [
        dataclasses.replace(outcome, attempts=attempts)
        for outcome, attempts in zip(outcomes, attempts_used)
    ]


def ensure_success(
    outcomes: Sequence[Union[RunDigest, RunFailure]]
) -> List[RunDigest]:
    """Return the digests, raising if any outcome is a failure.

    Raises:
        ExperimentError: Listing every failing ``(scheme, seed)``.
    """
    failures = [o for o in outcomes if isinstance(o, RunFailure)]
    if failures:
        details = "; ".join(f"{f.label}: {f.error}" for f in failures)
        raise ExperimentError(
            f"{len(failures)} of {len(outcomes)} runs failed: {details}"
        )
    return list(outcomes)  # type: ignore[arg-type]
