"""Generic parameter sweeps over scenarios."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import (
    RunResult,
    build_contact_trace,
    run_scenario,
)
from repro.experiments.trace_cache import TraceCache
from repro.schemes import tagged

__all__ = ["sweep"]


def sweep(
    base: ScenarioConfig,
    vary: Callable[[ScenarioConfig, object], ScenarioConfig],
    values: Iterable[object],
    *,
    schemes: Sequence[str] = tagged("paper-comparison"),
    seeds: Sequence[int] = (0,),
    workers: Optional[int] = 1,
    trace_cache: Optional[TraceCache] = None,
    **run_kwargs,
) -> List[Dict[str, object]]:
    """Run a grid of ``values x schemes x seeds`` scenarios.

    Args:
        base: Base scenario configuration.
        vary: Function applying one sweep value to the base config, e.g.
            ``lambda cfg, v: cfg.replace(selfish_fraction=v)``.
        values: Sweep grid.
        schemes: Schemes to run at every grid point.
        seeds: Seeds to average over at every grid point.
        workers: ``1`` (default) runs the grid serially in-process; any
            other value fans the *whole* grid out over a process pool.
            In that mode the per-record ``results`` entries are
            :class:`~repro.experiments.parallel.RunDigest` objects
            (``mdr``/``traffic``/``summary()`` behave identically to
            :class:`RunResult`).
        trace_cache: Optional trace cache overriding the default; grid
            points that only differ in non-mobility fields (selfish
            fractions, token endowments, ...) share cached traces.
        **run_kwargs: Forwarded to :func:`run_scenario`.

    Returns:
        One record per ``(value, scheme)`` with the seed-averaged MDR
        and traffic, plus the individual per-seed results.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("seeds must be non-empty")
    values = list(values)

    if workers == 1:
        grouped: Dict[object, List[RunResult]] = {}
        for index, value in enumerate(values):
            config = vary(base, value)
            point_kwargs = dict(run_kwargs)
            for scheme in schemes:
                runs = []
                for seed in seeds:
                    if trace_cache is not None and "trace" not in run_kwargs:
                        point_kwargs["trace"] = build_contact_trace(
                            config, seed, cache=trace_cache
                        )
                    runs.append(
                        run_scenario(config, scheme, seed, **point_kwargs)
                    )
                grouped[(index, scheme)] = runs
    else:
        from repro.experiments.parallel import (
            RunSpec,
            ensure_success,
            run_specs,
        )

        specs = []
        order = []
        for index, value in enumerate(values):
            config = vary(base, value)
            for scheme in schemes:
                for seed in seeds:
                    specs.append(
                        RunSpec(config, scheme, seed, dict(run_kwargs))
                    )
                    order.append((index, scheme))
        digests = ensure_success(
            run_specs(specs, workers=workers, cache=trace_cache)
        )
        grouped = {}
        for key, digest in zip(order, digests):
            grouped.setdefault(key, []).append(digest)

    records: List[Dict[str, object]] = []
    for index, value in enumerate(values):
        for scheme in schemes:
            results = grouped[(index, scheme)]
            records.append(
                {
                    "value": value,
                    "scheme": scheme,
                    "mdr": sum(r.mdr for r in results) / len(results),
                    "traffic": sum(r.traffic for r in results) / len(results),
                    "results": results,
                }
            )
    return records
