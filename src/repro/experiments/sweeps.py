"""Generic parameter sweeps over scenarios."""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import RunResult, run_scenario

__all__ = ["sweep"]


def sweep(
    base: ScenarioConfig,
    vary: Callable[[ScenarioConfig, object], ScenarioConfig],
    values: Iterable[object],
    *,
    schemes: Sequence[str] = ("incentive", "chitchat"),
    seeds: Sequence[int] = (0,),
    **run_kwargs,
) -> List[Dict[str, object]]:
    """Run a grid of ``values x schemes x seeds`` scenarios.

    Args:
        base: Base scenario configuration.
        vary: Function applying one sweep value to the base config, e.g.
            ``lambda cfg, v: cfg.replace(selfish_fraction=v)``.
        values: Sweep grid.
        schemes: Schemes to run at every grid point.
        seeds: Seeds to average over at every grid point.
        **run_kwargs: Forwarded to :func:`run_scenario`.

    Returns:
        One record per ``(value, scheme)`` with the seed-averaged MDR
        and traffic, plus the individual :class:`RunResult` objects.
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("seeds must be non-empty")
    records: List[Dict[str, object]] = []
    for value in values:
        config = vary(base, value)
        for scheme in schemes:
            results: List[RunResult] = [
                run_scenario(config, scheme, seed, **run_kwargs)
                for seed in seeds
            ]
            records.append(
                {
                    "value": value,
                    "scheme": scheme,
                    "mdr": sum(r.mdr for r in results) / len(results),
                    "traffic": sum(r.traffic for r in results) / len(results),
                    "results": results,
                }
            )
    return records
