"""Scenario configuration mirroring the paper's Table 5.1.

``ScenarioConfig.paper_scale()`` reproduces the table exactly: 500
participants, a 200-keyword pool with 20 interests per node, 250 kBps
links, 100 m radius, 250 MB buffers, ~1 MB messages, a 5 km² area,
24 simulated hours, relay threshold 0.8 and 200 initial tokens.

Benchmarks and tests default to :meth:`ScenarioConfig.small` — the same
physics with fewer nodes, a smaller area and a shorter clock — because
the paper's comparisons are *relative* between schemes on a shared
scenario, so the shapes survive downscaling (see EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.incentive import IncentiveParams
from repro.errors import ConfigurationError
from repro.faults import FaultConfig
from repro.messages.generator import DEFAULT_PROFILES, MessageProfile
from repro.population import (
    NodeClassSpec,
    mixed_population,
    resolve_population,
    validate_population,
)

__all__ = ["ScenarioConfig"]


@dataclass(frozen=True)
class ScenarioConfig:
    """One complete simulation scenario.

    Attributes mirror Table 5.1 plus the knobs the experiments sweep
    (selfish / malicious fractions, initial tokens, user counts).
    """

    # Population & space (Table 5.1)
    n_nodes: int = 500
    area: Tuple[float, float] = (math.sqrt(5e6), math.sqrt(5e6))  # 5 km²
    duration: float = 86_400.0  # 24 hours
    keyword_pool: int = 200
    interests_per_node: int = 20

    # Radio & storage (Table 5.1)
    transmission_radius: float = 100.0
    link_speed: float = 250_000.0  # 250 kBps
    buffer_capacity: int = 250_000_000  # 250 MB

    # Mobility (paper: Random Waypoint at pedestrian speeds; the other
    # models support sensitivity studies)
    mobility: str = "random-waypoint"  # |"random-walk"|"manhattan"
    speed_range: Tuple[float, float] = (0.5, 1.5)
    pause_range: Tuple[float, float] = (0.0, 120.0)
    manhattan_block: float = 100.0
    scan_interval: float = 10.0

    # Workload
    message_interval: float = 30.0  # one new message per interval
    content_keywords: Tuple[int, int] = (4, 8)
    annotated_fraction: float = 0.6
    profiles: Tuple[MessageProfile, ...] = DEFAULT_PROFILES
    ttl: Optional[float] = 21_600.0  # 6 hours
    #: Optional per-node battery (joules); None = mains-refreshed, the
    #: paper's evaluation setting.
    battery_capacity: Optional[float] = None
    #: Reactive fragmentation (resume aborted transfers); off matches
    #: ONE's restart-from-zero behaviour.
    resume_partial_transfers: bool = False

    # Behaviours
    selfish_fraction: float = 0.0
    malicious_fraction: float = 0.0
    participation_probability: float = 0.1  # paper: on 1 of 10 encounters
    low_quality_probability: float = 0.8

    # Roles (battlefield example: few sergeants, many soldiers)
    role_levels: Tuple[str, ...] = ("sergeant", "soldier")
    role_fractions: Tuple[float, ...] = (0.1, 0.9)

    # Incentive mechanism (Table 5.1: threshold 0.8, 200 tokens)
    incentive: IncentiveParams = field(default_factory=IncentiveParams)

    # Protocol knobs
    chitchat_beta: float = 0.01
    chitchat_growth_scale: float = 0.01
    enrichment_enabled: bool = True
    honest_enrich_probability: float = 0.3
    malicious_enrich_probability: float = 0.8
    best_relay_only: bool = True

    # Robustness knobs (all off by default: fault-free runs stay
    # bit-identical to the committed golden results)
    #: Fault-injection configuration; ``None`` (or an all-zero config)
    #: disables the fault subsystem entirely.
    faults: Optional[FaultConfig] = None
    #: Retry budget per (receiver, message) for loss/corruption aborts.
    max_retransmissions: int = 0
    #: Base backoff before the first retry, seconds (doubles per retry).
    retransmit_backoff: float = 30.0

    # Observability
    #: Write a JSONL event trace of each run here (see
    #: :mod:`repro.trace`).  Multi-run commands derive one file per run
    #: via :func:`repro.trace.derive_trace_path`.  ``None`` (default)
    #: disables tracing; results are bit-identical either way.
    trace_path: Optional[str] = None

    # World core
    #: Which world implementation runs the scenario: ``"soa"`` (the
    #: struct-of-arrays core, default) or ``"object"`` (the legacy
    #: per-node-dict core).  The two are bit-identical by contract
    #: (``tests/test_world_soa_differential.py``); the SoA core is the
    #: one that scales.  Excluded from mobility/trace-cache keys.
    world_core: str = "soa"
    #: Spatial shard count for contact detection (>= 1).  ``1`` uses
    #: the classic single-sweep detector; higher values shard the arena
    #: into vertical strips (see :mod:`repro.mobility.regions`) with
    #: bit-identical results.  Excluded from trace-cache keys for the
    #: same reason.
    detect_regions: int = 1
    #: Worker processes for sharded detection (>= 1; only meaningful
    #: with ``detect_regions > 1``).
    detect_workers: int = 1

    # Scheme
    #: Pin the scenario to one registered scheme;
    #: :func:`~repro.experiments.runner.run_scenario` uses it when no
    #: scheme argument is given.  Validated against the scheme registry
    #: at construction time, so a typo fails when the config is built,
    #: not mid-run.  Excluded from mobility/trace-cache keys.
    scheme: Optional[str] = None

    # Population
    #: Heterogeneous node classes (see :mod:`repro.population`).  The
    #: empty tuple — the default — means one class derived from the
    #: scalar fields above, which therefore remain *validated views
    #: onto the default class*: every pre-population config, CLI flag
    #: and sweep keeps working (and stays bit-identical) unchanged.
    #: Class overrides left as ``None`` inherit the matching scalar.
    population: Tuple[NodeClassSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ConfigurationError("n_nodes must be >= 2")
        if self.duration <= 0:
            raise ConfigurationError("duration must be > 0")
        if self.keyword_pool < self.interests_per_node:
            raise ConfigurationError(
                "keyword_pool must be >= interests_per_node"
            )
        if self.message_interval <= 0:
            raise ConfigurationError("message_interval must be > 0")
        if self.mobility not in (
            "random-waypoint", "random-walk", "manhattan", "static",
        ):
            raise ConfigurationError(
                f"unknown mobility model {self.mobility!r}"
            )
        for range_field in ("speed_range", "pause_range"):
            lo, hi = getattr(self, range_field)
            if not 0.0 <= lo <= hi:
                raise ConfigurationError(
                    f"{range_field} must satisfy 0 <= min <= max, got "
                    f"{(lo, hi)!r}"
                )
        if self.scan_interval <= 0:
            raise ConfigurationError(
                f"scan_interval must be > 0, got {self.scan_interval!r}"
            )
        if self.transmission_radius <= 0:
            raise ConfigurationError(
                f"transmission_radius must be > 0, got "
                f"{self.transmission_radius!r}"
            )
        if self.link_speed <= 0:
            raise ConfigurationError(
                f"link_speed must be > 0, got {self.link_speed!r}"
            )
        if self.buffer_capacity <= 0:
            raise ConfigurationError(
                f"buffer_capacity must be > 0, got {self.buffer_capacity!r}"
            )
        for fraction_field in (
            "selfish_fraction", "malicious_fraction",
            "participation_probability", "low_quality_probability",
            "annotated_fraction",
        ):
            value = getattr(self, fraction_field)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{fraction_field} must be in [0, 1], got {value!r}"
                )
        if self.max_retransmissions < 0:
            raise ConfigurationError("max_retransmissions must be >= 0")
        validate_population(self.population)
        if self.world_core not in ("soa", "object"):
            raise ConfigurationError(
                f"world_core must be 'soa' or 'object', got "
                f"{self.world_core!r}"
            )
        if self.detect_regions < 1:
            raise ConfigurationError("detect_regions must be >= 1")
        if self.detect_workers < 1:
            raise ConfigurationError("detect_workers must be >= 1")
        if self.retransmit_backoff <= 0:
            raise ConfigurationError("retransmit_backoff must be > 0")
        if self.scheme is not None:
            # Imported lazily: repro.schemes pulls in the router catalog,
            # which this config module must not depend on at import time.
            from repro.schemes import resolve_scheme

            resolve_scheme(self.scheme)  # raises ConfigurationError

    # ------------------------------------------------------------------
    # Presets
    # ------------------------------------------------------------------
    @classmethod
    def paper_scale(cls, **overrides) -> "ScenarioConfig":
        """Table 5.1 exactly (500 nodes, 5 km², 24 h).  Heavy: minutes
        of wall-clock per run."""
        return cls(**overrides)

    @classmethod
    def small(cls, **overrides) -> "ScenarioConfig":
        """A laptop-friendly scenario with the same physics.

        Node density is kept near the paper's (100 nodes per km²):
        60 nodes in ~0.6 km², two simulated hours, a 60-keyword pool.
        Buffers and token endowments shrink with the workload so the
        same pressure points (buffer churn, token exhaustion) appear.
        """
        defaults = dict(
            n_nodes=60,
            area=(800.0, 800.0),
            duration=7_200.0,
            keyword_pool=60,
            interests_per_node=8,
            buffer_capacity=25_000_000,
            message_interval=40.0,
            ttl=3_600.0,
            # 100 tokens (~22 average awards): scaled so honest nodes
            # ride out payment/earning timing variance while persistent
            # net consumers (selfish nodes) exhaust their endowment
            # within the two simulated hours — the regime the paper's
            # 200-token/24-hour economy operates in.
            incentive=IncentiveParams(initial_tokens=100.0),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def tiny(cls, **overrides) -> "ScenarioConfig":
        """A seconds-fast scenario for tests."""
        defaults = dict(
            n_nodes=20,
            area=(400.0, 400.0),
            duration=1_800.0,
            keyword_pool=30,
            interests_per_node=6,
            buffer_capacity=10_000_000,
            message_interval=60.0,
            ttl=1_800.0,
            incentive=IncentiveParams(initial_tokens=50.0),
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def hetero(
        cls,
        *,
        pedestrian: float = 0.6,
        vehicular: float = 0.3,
        infrastructure: float = 0.1,
        **overrides,
    ) -> "ScenarioConfig":
        """The :meth:`small` scenario over the 3-class preset mix.

        Pedestrians inherit every scalar (Table 5.1 walkers);
        vehicular and infrastructure classes override speed, radio and
        buffers per :data:`repro.population.PRESET_CLASSES`.  Class
        fractions must sum to 1; a fraction of 0 drops that class.
        """
        defaults = dict(
            population=mixed_population(
                pedestrian=pedestrian,
                vehicular=vehicular,
                infrastructure=infrastructure,
            ),
        )
        defaults.update(overrides)
        return cls.small(**defaults)

    # ------------------------------------------------------------------
    # Derived values & helpers
    # ------------------------------------------------------------------
    @property
    def area_km2(self) -> float:
        """Area in square kilometres."""
        return self.area[0] * self.area[1] / 1e6

    @property
    def node_density(self) -> float:
        """Nodes per square kilometre."""
        return self.n_nodes / self.area_km2

    def replace(self, **overrides) -> "ScenarioConfig":
        """A copy with ``overrides`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **overrides)

    def resolved_population(self):
        """The population with every class override filled from the
        scalars (one ``"default"`` class when ``population`` is empty)."""
        return resolve_population(self)

    def with_tokens(self, initial_tokens: float) -> "ScenarioConfig":
        """A copy whose incentive endowment is ``initial_tokens``."""
        return self.replace(
            incentive=dataclasses.replace(
                self.incentive, initial_tokens=float(initial_tokens)
            )
        )

    def table_rows(self) -> list:
        """Rows matching the paper's Table 5.1 for report printing."""
        return [
            ("Number of Participants", self.n_nodes),
            ("Pool of Social Interest Keywords", self.keyword_pool),
            ("No of Defined Social Interests", f"{self.interests_per_node} per node"),
            ("Transmission speed", f"{self.link_speed / 1000:.0f} kBps"),
            ("Transmission radius", f"{self.transmission_radius:.0f} meters"),
            ("Buffer capacity", f"{self.buffer_capacity // 1_000_000} MB"),
            ("Message Size", "~1 MB (profile mix)"),
            ("Area", f"{self.area_km2:.2f} sq.km."),
            ("Simulated time", f"{self.duration / 3600:.1f} hours"),
            ("Threshold for relay", self.incentive.relay_threshold),
            ("Number of initial tokens",
             f"{self.incentive.initial_tokens:.0f} per node"),
        ]
