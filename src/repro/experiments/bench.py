"""Benchmark-trajectory harness.

``repro-dtn bench`` times the simulator's hot paths (contact detection,
event dispatch, the ChitChat weight exchange) plus an end-to-end
paper-scale probe, and writes the results to ``BENCH_<label>.json`` so
the performance trajectory is tracked across PRs: every optimisation PR
commits a before/after pair and CI compares fresh numbers against the
committed baseline.

Wall-clock times are machine-dependent, so each result file also records
a *calibration* number — the time of a fixed pure-Python workload on the
measuring machine.  :func:`compare` divides every benchmark mean by its
file's calibration before computing regression ratios, which makes the
2x CI gate meaningful across runner generations.
"""

from __future__ import annotations

import json
import platform
import statistics
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "BenchRecord",
    "Regression",
    "run_suite",
    "save_report",
    "load_report",
    "compare",
    "speedups",
]

#: Bumped when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchRecord:
    """Timing summary for one benchmark.

    Attributes:
        name: Stable benchmark identifier (comparison key across files).
        mean: Mean wall-clock seconds per round.
        stddev: Sample standard deviation (0 for a single round).
        best: Fastest observed round.
        rounds: Number of timed rounds.
    """

    name: str
    mean: float
    stddev: float
    best: float
    rounds: int

    def to_json(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "stddev": self.stddev,
            "best": self.best,
            "rounds": self.rounds,
        }


@dataclass(frozen=True)
class Regression:
    """One benchmark that got slower than the gate allows.

    ``ratio`` is calibration-normalised: ``(stat/cal)_now divided by
    (stat/cal)_baseline``, where the statistic is best-of-N (falling
    back to the mean for reports written before ``best`` existed).
    ``current_mean``/``baseline_mean`` carry the compared statistic.
    """

    name: str
    ratio: float
    current_mean: float
    baseline_mean: float


#: Warmup calls before timing starts.  Two, not one: the second call
#: runs with the allocator and branch predictors already shaped by the
#: first, which on the churn-heavy benchmarks (``engine_cancel_churn``,
#: ``detector_scan``) cuts round-to-round stddev roughly in half.
WARMUP_ROUNDS = 2


def _time_rounds(
    fn: Callable[[], object],
    rounds: int,
    *,
    warmups: int = WARMUP_ROUNDS,
) -> BenchRecord:
    """Run ``fn`` ``rounds`` times (after ``warmups`` warmups) and
    summarise."""
    for _ in range(warmups):  # warmup: imports, allocator, caches
        fn()
    samples: List[float] = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return BenchRecord(
        name="",
        mean=statistics.fmean(samples),
        stddev=statistics.stdev(samples) if len(samples) > 1 else 0.0,
        best=min(samples),
        rounds=rounds,
    )


def calibration_seconds() -> float:
    """Time a fixed pure-Python workload (best of 3).

    The absolute value is meaningless; the *ratio* between two machines'
    calibrations approximates their relative interpreter speed, which is
    what :func:`compare` normalises by.
    """
    def workload() -> int:
        total = 0
        for i in range(200_000):
            total += i * i % 7
        return total

    best = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - start)
    return best


def machine_info() -> Dict[str, Union[str, int, float]]:
    """Provenance block recorded in every report."""
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": np.__version__,
        "calibration_seconds": calibration_seconds(),
    }


# ----------------------------------------------------------------------
# The tracked benchmarks
# ----------------------------------------------------------------------
def _bench_pairs_in_range_500() -> Tuple[str, Callable[[], object]]:
    from repro.mobility.contact import pairs_in_range

    rng = np.random.default_rng(2)
    positions = rng.uniform(0.0, 2236.0, size=(500, 2))
    return "pairs_in_range_500", lambda: pairs_in_range(positions, 100.0)


def _bench_detector_scan_500() -> Tuple[str, Callable[[], object]]:
    """20 incremental scans over evolving 500-node snapshots."""
    from repro.mobility.contact import ContactDetector

    rng = np.random.default_rng(7)
    base = rng.uniform(0.0, 2236.0, size=(500, 2))
    snapshots = []
    positions = base
    for _ in range(20):
        positions = np.clip(
            positions + rng.normal(0.0, 25.0, size=positions.shape),
            0.0, 2236.0,
        )
        snapshots.append(positions)

    def run() -> int:
        detector = ContactDetector(100.0)
        for step, snap in enumerate(snapshots):
            detector.scan(float(step * 10), snap)
        return len(detector.finish(200.0))

    return "detector_scan_500x20", run


def _bench_engine_throughput() -> Tuple[str, Callable[[], object]]:
    from repro.sim.engine import Engine

    def run() -> int:
        engine = Engine()
        callback = lambda: None  # noqa: E731 - hot-loop constant
        for tick in range(10_000):
            engine.schedule_at(float(tick), callback)
        engine.run()
        return engine.events_fired

    return "engine_throughput_10k", run


def _bench_engine_cancel_churn() -> Tuple[str, Callable[[], object]]:
    """Retransmission-style churn: most scheduled events are cancelled."""
    from repro.sim.engine import Engine

    def run() -> int:
        engine = Engine()
        callback = lambda: None  # noqa: E731 - hot-loop constant
        handles = []
        for tick in range(10_000):
            handles.append(engine.schedule_at(float(tick), callback))
            if tick % 10 != 0:
                handles[-1].cancel()
        engine.run()
        return engine.events_fired

    return "engine_cancel_churn_10k", run


def _bench_chitchat_exchange() -> Tuple[str, Callable[[], object]]:
    from repro.routing.chitchat import InterestTable

    keywords = [f"kw{i:03d}" for i in range(200)]

    def run() -> float:
        mine = InterestTable(keywords[:20])
        peer = InterestTable(keywords[10:30])
        for step in range(20):
            now = 100.0 * (step + 1)
            mine.decay(now, set(), beta=0.01)
            mine.grow_from(peer, now=now, elapsed=60.0,
                           growth_scale=0.01, elapsed_cap=600.0)
        return mine.sum_for(keywords[:30])

    return "chitchat_exchange_x20", run


def _batched_interest_setup():
    """Shared workload for the fused-vs-legacy decay pair.

    256 nodes, 8 direct keywords each over a 64-keyword universe — the
    paper's shape: tables are small, so per-table ufunc *dispatch* (not
    arithmetic) is what the per-node loop pays for.  Direct-only so
    weights sit at the 0.5 fixed point and every round performs an
    identical amount of work (the decay arithmetic still runs in full;
    nothing prunes).
    """
    rng = np.random.default_rng(17)
    universe = np.array([f"kw{i:03d}" for i in range(64)])
    interests = [
        rng.choice(universe, size=8, replace=False).tolist()
        for _ in range(256)
    ]
    return universe, interests


def _bench_interest_decay_legacy() -> Tuple[str, Callable[[], object]]:
    """Per-node table decay: 256 small-array calls per round."""
    from repro.routing.chitchat import InterestTable, KeywordIndex

    universe, interests = _batched_interest_setup()
    index = KeywordIndex(universe.tolist())
    tables = [
        InterestTable(direct, index=index) for direct in interests
    ]
    state = {"now": 0.0}

    def run() -> float:
        state["now"] += 100.0
        now = state["now"]
        connected: set = set()
        for table in tables:
            table.decay(now, connected, beta=0.01)
        return now

    return "interest_decay_legacy_256x8", run


def _bench_interest_decay_fused() -> Tuple[str, Callable[[], object]]:
    """Fused-store decay: the same 256 tables, one vectorized call."""
    from repro.routing.chitchat import InterestStore, KeywordIndex

    universe, interests = _batched_interest_setup()
    index = KeywordIndex(universe.tolist())
    store = InterestStore(index, rows=256)
    for direct in interests:
        store.create_table(direct, created_at=0.0)
    rows = np.arange(256, dtype=np.intp)
    connected = np.zeros((256, store.columns), dtype=bool)
    state = {"now": 0.0}

    def run() -> float:
        state["now"] += 100.0
        store.batch_decay(rows, connected, state["now"], beta=0.01)
        return state["now"]

    return "interest_decay_fused_256x8", run


def _batched_gossip_setup():
    """Shared workload for the gossip-merge pair.

    600 fully-overlapping subjects, so both variants run the pure EWMA
    merge with no membership churn and constant per-round work.
    """
    rng = np.random.default_rng(23)
    subjects = np.sort(
        rng.choice(5_000, size=600, replace=False)
    ).astype(np.int64)
    values = rng.uniform(1.0, 5.0, size=600)
    peer_values = rng.uniform(1.0, 5.0, size=600)
    return subjects, values, peer_values


def _bench_gossip_merge_legacy() -> Tuple[str, Callable[[], object]]:
    """Per-subject ``merge_opinion`` loop — the historical dict pass."""
    from repro.core.incentive import IncentiveParams
    from repro.core.reputation import ReputationBook

    subjects, values, peer_values = _batched_gossip_setup()
    receiver = ReputationBook(0, IncentiveParams())
    for subject, value in zip(subjects.tolist(), values.tolist()):
        receiver.merge_opinion(subject, value)
    heard = list(zip(subjects.tolist(), peer_values.tolist()))

    def run() -> float:
        merge = receiver.merge_opinion
        for subject, value in heard:
            merge(subject, value)
        return receiver.score(heard[0][0])

    return "gossip_merge_legacy_600", run


def _bench_gossip_merge_fused() -> Tuple[str, Callable[[], object]]:
    """Whole-book array merge — one searchsorted plus ufuncs."""
    from repro.core.incentive import IncentiveParams
    from repro.core.reputation import ReputationSystem

    subjects, values, peer_values = _batched_gossip_setup()
    alpha = IncentiveParams().alpha
    merge = ReputationSystem._merge_arrays

    def run() -> int:
        _s, _v, merged = merge(
            subjects, values, subjects, peer_values,
            alpha, 1.0 - alpha, -1, -2,
        )
        return merged

    return "gossip_merge_fused_600", run


def _paper_probe(duration: float) -> Callable[[], object]:
    """End-to-end Table 5.1 run (500 nodes), including trace detection."""
    from repro.experiments import trace_cache
    from repro.experiments.config import ScenarioConfig
    from repro.experiments.runner import run_scenario

    config = ScenarioConfig.paper_scale(duration=duration, ttl=duration)

    def run() -> float:
        # The probe must time contact detection too, so the default
        # on-disk trace cache is suspended for its duration.
        previous = trace_cache.get_default_cache()
        trace_cache.set_default_cache(None)
        try:
            return run_scenario(config, "incentive", seed=1).mdr
        finally:
            trace_cache.set_default_cache(previous)

    return run


#: name -> (factory, full_rounds, quick_rounds)
MICROBENCHMARKS: Tuple[Tuple[Callable[[], Tuple[str, Callable[[], object]]],
                             int, int], ...] = (
    (_bench_pairs_in_range_500, 50, 15),
    (_bench_detector_scan_500, 10, 3),
    (_bench_engine_throughput, 10, 3),
    (_bench_engine_cancel_churn, 10, 3),
    (_bench_chitchat_exchange, 10, 3),
    (_bench_interest_decay_legacy, 20, 5),
    (_bench_interest_decay_fused, 20, 5),
    (_bench_gossip_merge_legacy, 30, 10),
    (_bench_gossip_merge_fused, 30, 10),
)


def run_suite(
    *,
    quick: bool = False,
    rounds: Optional[int] = None,
    include_paper: bool = True,
) -> Dict[str, object]:
    """Run every tracked benchmark and return the report dict.

    Args:
        quick: Fewer rounds and a 10-simulated-minute paper probe
            (stable names differ, so quick and full paper probes are
            never cross-compared).
        rounds: Override the per-benchmark round count (tests).
        include_paper: Skip the end-to-end probe entirely when False.
    """
    records: Dict[str, Dict[str, float]] = {}
    for factory, full_rounds, quick_rounds in MICROBENCHMARKS:
        name, fn = factory()
        n = rounds if rounds is not None else (
            quick_rounds if quick else full_rounds
        )
        record = _time_rounds(fn, n)
        records[name] = record.to_json()
    if include_paper:
        duration = 600.0 if quick else 3_600.0
        name = "paper_smoke_10min" if quick else "paper_smoke_1h"
        records[name] = _time_rounds(_paper_probe(duration), 1).to_json()
    return {
        "schema": SCHEMA_VERSION,
        "quick": quick,
        "machine": machine_info(),
        "benchmarks": records,
    }


def save_report(report: Dict[str, object], out_dir: Union[str, Path],
                label: str) -> Path:
    """Write ``report`` to ``<out_dir>/BENCH_<label>.json``."""
    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{label}.json"
    path.write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def load_report(path: Union[str, Path]) -> Dict[str, object]:
    """Read a report written by :func:`save_report`."""
    source = Path(path)
    try:
        report = json.loads(source.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ConfigurationError(f"{source}: unreadable bench report: {exc}")
    if not isinstance(report, dict) or "benchmarks" not in report:
        raise ConfigurationError(f"{source}: not a bench report")
    return report


def compare(
    current: Dict[str, object],
    baseline: Dict[str, object],
    *,
    threshold: float = 2.0,
    name_prefix: Optional[str] = None,
) -> List[Regression]:
    """Benchmarks (by shared name) slower than ``threshold`` x baseline.

    The compared statistic is **best-of-N**, not the mean: the fastest
    round is the one least polluted by scheduler noise, GC pauses and
    co-tenant load, so its run-to-run variance is a fraction of the
    mean's (``detector_scan_500x20`` and ``engine_cancel_churn_10k``
    show mean stddevs of 40-50%, which flaked the 2x gate).  Reports
    written before ``best`` was recorded fall back to ``mean``.

    Times are divided by each report's machine calibration first, so a
    uniformly slower machine does not trip the gate; only a benchmark
    that got disproportionately slower does.

    Args:
        threshold: Calibrated slowdown factor that counts as a
            regression (must be > 1).
        name_prefix: Restrict the comparison to benchmarks whose name
            starts with this (e.g. ``"paper_"`` to gate only the
            end-to-end probes, at a tighter threshold).
    """
    if threshold <= 1.0:
        raise ConfigurationError(
            f"threshold must be > 1, got {threshold!r}"
        )
    current_cal = float(current["machine"]["calibration_seconds"])
    baseline_cal = float(baseline["machine"]["calibration_seconds"])
    regressions: List[Regression] = []
    for name, base in sorted(baseline["benchmarks"].items()):
        if name_prefix is not None and not name.startswith(name_prefix):
            continue
        now = current["benchmarks"].get(name)
        if now is None:
            continue
        base_mean = float(base.get("best", base["mean"]))
        now_mean = float(now.get("best", now["mean"]))
        if base_mean <= 0.0:
            continue
        ratio = (now_mean / current_cal) / (base_mean / baseline_cal)
        if ratio > threshold:
            regressions.append(Regression(
                name=name, ratio=ratio,
                current_mean=now_mean, baseline_mean=base_mean,
            ))
    return regressions


def speedups(
    current: Dict[str, object],
    baseline: Dict[str, object],
    *,
    name_prefix: Optional[str] = None,
) -> Dict[str, float]:
    """Calibrated speedup factor per shared benchmark name.

    The inverse view of :func:`compare`: ``baseline/current`` after
    dividing both by their machine calibrations, on the same best-of-N
    statistic.  A value of 2.5 means the current report is 2.5x faster.
    Used by ``repro-dtn bench scale --min-speedup`` to *require* an
    optimisation PR's gain instead of merely tolerating no regression.
    """
    current_cal = float(current["machine"]["calibration_seconds"])
    baseline_cal = float(baseline["machine"]["calibration_seconds"])
    gains: Dict[str, float] = {}
    for name, base in sorted(baseline["benchmarks"].items()):
        if name_prefix is not None and not name.startswith(name_prefix):
            continue
        now = current["benchmarks"].get(name)
        if now is None:
            continue
        base_best = float(base.get("best", base["mean"]))
        now_best = float(now.get("best", now["mean"]))
        if base_best <= 0.0 or now_best <= 0.0:
            continue
        gains[name] = (base_best / baseline_cal) / (now_best / current_cal)
    return gains
