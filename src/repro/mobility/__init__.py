"""Mobility models and contact detection.

Replaces the mobility + connectivity layer of the ONE simulator: node
positions evolve under a mobility model (the paper uses Random Waypoint),
and a range-based contact detector converts position samples into a
:class:`~repro.mobility.trace.ContactTrace` that the protocol simulation
consumes.
"""

from repro.mobility.base import MobilityModel
from repro.mobility.composite import (
    CompositePopulationModel,
    make_population_model,
)
from repro.mobility.contact import ContactDetector, detect_contacts, hetero_pairs
from repro.mobility.manhattan import ManhattanGrid
from repro.mobility.one_trace import load_one_trace, save_one_trace
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.regions import (
    RegionGrid,
    detect_contacts_sharded,
    make_model,
)
from repro.mobility.stationary import Stationary
from repro.mobility.trace import Contact, ContactTrace

__all__ = [
    "MobilityModel",
    "RandomWaypoint",
    "RandomWalk",
    "Stationary",
    "ManhattanGrid",
    "Contact",
    "ContactTrace",
    "ContactDetector",
    "CompositePopulationModel",
    "RegionGrid",
    "detect_contacts",
    "detect_contacts_sharded",
    "hetero_pairs",
    "make_model",
    "make_population_model",
    "load_one_trace",
    "save_one_trace",
]
