"""Random Waypoint mobility — the model used by the paper's evaluation.

Each node repeatedly: picks a uniform destination in the area, walks to
it in a straight line at a speed drawn uniformly from
``[speed_min, speed_max]``, then optionally pauses for a time drawn from
``[pause_min, pause_max]`` before picking the next waypoint.

The implementation is fully vectorised: a single ``advance(dt)`` moves
all nodes, handling waypoint arrivals and pause expiries that fall inside
the step.  Within one ``advance`` call a node may pass through several
waypoints; the loop iterates until every node has consumed its ``dt``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import MobilityError
from repro.mobility.base import MobilityModel

__all__ = ["RandomWaypoint"]


class RandomWaypoint(MobilityModel):
    """Vectorised Random Waypoint model.

    Args:
        n_nodes: Number of nodes.
        area: ``(width, height)`` in metres.
        rng: Source of randomness.
        speed_min: Minimum walking speed, m/s (> 0).
        speed_max: Maximum walking speed, m/s (>= speed_min).
        pause_min: Minimum pause at a waypoint, seconds (>= 0).
        pause_max: Maximum pause at a waypoint, seconds (>= pause_min).
    """

    def __init__(
        self,
        n_nodes: int,
        area: Tuple[float, float],
        rng: np.random.Generator,
        *,
        speed_min: float = 0.5,
        speed_max: float = 1.5,
        pause_min: float = 0.0,
        pause_max: float = 120.0,
    ):
        super().__init__(n_nodes, area, rng)
        if speed_min <= 0:
            raise MobilityError(f"speed_min must be > 0, got {speed_min!r}")
        if speed_max < speed_min:
            raise MobilityError(
                f"speed_max ({speed_max!r}) must be >= speed_min ({speed_min!r})"
            )
        if pause_min < 0 or pause_max < pause_min:
            raise MobilityError(
                f"invalid pause range [{pause_min!r}, {pause_max!r}]"
            )
        self._speed_range = (float(speed_min), float(speed_max))
        self._pause_range = (float(pause_min), float(pause_max))

        self._positions[:] = self._uniform_points(self._n)
        self._targets = self._uniform_points(self._n)
        self._speeds = rng.uniform(speed_min, speed_max, size=self._n)
        # Remaining pause time per node; nodes start walking immediately.
        self._pause_left = np.zeros(self._n, dtype=np.float64)

    def _uniform_points(self, count: int) -> np.ndarray:
        width, height = self._area
        points = np.empty((count, 2), dtype=np.float64)
        points[:, 0] = self._rng.uniform(0.0, width, size=count)
        points[:, 1] = self._rng.uniform(0.0, height, size=count)
        return points

    def _draw_pauses(self, count: int) -> np.ndarray:
        low, high = self._pause_range
        if high == low:
            return np.full(count, low, dtype=np.float64)
        return self._rng.uniform(low, high, size=count)

    def advance(self, dt: float) -> None:
        """Move all nodes forward by ``dt`` seconds."""
        dt = self._check_dt(dt)
        if dt == 0.0 or self._n == 0:
            return
        remaining = np.full(self._n, dt, dtype=np.float64)
        # Iterate until every node has consumed its time budget.  Each
        # pass resolves at most one waypoint arrival or pause expiry per
        # node, so the loop terminates (budget strictly decreases).
        for _ in range(10_000):
            active = remaining > 1e-12
            if not np.any(active):
                return
            idx = np.nonzero(active)[0]

            # Spend pause time first.
            pausing = idx[self._pause_left[idx] > 0.0]
            if pausing.size:
                spend = np.minimum(remaining[pausing], self._pause_left[pausing])
                self._pause_left[pausing] -= spend
                remaining[pausing] -= spend
                idx = idx[self._pause_left[idx] <= 0.0]
                idx = idx[remaining[idx] > 1e-12]
            if idx.size == 0:
                continue

            # Walk toward targets.
            delta = self._targets[idx] - self._positions[idx]
            dist = np.hypot(delta[:, 0], delta[:, 1])
            step = self._speeds[idx] * remaining[idx]
            arrives = step >= dist

            # Nodes that do not reach their target: move proportionally.
            moving = idx[~arrives]
            if moving.size:
                sub = ~arrives
                scale = (step[sub] / np.maximum(dist[sub], 1e-12))[:, None]
                self._positions[moving] += delta[sub] * scale
                remaining[moving] = 0.0

            # Nodes that arrive: land on the target, charge the travel
            # time, draw a pause and a fresh waypoint + speed.
            arriving = idx[arrives]
            if arriving.size:
                sub = arrives
                travel_time = dist[sub] / self._speeds[arriving]
                self._positions[arriving] = self._targets[arriving]
                remaining[arriving] = np.maximum(
                    remaining[arriving] - travel_time, 0.0
                )
                self._pause_left[arriving] = self._draw_pauses(arriving.size)
                self._targets[arriving] = self._uniform_points(arriving.size)
                self._speeds[arriving] = self._rng.uniform(
                    self._speed_range[0], self._speed_range[1], size=arriving.size
                )
        raise MobilityError(
            "random waypoint advance did not converge; dt too large relative "
            "to node speeds"
        )  # pragma: no cover - loop bound is effectively unreachable
