"""Range-based contact detection.

Samples node positions from a mobility model every ``scan_interval``
seconds and converts "within transmission radius" intervals into a
:class:`~repro.mobility.trace.ContactTrace`.  Pair search uses a fully
vectorised uniform cell list with cell size equal to the radius: nodes
are sorted by linearised cell id, candidates in the forward half of the
3x3 neighbourhood are generated with ``searchsorted``, and a single
vectorised distance filter keeps the true pairs — no Python-level
per-node loops, which is what makes 500-node scans cheap.

The paper's Table 5.1 uses a 100 m transmission radius inside a 5 km²
area, which this detector reproduces directly.
"""

from __future__ import annotations

from typing import Set, Tuple

import numpy as np

from repro.errors import MobilityError
from repro.mobility.base import MobilityModel
from repro.mobility.trace import Contact, ContactTrace

__all__ = [
    "ContactDetector",
    "detect_contacts",
    "hetero_pairs",
    "pair_arrays",
    "pairs_in_range",
]

#: Node ids are packed two-per-int64 for the detector's sorted pair
#: state, which caps them at 2^32 - 1 — far beyond any simulated
#: population (positions arrays index nodes, so ids are row numbers).
_PAIR_SHIFT = np.int64(32)
_PAIR_MASK = (1 << 32) - 1

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_STARTS = np.empty(0, dtype=np.float64)


def pair_arrays(
    positions: np.ndarray, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    """All in-range pairs as parallel ``(a, b)`` int64 arrays, ``a < b``.

    The cell list linearises ``(cell_x, cell_y)`` into ``x * stride + y``
    with one guard row, so the four forward neighbour offsets
    ``(+x, +y, +x+y, +x-y)`` are plain integer key offsets and each
    unordered cell pair is visited exactly once.
    """
    n = positions.shape[0]
    if n < 2:
        return _EMPTY_IDS, _EMPTY_IDS
    cell_x = np.floor(positions[:, 0] / radius).astype(np.int64)
    cell_y = np.floor(positions[:, 1] / radius).astype(np.int64)
    cell_x -= cell_x.min()
    cell_y -= cell_y.min()
    stride = int(cell_y.max()) + 2
    if int(cell_x.max()) > (2**62) // stride:
        # Pathologically sparse grid (radius tiny against the coordinate
        # span): the linearised key would overflow int64.  Fall back to
        # a chunked vectorised all-pairs check — still loop-free, and
        # such layouts have few nodes in practice.
        return _pair_arrays_bruteforce(positions, radius)
    key = cell_x * stride + cell_y
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    sorted_x = positions[order, 0]
    sorted_y = positions[order, 1]
    index = np.arange(n, dtype=np.int64)

    # Same-cell pairs: element i pairs with every later element of its
    # equal-key run [i+1, run_end).
    run_end = np.searchsorted(sorted_key, sorted_key, side="right")
    same_counts = run_end - index - 1
    a_same = np.repeat(index, same_counts)
    ramp = (
        np.arange(int(same_counts.sum()), dtype=np.int64)
        - np.repeat(np.cumsum(same_counts) - same_counts, same_counts)
    )
    b_same = np.repeat(index + 1, same_counts) + ramp

    # Forward-neighbour cells: each node against the full membership of
    # the four forward cells, located by binary search on the sorted
    # keys (absent cells give empty [lo, hi) ranges).
    offsets = np.array(
        [stride, 1, stride + 1, stride - 1], dtype=np.int64
    )
    targets = (sorted_key[None, :] + offsets[:, None]).ravel()
    lo = np.searchsorted(sorted_key, targets, side="left")
    hi = np.searchsorted(sorted_key, targets, side="right")
    nbr_counts = hi - lo
    a_nbr = np.repeat(np.tile(index, 4), nbr_counts)
    ramp = (
        np.arange(int(nbr_counts.sum()), dtype=np.int64)
        - np.repeat(np.cumsum(nbr_counts) - nbr_counts, nbr_counts)
    )
    b_nbr = np.repeat(lo, nbr_counts) + ramp

    a_idx = np.concatenate([a_same, a_nbr])
    b_idx = np.concatenate([b_same, b_nbr])
    dx = sorted_x[a_idx] - sorted_x[b_idx]
    dy = sorted_y[a_idx] - sorted_y[b_idx]
    within = dx * dx + dy * dy <= radius * radius
    id_a = order[a_idx[within]]
    id_b = order[b_idx[within]]
    return np.minimum(id_a, id_b), np.maximum(id_a, id_b)


def _pair_arrays_bruteforce(
    positions: np.ndarray, radius: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Chunked vectorised all-pairs fallback (no cell list)."""
    n = positions.shape[0]
    radius_sq = radius * radius
    parts_a = []
    parts_b = []
    chunk = 1024
    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        block = positions[start:stop]
        dx = block[:, None, 0] - positions[None, :, 0]
        dy = block[:, None, 1] - positions[None, :, 1]
        rows, cols = np.nonzero(dx * dx + dy * dy <= radius_sq)
        rows = rows + start
        keep = rows < cols  # canonical order, no self-pairs
        parts_a.append(rows[keep].astype(np.int64))
        parts_b.append(cols[keep].astype(np.int64))
    return np.concatenate(parts_a), np.concatenate(parts_b)


def hetero_pairs(
    positions: np.ndarray, radii: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """In-range pairs under per-node radii, as ``(a, b)`` arrays, a < b.

    Contact semantics for heterogeneous radios: a pair is in range when
    ``dist(a, b) <= max(r_a, r_b)`` — the stronger radio carries the
    link (both directions, since DTN links are bidirectional bundles).
    Every such pair lies within the global maximum radius, so the
    property-tested cell list does the search at ``r = max(radii)`` and
    a single vectorised per-pair threshold keeps the true pairs.
    """
    radii = np.asarray(radii, dtype=np.float64)
    if radii.shape[0] != positions.shape[0]:
        raise MobilityError(
            f"radii must have one entry per node: {radii.shape[0]} radii "
            f"for {positions.shape[0]} nodes"
        )
    if radii.size == 0 or positions.shape[0] < 2:
        return _EMPTY_IDS, _EMPTY_IDS
    rmax = float(radii.max())
    if rmax <= 0:
        raise MobilityError(f"radii must be > 0, got max {rmax!r}")
    node_a, node_b = pair_arrays(positions, rmax)
    if node_a.size == 0:
        return node_a, node_b
    dx = positions[node_a, 0] - positions[node_b, 0]
    dy = positions[node_a, 1] - positions[node_b, 1]
    limit = np.maximum(radii[node_a], radii[node_b])
    within = dx * dx + dy * dy <= limit * limit
    return node_a[within], node_b[within]


def pairs_in_range(positions: np.ndarray, radius: float) -> Set[Tuple[int, int]]:
    """Return all node pairs within ``radius`` of each other.

    Args:
        positions: ``(n, 2)`` array of positions in metres.
        radius: Transmission radius in metres (> 0).

    Returns:
        A set of canonical ``(a, b)`` pairs with ``a < b``.
    """
    if radius <= 0:
        raise MobilityError(f"radius must be > 0, got {radius!r}")
    node_a, node_b = pair_arrays(positions, radius)
    return set(zip(node_a.tolist(), node_b.tolist()))


class ContactDetector:
    """Incremental contact detector over a mobility model.

    Call :meth:`scan` at successive times; the detector tracks which
    pairs are currently in range and emits closed :class:`Contact`
    intervals as pairs leave range.  :meth:`finish` closes contacts that
    are still open at the end of the simulation.

    Open-pair state is a pair of parallel arrays — int64 keys packing
    ``(a << 32) | b``, kept sorted, plus each pair's start time — so the
    open/close diff between consecutive scans is two binary searches
    instead of Python set arithmetic.

    Args:
        radius: Uniform transmission radius in metres.
        radii: Optional per-node radii for heterogeneous populations;
            when given, :meth:`scan` searches via :func:`hetero_pairs`
            (``dist <= max(r_a, r_b)`` per pair) and ``radius`` is
            ignored for detection.
    """

    def __init__(self, radius: float, *, radii: "np.ndarray | None" = None):
        if radius <= 0:
            raise MobilityError(f"radius must be > 0, got {radius!r}")
        self._radius = float(radius)
        self._radii = (
            np.asarray(radii, dtype=np.float64) if radii is not None else None
        )
        self._open_keys: np.ndarray = _EMPTY_IDS
        self._open_starts: np.ndarray = _EMPTY_STARTS
        self._closed: list = []
        self._last_time: float = float("-inf")

    @property
    def radius(self) -> float:
        """Transmission radius in metres."""
        return self._radius

    @property
    def open_pairs(self) -> Set[Tuple[int, int]]:
        """Pairs currently in range."""
        return {
            (key >> 32, key & _PAIR_MASK)
            for key in self._open_keys.tolist()
        }

    def scan(self, time: float, positions: np.ndarray) -> None:
        """Record which pairs are in range at ``time``.

        Args:
            time: Sample time; must be strictly increasing across calls.
            positions: ``(n, 2)`` position array at that time.
        """
        if self._radii is not None:
            node_a, node_b = hetero_pairs(positions, self._radii)
        else:
            node_a, node_b = pair_arrays(positions, self._radius)
        self.scan_pairs(time, node_a, node_b)

    def scan_pairs(
        self, time: float, node_a: np.ndarray, node_b: np.ndarray
    ) -> None:
        """Record pre-computed in-range pairs at ``time``.

        The spatial-sharding path (:mod:`repro.mobility.regions`)
        computes per-region pair arrays and feeds their concatenation
        here; because the diff below operates on *sorted* packed keys,
        any pair arrays describing the same pair set produce bit-
        identical detector state regardless of how they were sharded.

        Args:
            time: Sample time; must be strictly increasing across calls.
            node_a: Lower node id of each pair (int64).
            node_b: Higher node id of each pair (int64).
        """
        if time <= self._last_time:
            raise MobilityError(
                f"scan times must increase: {time!r} after {self._last_time!r}"
            )
        self._last_time = time
        node_a = np.asarray(node_a, dtype=np.int64)
        node_b = np.asarray(node_b, dtype=np.int64)
        keys = (node_a << _PAIR_SHIFT) | node_b
        keys.sort()

        open_keys = self._open_keys
        if open_keys.size:
            if keys.size:
                slot = np.minimum(
                    np.searchsorted(keys, open_keys), keys.size - 1
                )
                still_open = keys[slot] == open_keys
            else:
                still_open = np.zeros(open_keys.size, dtype=bool)
            gone = ~still_open
            if gone.any():
                end = float(time)
                closed = self._closed
                for key, start in zip(
                    open_keys[gone].tolist(),
                    self._open_starts[gone].tolist(),
                ):
                    closed.append(
                        Contact(start, end, key >> 32, key & _PAIR_MASK)
                    )

        if keys.size:
            if open_keys.size:
                slot = np.minimum(
                    np.searchsorted(open_keys, keys), open_keys.size - 1
                )
                known = open_keys[slot] == keys
                starts = np.where(
                    known, self._open_starts[slot], float(time)
                )
            else:
                starts = np.full(keys.size, float(time), dtype=np.float64)
            self._open_keys = keys
            self._open_starts = starts
        else:
            self._open_keys = _EMPTY_IDS
            self._open_starts = _EMPTY_STARTS

    def finish(self, end_time: float) -> ContactTrace:
        """Close any still-open contacts at ``end_time`` and return the trace."""
        # Keys are sorted, which is exactly ascending (a, b) pair order.
        for key, start in zip(
            self._open_keys.tolist(), self._open_starts.tolist()
        ):
            if end_time > start:
                self._closed.append(
                    Contact(start, end_time, key >> 32, key & _PAIR_MASK)
                )
        self._open_keys = _EMPTY_IDS
        self._open_starts = _EMPTY_STARTS
        return ContactTrace(self._closed)


def detect_contacts(
    model: MobilityModel,
    *,
    radius: float,
    duration: float,
    scan_interval: float = 10.0,
    radii: "np.ndarray | None" = None,
) -> ContactTrace:
    """Run ``model`` for ``duration`` seconds and return its contact trace.

    Args:
        model: Mobility model to advance (mutated in place).
        radius: Transmission radius in metres.
        duration: Total simulated time in seconds.
        scan_interval: Position sampling period in seconds.  Contacts
            shorter than this can be missed — the same discretisation the
            ONE simulator applies with its update interval.
        radii: Optional per-node radii for heterogeneous populations
            (see :class:`ContactDetector`).

    Returns:
        The detected :class:`ContactTrace`.
    """
    if duration <= 0:
        raise MobilityError(f"duration must be > 0, got {duration!r}")
    if scan_interval <= 0:
        raise MobilityError(f"scan_interval must be > 0, got {scan_interval!r}")
    detector = ContactDetector(radius, radii=radii)
    time = 0.0
    detector.scan(time, model.positions)
    while time < duration:
        step = min(scan_interval, duration - time)
        model.advance(step)
        time += step
        detector.scan(time, model.positions)
    return detector.finish(duration)
