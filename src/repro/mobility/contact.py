"""Range-based contact detection.

Samples node positions from a mobility model every ``scan_interval``
seconds and converts "within transmission radius" intervals into a
:class:`~repro.mobility.trace.ContactTrace`.  Pair search uses a uniform
grid hash with cell size equal to the radius, so each node is compared
only against nodes in its 3x3 cell neighbourhood — the standard trick
that makes 500-node scans cheap.

The paper's Table 5.1 uses a 100 m transmission radius inside a 5 km²
area, which this detector reproduces directly.
"""

from __future__ import annotations

from typing import Dict, Set, Tuple

import numpy as np

from repro.errors import MobilityError
from repro.mobility.base import MobilityModel
from repro.mobility.trace import Contact, ContactTrace

__all__ = ["ContactDetector", "detect_contacts", "pairs_in_range"]


def pairs_in_range(positions: np.ndarray, radius: float) -> Set[Tuple[int, int]]:
    """Return all node pairs within ``radius`` of each other.

    Args:
        positions: ``(n, 2)`` array of positions in metres.
        radius: Transmission radius in metres (> 0).

    Returns:
        A set of canonical ``(a, b)`` pairs with ``a < b``.
    """
    if radius <= 0:
        raise MobilityError(f"radius must be > 0, got {radius!r}")
    n = positions.shape[0]
    if n < 2:
        return set()

    cell_x = np.floor(positions[:, 0] / radius).astype(np.int64)
    cell_y = np.floor(positions[:, 1] / radius).astype(np.int64)
    buckets: Dict[Tuple[int, int], list] = {}
    for node in range(n):
        buckets.setdefault((cell_x[node], cell_y[node]), []).append(node)

    radius_sq = radius * radius
    pairs: Set[Tuple[int, int]] = set()
    for (cx, cy), members in buckets.items():
        # Candidates: this cell plus the 4 "forward" neighbours; scanning
        # half the neighbourhood visits each cell pair exactly once.
        for dx, dy in ((0, 0), (1, 0), (0, 1), (1, 1), (1, -1)):
            other = buckets.get((cx + dx, cy + dy))
            if other is None:
                continue
            if dx == 0 and dy == 0:
                for i, node_a in enumerate(members):
                    for node_b in members[i + 1:]:
                        delta = positions[node_a] - positions[node_b]
                        if delta[0] * delta[0] + delta[1] * delta[1] <= radius_sq:
                            pairs.add(
                                (node_a, node_b) if node_a < node_b
                                else (node_b, node_a)
                            )
            else:
                for node_a in members:
                    for node_b in other:
                        delta = positions[node_a] - positions[node_b]
                        if delta[0] * delta[0] + delta[1] * delta[1] <= radius_sq:
                            pairs.add(
                                (node_a, node_b) if node_a < node_b
                                else (node_b, node_a)
                            )
    return pairs


class ContactDetector:
    """Incremental contact detector over a mobility model.

    Call :meth:`scan` at successive times; the detector tracks which
    pairs are currently in range and emits closed :class:`Contact`
    intervals as pairs leave range.  :meth:`finish` closes contacts that
    are still open at the end of the simulation.
    """

    def __init__(self, radius: float):
        if radius <= 0:
            raise MobilityError(f"radius must be > 0, got {radius!r}")
        self._radius = float(radius)
        self._open: Dict[Tuple[int, int], float] = {}
        self._closed: list = []
        self._last_time: float = float("-inf")

    @property
    def radius(self) -> float:
        """Transmission radius in metres."""
        return self._radius

    @property
    def open_pairs(self) -> Set[Tuple[int, int]]:
        """Pairs currently in range."""
        return set(self._open)

    def scan(self, time: float, positions: np.ndarray) -> None:
        """Record which pairs are in range at ``time``.

        Args:
            time: Sample time; must be strictly increasing across calls.
            positions: ``(n, 2)`` position array at that time.
        """
        if time <= self._last_time:
            raise MobilityError(
                f"scan times must increase: {time!r} after {self._last_time!r}"
            )
        self._last_time = time
        current = pairs_in_range(positions, self._radius)
        for pair in list(self._open):
            if pair not in current:
                start = self._open.pop(pair)
                self._closed.append(Contact(start, time, pair[0], pair[1]))
        for pair in current:
            if pair not in self._open:
                self._open[pair] = time

    def finish(self, end_time: float) -> ContactTrace:
        """Close any still-open contacts at ``end_time`` and return the trace."""
        for pair, start in sorted(self._open.items()):
            if end_time > start:
                self._closed.append(Contact(start, end_time, pair[0], pair[1]))
        self._open.clear()
        return ContactTrace(self._closed)


def detect_contacts(
    model: MobilityModel,
    *,
    radius: float,
    duration: float,
    scan_interval: float = 10.0,
) -> ContactTrace:
    """Run ``model`` for ``duration`` seconds and return its contact trace.

    Args:
        model: Mobility model to advance (mutated in place).
        radius: Transmission radius in metres.
        duration: Total simulated time in seconds.
        scan_interval: Position sampling period in seconds.  Contacts
            shorter than this can be missed — the same discretisation the
            ONE simulator applies with its update interval.

    Returns:
        The detected :class:`ContactTrace`.
    """
    if duration <= 0:
        raise MobilityError(f"duration must be > 0, got {duration!r}")
    if scan_interval <= 0:
        raise MobilityError(f"scan_interval must be > 0, got {scan_interval!r}")
    detector = ContactDetector(radius)
    time = 0.0
    detector.scan(time, model.positions)
    while time < duration:
        step = min(scan_interval, duration - time)
        model.advance(step)
        time += step
        detector.scan(time, model.positions)
    return detector.finish(duration)
