"""Random Walk (Brownian-style) mobility.

Each node walks with a constant per-leg speed and heading for an
exponentially distributed leg duration, then draws a new uniform heading.
Nodes reflect off the area boundary.  Included as an alternative to the
paper's Random Waypoint for sensitivity/ablation experiments.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import MobilityError
from repro.mobility.base import MobilityModel

__all__ = ["RandomWalk"]


class RandomWalk(MobilityModel):
    """Vectorised random-walk mobility with boundary reflection.

    Args:
        n_nodes: Number of nodes.
        area: ``(width, height)`` in metres.
        rng: Source of randomness.
        speed_min: Minimum leg speed in m/s (> 0).
        speed_max: Maximum leg speed in m/s (>= speed_min).
        mean_leg_duration: Mean of the exponential leg duration, seconds.
    """

    def __init__(
        self,
        n_nodes: int,
        area: Tuple[float, float],
        rng: np.random.Generator,
        *,
        speed_min: float = 0.5,
        speed_max: float = 1.5,
        mean_leg_duration: float = 60.0,
    ):
        super().__init__(n_nodes, area, rng)
        if speed_min <= 0 or speed_max < speed_min:
            raise MobilityError(
                f"invalid speed range [{speed_min!r}, {speed_max!r}]"
            )
        if mean_leg_duration <= 0:
            raise MobilityError(
                f"mean_leg_duration must be > 0, got {mean_leg_duration!r}"
            )
        self._speed_range = (float(speed_min), float(speed_max))
        self._mean_leg = float(mean_leg_duration)

        width, height = self._area
        self._positions[:, 0] = rng.uniform(0.0, width, size=self._n)
        self._positions[:, 1] = rng.uniform(0.0, height, size=self._n)
        self._velocities = self._draw_velocities(self._n)
        self._leg_left = rng.exponential(self._mean_leg, size=self._n)

    def _draw_velocities(self, count: int) -> np.ndarray:
        headings = self._rng.uniform(0.0, 2.0 * np.pi, size=count)
        speeds = self._rng.uniform(
            self._speed_range[0], self._speed_range[1], size=count
        )
        return np.stack(
            (speeds * np.cos(headings), speeds * np.sin(headings)), axis=1
        )

    def advance(self, dt: float) -> None:
        """Move all nodes forward by ``dt`` seconds."""
        dt = self._check_dt(dt)
        if dt == 0.0:
            return
        remaining = np.full(self._n, dt, dtype=np.float64)
        for _ in range(10_000):
            active = remaining > 1e-12
            if not np.any(active):
                break
            idx = np.nonzero(active)[0]
            step = np.minimum(remaining[idx], self._leg_left[idx])
            self._positions[idx] += self._velocities[idx] * step[:, None]
            self._leg_left[idx] -= step
            remaining[idx] -= step
            expired = idx[self._leg_left[idx] <= 1e-12]
            if expired.size:
                self._velocities[expired] = self._draw_velocities(expired.size)
                self._leg_left[expired] = self._rng.exponential(
                    self._mean_leg, size=expired.size
                )
        self._reflect()

    def _reflect(self) -> None:
        """Reflect positions (and headings) off the area boundary."""
        width, height = self._area
        for axis, limit in ((0, width), (1, height)):
            coords = self._positions[:, axis]
            below = coords < 0.0
            if np.any(below):
                coords[below] = -coords[below]
                self._velocities[below, axis] = -self._velocities[below, axis]
            above = coords > limit
            if np.any(above):
                coords[above] = 2.0 * limit - coords[above]
                self._velocities[above, axis] = -self._velocities[above, axis]
        # A pathological dt could bounce past both walls; clamp as a net.
        self._clip_to_area()
