"""Per-class composite mobility for heterogeneous populations.

Each node class gets its own sub-model (its own kind, speed/pause
ranges and a dedicated ``mobility:{name}`` RNG stream); the composite
scatters the sub-models' positions into one global ``(n, 2)`` array
after every advance, so contact detection and the world see a single
homogeneous interface.

Stream discipline: a single-class population never reaches this module
— :func:`make_population_model` falls through to the legacy
:func:`~repro.mobility.regions.make_model` on the shared ``"mobility"``
stream, keeping legacy runs bit-identical.  With several classes, each
sub-model draws only from its class's stream, so editing one class's
mobility leaves every other class's trajectory untouched (the
isolation property pinned by ``tests/test_population.py``).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.mobility.base import MobilityModel
from repro.mobility.regions import make_model

__all__ = ["CompositePopulationModel", "make_population_model"]


class CompositePopulationModel(MobilityModel):
    """Scatters per-class sub-model positions into one global array.

    Args:
        area: Arena ``(width, height)`` in metres.
        submodels: One mobility model per class.
        members: For each class, the ascending global node ids of its
            members; together the index arrays partition ``0..n-1``.
    """

    def __init__(
        self,
        area: Tuple[float, float],
        submodels: Sequence[MobilityModel],
        members: Sequence[np.ndarray],
    ):
        n_nodes = sum(m.size for m in members)
        # The base class wants an rng; the composite itself never draws.
        super().__init__(n_nodes, area, np.random.default_rng(0))
        self._submodels = list(submodels)
        self._members = [np.asarray(m, dtype=np.int64) for m in members]
        self._scatter()

    def _scatter(self) -> None:
        for model, member_ids in zip(self._submodels, self._members):
            self._positions[member_ids] = model.positions

    def advance(self, dt: float) -> None:
        dt = self._check_dt(dt)
        for model in self._submodels:
            model.advance(dt)
        self._scatter()


def make_population_model(
    config, streams, population
) -> MobilityModel:
    """Mobility for a resolved population (legacy path when single-class).

    Args:
        config: The :class:`~repro.experiments.config.ScenarioConfig`.
        streams: The run's :class:`~repro.sim.rng.RandomStreams`.
        population: The run's :class:`~repro.population.PopulationMap`.
    """
    if not population.heterogeneous:
        # Single class: the legacy construction path on the shared
        # "mobility" stream.  The resolved class carries the config
        # scalars whenever no override is set, so a default population
        # is bit-identical to the pre-population builder; a single
        # class *with* overrides gets them honoured here too.
        cls = population.classes[0]
        return make_model(
            cls.mobility,
            config.n_nodes,
            config.area,
            streams.get("mobility"),
            speed_range=cls.speed_range,
            pause_range=cls.pause_range,
            manhattan_block=config.manhattan_block,
        )
    submodels: List[MobilityModel] = []
    members: List[np.ndarray] = []
    for index, cls in enumerate(population.classes):
        member_ids = population.members(index)
        if member_ids.size == 0:
            # A fraction small enough to round to zero seats: nothing
            # to place, and the class's dedicated stream stays untouched.
            continue
        submodels.append(
            make_model(
                cls.mobility,
                int(member_ids.size),
                config.area,
                streams.get(f"mobility:{cls.name}"),
                speed_range=cls.speed_range,
                pause_range=cls.pause_range,
                manhattan_block=config.manhattan_block,
            )
        )
        members.append(member_ids)
    return CompositePopulationModel(config.area, submodels, members)
