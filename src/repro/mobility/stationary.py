"""Stationary "mobility": nodes never move.

Useful for unit tests (deterministic contacts) and for scripted
topologies such as the Paper II three-device demo, where device A is in
range of B, B is in range of C, but A and C do not overlap.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import MobilityError
from repro.mobility.base import MobilityModel

__all__ = ["Stationary"]


class Stationary(MobilityModel):
    """Nodes stay wherever they are placed.

    Args:
        n_nodes: Number of nodes.
        area: ``(width, height)`` in metres.
        rng: Source of randomness (used only when ``positions`` is None).
        positions: Optional explicit ``(n, 2)`` placement.  When omitted,
            nodes are placed uniformly at random.
    """

    def __init__(
        self,
        n_nodes: int,
        area: Tuple[float, float],
        rng: np.random.Generator,
        *,
        positions: Optional[Sequence[Sequence[float]]] = None,
    ):
        super().__init__(n_nodes, area, rng)
        if positions is None:
            width, height = self._area
            self._positions[:, 0] = rng.uniform(0.0, width, size=self._n)
            self._positions[:, 1] = rng.uniform(0.0, height, size=self._n)
        else:
            array = np.asarray(positions, dtype=np.float64)
            if array.shape != (self._n, 2):
                raise MobilityError(
                    f"positions must have shape ({self._n}, 2), "
                    f"got {array.shape}"
                )
            self._positions[:] = array
            self._clip_to_area()

    def advance(self, dt: float) -> None:
        """No-op (validates ``dt`` for interface consistency)."""
        self._check_dt(dt)

    def move_node(self, node: int, x: float, y: float) -> None:
        """Teleport one node — lets tests script contact plans."""
        if not 0 <= node < self._n:
            raise MobilityError(f"node index {node} out of range")
        self._positions[node, 0] = float(x)
        self._positions[node, 1] = float(y)
        self._clip_to_area()
