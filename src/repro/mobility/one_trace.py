"""Import/export of ONE-simulator connection event traces.

The ONE simulator's ``ConnectivityONEReport`` emits lines of the form::

    <time> CONN <host1> <host2> up
    <time> CONN <host1> <host2> down

so a contact trace recorded by ONE (or by any tool speaking that
format) can drive this package's protocol simulation directly — and
traces generated here can be replayed inside ONE.  Unterminated
connections are closed at an explicit ``end_time``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import MobilityError
from repro.mobility.trace import Contact, ContactTrace

__all__ = ["load_one_trace", "save_one_trace"]


def _parse_host(token: str, path: Path, line_no: int) -> int:
    """ONE host names may be plain ints or prefixed ids like ``p12``."""
    if token.isdigit():
        return int(token)
    digits = "".join(ch for ch in token if ch.isdigit())
    if digits:
        return int(digits)
    raise MobilityError(
        f"{path}:{line_no}: cannot parse host id from {token!r}"
    )


def load_one_trace(
    path: Union[str, Path], *, end_time: Optional[float] = None
) -> ContactTrace:
    """Read a ONE ``CONN`` event report into a :class:`ContactTrace`.

    Args:
        path: Report file path.
        end_time: Close time for connections that never see a ``down``
            event; defaults to the last event time in the file.

    Raises:
        MobilityError: On malformed lines, ``down`` without ``up``, or
            duplicate ``up`` events for an open pair.
    """
    source = Path(path)
    open_since: Dict[Tuple[int, int], float] = {}
    contacts: List[Contact] = []
    last_time = 0.0
    with source.open("r", encoding="utf-8") as handle:
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 5 or fields[1].upper() != "CONN":
                raise MobilityError(
                    f"{source}:{line_no}: expected "
                    f"'<time> CONN <h1> <h2> up|down', got {line!r}"
                )
            try:
                time = float(fields[0])
            except ValueError as exc:
                raise MobilityError(
                    f"{source}:{line_no}: bad timestamp {fields[0]!r}"
                ) from exc
            host_a = _parse_host(fields[2], source, line_no)
            host_b = _parse_host(fields[3], source, line_no)
            pair = (host_a, host_b) if host_a < host_b else (host_b, host_a)
            state = fields[4].lower()
            last_time = max(last_time, time)
            if state == "up":
                if pair in open_since:
                    raise MobilityError(
                        f"{source}:{line_no}: duplicate 'up' for open "
                        f"pair {pair}"
                    )
                open_since[pair] = time
            elif state == "down":
                started = open_since.pop(pair, None)
                if started is None:
                    raise MobilityError(
                        f"{source}:{line_no}: 'down' without 'up' for "
                        f"pair {pair}"
                    )
                if time > started:
                    contacts.append(Contact(started, time, *pair))
            else:
                raise MobilityError(
                    f"{source}:{line_no}: unknown state {fields[4]!r}"
                )
    close_at = end_time if end_time is not None else last_time
    for pair, started in sorted(open_since.items()):
        if close_at > started:
            contacts.append(Contact(started, close_at, *pair))
    return ContactTrace(contacts)


def save_one_trace(trace: ContactTrace, path: Union[str, Path]) -> None:
    """Write a trace as a ONE-compatible ``CONN`` event report."""
    target = Path(path)
    with target.open("w", encoding="utf-8") as handle:
        for time, kind, (a, b) in trace.events():
            handle.write(f"{time:.3f} CONN {a} {b} {kind}\n")
