"""Mobility model interface.

A mobility model owns the positions of ``n`` nodes inside a rectangular
area and advances them in time.  Implementations are vectorised with
numpy: ``positions`` is an ``(n, 2)`` float array in metres, and
``advance(dt)`` moves every node at once.  This is what makes a
500-node / 24-hour scenario (the paper's Table 5.1) tractable in Python.
"""

from __future__ import annotations

import abc
from typing import Tuple

import numpy as np

from repro.errors import MobilityError

__all__ = ["MobilityModel"]


class MobilityModel(abc.ABC):
    """Abstract base for vectorised mobility models.

    Args:
        n_nodes: Number of nodes (> 0).
        area: ``(width, height)`` of the simulation area in metres.
        rng: Random generator used for all stochastic choices.
    """

    def __init__(
        self,
        n_nodes: int,
        area: Tuple[float, float],
        rng: np.random.Generator,
    ):
        if n_nodes <= 0:
            raise MobilityError(f"n_nodes must be > 0, got {n_nodes}")
        width, height = area
        if width <= 0 or height <= 0:
            raise MobilityError(f"area sides must be > 0, got {area!r}")
        self._n = int(n_nodes)
        self._area = (float(width), float(height))
        self._rng = rng
        self._positions = np.empty((self._n, 2), dtype=np.float64)

    @property
    def n_nodes(self) -> int:
        """Number of nodes managed by this model."""
        return self._n

    @property
    def area(self) -> Tuple[float, float]:
        """``(width, height)`` of the area in metres."""
        return self._area

    @property
    def positions(self) -> np.ndarray:
        """Current ``(n, 2)`` position array (a read-only view)."""
        view = self._positions.view()
        view.flags.writeable = False
        return view

    @abc.abstractmethod
    def advance(self, dt: float) -> None:
        """Advance every node by ``dt`` seconds."""

    def _check_dt(self, dt: float) -> float:
        if dt < 0:
            raise MobilityError(f"dt must be >= 0, got {dt!r}")
        return float(dt)

    def _clip_to_area(self) -> None:
        """Clamp all positions into the area rectangle (safety net)."""
        np.clip(self._positions[:, 0], 0.0, self._area[0], out=self._positions[:, 0])
        np.clip(self._positions[:, 1], 0.0, self._area[1], out=self._positions[:, 1])
