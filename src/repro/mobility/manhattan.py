"""Manhattan-grid mobility.

Nodes move along the streets of a regular city grid: pick a direction
along the current street, walk to the next intersection, then turn or
continue with configurable probabilities.  This is the classic urban
counterpart to Random Waypoint (ONE ships a map-based equivalent) and
is useful to check that the paper's conclusions are not artefacts of
open-field mobility.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import MobilityError
from repro.mobility.base import MobilityModel

__all__ = ["ManhattanGrid"]

#: Unit vectors for the four street directions (E, N, W, S).
_DIRECTIONS = np.array(
    [[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]]
)


class ManhattanGrid(MobilityModel):
    """Street-grid mobility with per-intersection turning.

    Args:
        n_nodes: Number of nodes.
        area: ``(width, height)`` in metres.
        rng: Source of randomness.
        block_size: Street spacing in metres (> 0).
        speed_min: Minimum walking speed, m/s (> 0).
        speed_max: Maximum walking speed (>= speed_min).
        turn_probability: Chance of turning left or right (split evenly)
            at an intersection; otherwise the node continues straight
            (or U-turns at the area boundary).
    """

    def __init__(
        self,
        n_nodes: int,
        area: Tuple[float, float],
        rng: np.random.Generator,
        *,
        block_size: float = 100.0,
        speed_min: float = 0.5,
        speed_max: float = 1.5,
        turn_probability: float = 0.5,
    ):
        super().__init__(n_nodes, area, rng)
        if block_size <= 0:
            raise MobilityError(f"block_size must be > 0, got {block_size!r}")
        if block_size > min(area):
            raise MobilityError(
                f"block_size {block_size!r} exceeds the area {area!r}"
            )
        if speed_min <= 0 or speed_max < speed_min:
            raise MobilityError(
                f"invalid speed range [{speed_min!r}, {speed_max!r}]"
            )
        if not 0.0 <= turn_probability <= 1.0:
            raise MobilityError(
                f"turn_probability must be in [0, 1], got {turn_probability!r}"
            )
        self.block_size = float(block_size)
        self._speed_range = (float(speed_min), float(speed_max))
        self.turn_probability = float(turn_probability)

        # Snap the population onto street intersections.
        cols = max(int(self._area[0] // self.block_size), 1)
        rows = max(int(self._area[1] // self.block_size), 1)
        self._positions[:, 0] = (
            rng.integers(0, cols + 1, size=self._n) * self.block_size
        )
        self._positions[:, 1] = (
            rng.integers(0, rows + 1, size=self._n) * self.block_size
        )
        self._clip_to_area()
        self._direction = rng.integers(0, 4, size=self._n)
        self._speeds = rng.uniform(speed_min, speed_max, size=self._n)

    def _at_intersection(self, node: int) -> bool:
        """Whether the node stands on a grid line along its travel axis."""
        axis = 0 if self._direction[node] in (0, 2) else 1
        offset = self._positions[node, axis] % self.block_size
        return offset < 1e-6 or self.block_size - offset < 1e-6

    def _distance_to_next_intersection(self, node: int) -> float:
        """Distance to the next grid line ahead (a full block when the
        node stands exactly on a line)."""
        axis = 0 if self._direction[node] in (0, 2) else 1
        position = self._positions[node, axis]
        offset = position % self.block_size
        if offset < 1e-6 or self.block_size - offset < 1e-6:
            return self.block_size
        if self._direction[node] in (0, 1):  # heading positive
            return self.block_size - offset
        return offset

    def _heading_out_of_bounds(self, node: int) -> bool:
        direction = _DIRECTIONS[self._direction[node]]
        step = self._positions[node] + direction * self.block_size
        return not (
            -1e-9 <= step[0] <= self._area[0] + 1e-9
            and -1e-9 <= step[1] <= self._area[1] + 1e-9
        )

    def _choose_direction(self, node: int) -> None:
        """Turn policy at an intersection (U-turn only when forced)."""
        if self._rng.random() < self.turn_probability:
            # Turn left or right with equal probability.
            turn = 1 if self._rng.random() < 0.5 else 3
            self._direction[node] = (self._direction[node] + turn) % 4
        for _ in range(4):
            if not self._heading_out_of_bounds(node):
                return
            self._direction[node] = (self._direction[node] + 1) % 4

    def advance(self, dt: float) -> None:
        """Move all nodes forward by ``dt`` seconds along the streets."""
        dt = self._check_dt(dt)
        if dt == 0.0:
            return
        for node in range(self._n):
            remaining = dt
            for _ in range(10_000):
                if remaining <= 1e-12:
                    break
                if self._at_intersection(node):
                    # Turn (or be bounced back in-bounds) before walking
                    # the next block.
                    self._choose_direction(node)
                to_corner = self._distance_to_next_intersection(node)
                step = min(self._speeds[node] * remaining, to_corner)
                self._positions[node] += (
                    _DIRECTIONS[self._direction[node]] * step
                )
                remaining -= step / self._speeds[node]
        self._clip_to_area()
