"""Spatial region sharding for contact detection.

The arena is partitioned into vertical strips (*regions*) at least one
transmission radius wide.  Each region independently finds the in-range
pairs among the nodes inside its strip plus a one-radius *halo* on each
side, and keeps only the pairs it *owns* — a pair belongs to the region
containing the lower-id endpoint's position.  Because two nodes within
radius ``r`` of each other are never more than ``r`` apart along x, the
owner region's halo always covers both endpoints, so the union over
regions is exactly the global pair set with every pair found exactly
once.  Feeding the merged per-tick pair batches into
:meth:`~repro.mobility.contact.ContactDetector.scan_pairs` (which sorts
packed keys before diffing) therefore produces **bit-identical** contact
traces for 1 region, N regions, and N regions fanned out over a process
pool — the sharding determinism contract pinned by
``tests/test_regions.py`` and ``tests/test_determinism.py``.

Parallel mode re-derives the mobility model in every worker from the
master seed (mobility is a pure function of the seed, so replicas agree
on every position) and ships back only the per-tick packed pair keys of
the worker's regions; the parent merges them in region order and drives
one detector.  Workers fan out over the same
``ProcessPoolExecutor`` machinery as :mod:`repro.experiments.parallel`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MobilityError
from repro.mobility.base import MobilityModel
from repro.mobility.contact import ContactDetector, pair_arrays
from repro.mobility.manhattan import ManhattanGrid
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.stationary import Stationary
from repro.mobility.trace import ContactTrace

__all__ = [
    "RegionGrid",
    "make_model",
    "region_pair_arrays",
    "sharded_pair_arrays",
    "detect_contacts_sharded",
]

_PAIR_SHIFT = np.int64(32)
_PAIR_MASK = np.int64((1 << 32) - 1)
_EMPTY = np.empty(0, dtype=np.int64)


class RegionGrid:
    """A partition of the arena into vertical strips.

    Args:
        area: ``(width, height)`` of the arena in metres.
        regions: Requested region count (>= 1).  Strips must be at
            least ``min_width`` wide for the halo argument to hold, so
            the effective count (:attr:`n_regions`) may be lower.
        min_width: Minimum strip width in metres — pass the
            transmission radius; narrower strips could own pairs whose
            far endpoint escapes the one-strip halo.
    """

    def __init__(
        self,
        area: Tuple[float, float],
        regions: int,
        *,
        min_width: float = 0.0,
    ):
        width, height = float(area[0]), float(area[1])
        if width <= 0 or height <= 0:
            raise MobilityError(f"area sides must be > 0, got {area!r}")
        if regions < 1:
            raise MobilityError(f"regions must be >= 1, got {regions!r}")
        if min_width < 0:
            raise MobilityError(
                f"min_width must be >= 0, got {min_width!r}"
            )
        effective = int(regions)
        if min_width > 0:
            effective = min(effective, max(1, int(width // min_width)))
        self._area = (width, height)
        self._n_regions = effective
        self._strip = width / effective

    @property
    def area(self) -> Tuple[float, float]:
        """``(width, height)`` of the arena in metres."""
        return self._area

    @property
    def n_regions(self) -> int:
        """Effective region count (may be below the requested count)."""
        return self._n_regions

    @property
    def strip_width(self) -> float:
        """Width of each strip in metres."""
        return self._strip

    def bounds(self, region: int) -> Tuple[float, float]:
        """``[lo, hi)`` x-extent of ``region`` in metres."""
        if not 0 <= region < self._n_regions:
            raise MobilityError(
                f"region must be in [0, {self._n_regions}), got {region!r}"
            )
        return (region * self._strip, (region + 1) * self._strip)

    def region_of_x(self, x: np.ndarray) -> np.ndarray:
        """Region id for each x coordinate (clipped into range)."""
        idx = np.floor(np.asarray(x, dtype=np.float64) / self._strip)
        return np.clip(idx, 0, self._n_regions - 1).astype(np.int64)

    def region_of(self, positions: np.ndarray) -> np.ndarray:
        """Region id for each ``(n, 2)`` position row."""
        positions = np.asarray(positions, dtype=np.float64)
        if positions.size == 0:
            return np.empty(0, dtype=np.int64)
        return self.region_of_x(positions[:, 0])

    def halo_members(
        self, positions: np.ndarray, region: int, halo: float
    ) -> np.ndarray:
        """Indices of nodes inside ``region``'s strip widened by ``halo``."""
        lo, hi = self.bounds(region)
        x = np.asarray(positions, dtype=np.float64)[:, 0]
        return np.flatnonzero((x >= lo - halo) & (x < hi + halo))


def make_model(
    kind: str,
    n_nodes: int,
    area: Tuple[float, float],
    rng: np.random.Generator,
    *,
    speed_range: Tuple[float, float] = (0.5, 1.5),
    pause_range: Tuple[float, float] = (0.0, 120.0),
    manhattan_block: float = 100.0,
) -> MobilityModel:
    """Build a mobility model by name (the runner's and workers' factory).

    Shard workers rebuild the *same* model from the same RNG in every
    process, so the factory must be the single construction path —
    any divergence between parent and worker construction would
    desynchronise the replicated positions.
    """
    if kind == "random-waypoint":
        return RandomWaypoint(
            n_nodes, area, rng,
            speed_min=speed_range[0], speed_max=speed_range[1],
            pause_min=pause_range[0], pause_max=pause_range[1],
        )
    if kind == "random-walk":
        return RandomWalk(
            n_nodes, area, rng,
            speed_min=speed_range[0], speed_max=speed_range[1],
        )
    if kind == "manhattan":
        return ManhattanGrid(
            n_nodes, area, rng,
            block_size=manhattan_block,
            speed_min=speed_range[0], speed_max=speed_range[1],
        )
    if kind == "static":
        return Stationary(n_nodes, area, rng)
    raise MobilityError(f"unknown mobility model {kind!r}")


def region_pair_arrays(
    positions: np.ndarray,
    radius: float,
    grid: RegionGrid,
    region: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """In-range pairs owned by ``region``, as ``(a, b)`` arrays, a < b.

    A pair is owned by the region containing the lower-id endpoint's
    position, which makes ownership unique; searching the strip plus a
    one-radius halo makes it complete (see the module docstring).
    """
    members = grid.halo_members(positions, region, radius)
    if members.size < 2:
        return _EMPTY, _EMPTY
    local_a, local_b = pair_arrays(positions[members], radius)
    if local_a.size == 0:
        return _EMPTY, _EMPTY
    # ``members`` is ascending, so the local (min, max) canonical order
    # survives the translation back to global ids.
    node_a = members[local_a]
    node_b = members[local_b]
    owner = grid.region_of_x(positions[node_a, 0])
    keep = owner == region
    return node_a[keep], node_b[keep]


def sharded_pair_arrays(
    positions: np.ndarray,
    radius: float,
    grid: RegionGrid,
    regions: Optional[Sequence[int]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Union of :func:`region_pair_arrays` over ``regions`` (default all).

    Returned in region order; the detector sorts packed keys anyway, so
    any region order yields identical downstream state.
    """
    if regions is None:
        regions = range(grid.n_regions)
    parts_a: List[np.ndarray] = []
    parts_b: List[np.ndarray] = []
    for region in regions:
        node_a, node_b = region_pair_arrays(positions, radius, grid, region)
        if node_a.size:
            parts_a.append(node_a)
            parts_b.append(node_b)
    if not parts_a:
        return _EMPTY, _EMPTY
    return np.concatenate(parts_a), np.concatenate(parts_b)


# ----------------------------------------------------------------------
# Parallel shard workers
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ShardSpec:
    """Picklable recipe for one worker's share of the detection sweep.

    The worker re-derives the mobility model from ``seed`` (via
    :class:`~repro.sim.rng.RandomStreams`, stream ``"mobility"`` — the
    same derivation :func:`repro.experiments.runner.build_contact_trace`
    uses), replays every scan tick, and returns the packed pair keys of
    its ``regions`` at each tick.
    """

    kind: str
    n_nodes: int
    area: Tuple[float, float]
    speed_range: Tuple[float, float]
    pause_range: Tuple[float, float]
    manhattan_block: float
    seed: int
    radius: float
    duration: float
    scan_interval: float
    n_regions: int
    regions: Tuple[int, ...]


def _scan_times(duration: float, scan_interval: float) -> List[float]:
    """The exact tick times :func:`detect_contacts` samples at."""
    times = [0.0]
    time = 0.0
    while time < duration:
        time += min(scan_interval, duration - time)
        times.append(time)
    return times


def scan_shard(spec: ShardSpec) -> List[np.ndarray]:
    """Worker entry point: packed pair keys per tick for ``spec.regions``.

    Module-level so the process pool can pickle it.
    """
    from repro.sim.rng import RandomStreams

    rng = RandomStreams(spec.seed).get("mobility")
    model = make_model(
        spec.kind, spec.n_nodes, spec.area, rng,
        speed_range=spec.speed_range,
        pause_range=spec.pause_range,
        manhattan_block=spec.manhattan_block,
    )
    grid = RegionGrid(spec.area, spec.n_regions, min_width=spec.radius)
    keys_per_tick: List[np.ndarray] = []
    time = 0.0
    node_a, node_b = sharded_pair_arrays(
        model.positions, spec.radius, grid, spec.regions
    )
    keys_per_tick.append((node_a << _PAIR_SHIFT) | node_b)
    while time < spec.duration:
        step = min(spec.scan_interval, spec.duration - time)
        model.advance(step)
        time += step
        node_a, node_b = sharded_pair_arrays(
            model.positions, spec.radius, grid, spec.regions
        )
        keys_per_tick.append((node_a << _PAIR_SHIFT) | node_b)
    return keys_per_tick


def _partition_regions(
    n_regions: int, workers: int
) -> List[Tuple[int, ...]]:
    """Contiguous region assignments, one tuple per worker (non-empty)."""
    workers = min(workers, n_regions)
    shares: List[Tuple[int, ...]] = []
    for w in range(workers):
        lo = w * n_regions // workers
        hi = (w + 1) * n_regions // workers
        if hi > lo:
            shares.append(tuple(range(lo, hi)))
    return shares


def detect_contacts_sharded(
    *,
    kind: str,
    n_nodes: int,
    area: Tuple[float, float],
    seed: int,
    radius: float,
    duration: float,
    scan_interval: float = 10.0,
    speed_range: Tuple[float, float] = (0.5, 1.5),
    pause_range: Tuple[float, float] = (0.0, 120.0),
    manhattan_block: float = 100.0,
    regions: int = 1,
    workers: int = 1,
) -> ContactTrace:
    """Region-sharded contact detection, bit-identical to the serial path.

    Args:
        kind: Mobility model name (see :func:`make_model`).
        n_nodes: Population size.
        area: Arena ``(width, height)`` in metres.
        seed: Master seed; the mobility RNG is derived exactly as in
            :func:`repro.experiments.runner.build_contact_trace`.
        radius: Transmission radius in metres.
        duration: Total simulated seconds.
        scan_interval: Position sampling period in seconds.
        regions: Requested spatial shard count (effective count may be
            lower; strips are kept at least one radius wide).
        workers: Process count for the shard fan-out.  ``1`` runs every
            region in-process over a single mobility advance (no
            replication); ``N`` replays mobility in ``N`` workers.

    Returns:
        The detected :class:`ContactTrace` — byte-for-byte the trace
        :func:`~repro.mobility.contact.detect_contacts` produces.
    """
    if duration <= 0:
        raise MobilityError(f"duration must be > 0, got {duration!r}")
    if scan_interval <= 0:
        raise MobilityError(
            f"scan_interval must be > 0, got {scan_interval!r}"
        )
    if workers < 1:
        raise MobilityError(f"workers must be >= 1, got {workers!r}")
    grid = RegionGrid(area, regions, min_width=radius)
    detector = ContactDetector(radius)
    times = _scan_times(duration, scan_interval)

    if workers == 1 or grid.n_regions == 1:
        from repro.sim.rng import RandomStreams

        rng = RandomStreams(seed).get("mobility")
        model = make_model(
            kind, n_nodes, area, rng,
            speed_range=speed_range,
            pause_range=pause_range,
            manhattan_block=manhattan_block,
        )
        for index, time in enumerate(times):
            if index:
                model.advance(times[index] - times[index - 1])
            node_a, node_b = sharded_pair_arrays(
                model.positions, radius, grid
            )
            detector.scan_pairs(time, node_a, node_b)
        return detector.finish(duration)

    shares = _partition_regions(grid.n_regions, workers)
    specs = [
        ShardSpec(
            kind=kind, n_nodes=n_nodes, area=tuple(area),
            speed_range=tuple(speed_range),
            pause_range=tuple(pause_range),
            manhattan_block=manhattan_block,
            seed=seed, radius=radius, duration=duration,
            scan_interval=scan_interval,
            n_regions=grid.n_regions, regions=share,
        )
        for share in shares
    ]
    with ProcessPoolExecutor(max_workers=len(specs)) as pool:
        per_worker = list(pool.map(scan_shard, specs))
    for index, time in enumerate(times):
        keys = np.concatenate([worker[index] for worker in per_worker])
        detector.scan_pairs(
            time, keys >> _PAIR_SHIFT, keys & _PAIR_MASK
        )
    return detector.finish(duration)
