"""Contact traces.

A contact is an interval during which two nodes are within radio range.
The protocol simulation consumes contacts as (up, down) events; this
module provides the trace container, chronological event iteration,
serialisation, and summary statistics.  Traces can come from a mobility
model (via :mod:`repro.mobility.contact`), from a file, or be written by
hand for scripted scenarios.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

import numpy as np

from repro.errors import MobilityError

__all__ = ["Contact", "ContactTrace"]


@dataclass(frozen=True)
class Contact:
    """One contact interval between nodes ``a`` and ``b``.

    Attributes:
        start: Contact start time, seconds.
        end: Contact end time, seconds (``end > start``).
        a: First node id (``a < b`` by convention).
        b: Second node id.
    """

    start: float
    end: float
    a: int
    b: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise MobilityError(
                f"contact end ({self.end!r}) must be after start ({self.start!r})"
            )
        if self.a == self.b:
            raise MobilityError(f"contact requires two distinct nodes, got {self.a}")
        if self.a > self.b:
            # Normalise order so pair identity is canonical.
            low, high = self.b, self.a
            object.__setattr__(self, "a", low)
            object.__setattr__(self, "b", high)

    @property
    def duration(self) -> float:
        """Length of the contact in seconds."""
        return self.end - self.start

    @property
    def pair(self) -> Tuple[int, int]:
        """Canonical ``(a, b)`` pair."""
        return (self.a, self.b)


class ContactTrace:
    """An ordered collection of contacts.

    Example:
        >>> trace = ContactTrace([Contact(0.0, 10.0, 0, 1)])
        >>> [(t, kind, pair) for t, kind, pair in trace.events()]
        [(0.0, 'up', (0, 1)), (10.0, 'down', (0, 1))]
    """

    def __init__(self, contacts: Iterable[Contact] = ()):
        self._contacts: List[Contact] = sorted(
            contacts, key=lambda c: (c.start, c.end, c.a, c.b)
        )

    def __len__(self) -> int:
        return len(self._contacts)

    def __iter__(self) -> Iterator[Contact]:
        return iter(self._contacts)

    def __getitem__(self, index: int) -> Contact:
        return self._contacts[index]

    @property
    def contacts(self) -> Tuple[Contact, ...]:
        """All contacts, sorted by start time."""
        return tuple(self._contacts)

    def add(self, contact: Contact) -> None:
        """Insert a contact, keeping start-time order."""
        self._contacts.append(contact)
        self._contacts.sort(key=lambda c: (c.start, c.end, c.a, c.b))

    def events(self) -> Iterator[Tuple[float, str, Tuple[int, int]]]:
        """Yield ``(time, 'up'|'down', (a, b))`` in chronological order.

        For simultaneous events, ``down`` sorts before ``up`` so a pair
        that disconnects and reconnects at the same instant is handled as
        two distinct contacts.
        """
        raw: List[Tuple[float, int, Tuple[int, int], str]] = []
        for contact in self._contacts:
            raw.append((contact.start, 1, contact.pair, "up"))
            raw.append((contact.end, 0, contact.pair, "down"))
        raw.sort(key=lambda item: (item[0], item[1], item[2]))
        for time, _, pair, kind in raw:
            yield (time, kind, pair)

    def duration(self) -> float:
        """Latest contact end time (0 for an empty trace)."""
        return max((c.end for c in self._contacts), default=0.0)

    def total_contact_time(self) -> float:
        """Sum of all contact durations."""
        return sum(c.duration for c in self._contacts)

    def contacts_per_pair(self) -> Dict[Tuple[int, int], int]:
        """Number of contacts recorded for each node pair."""
        counts: Dict[Tuple[int, int], int] = {}
        for contact in self._contacts:
            counts[contact.pair] = counts.get(contact.pair, 0) + 1
        return counts

    def restricted_to(self, nodes: Iterable[int]) -> "ContactTrace":
        """Return a trace containing only contacts among ``nodes``."""
        keep = set(nodes)
        return ContactTrace(
            c for c in self._contacts if c.a in keep and c.b in keep
        )

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON lines: one contact object per line."""
        target = Path(path)
        with target.open("w", encoding="utf-8") as handle:
            for contact in self._contacts:
                record = {
                    "start": contact.start,
                    "end": contact.end,
                    "a": contact.a,
                    "b": contact.b,
                }
                handle.write(json.dumps(record) + "\n")

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ContactTrace":
        """Read a trace previously written by :meth:`save`."""
        source = Path(path)
        contacts: List[Contact] = []
        with source.open("r", encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    contacts.append(
                        Contact(
                            start=float(record["start"]),
                            end=float(record["end"]),
                            a=int(record["a"]),
                            b=int(record["b"]),
                        )
                    )
                except (KeyError, ValueError, TypeError) as exc:
                    raise MobilityError(
                        f"{source}:{line_no}: malformed contact record: {exc}"
                    ) from exc
        return cls(contacts)

    def save_npz(self, path: Union[str, Path]) -> None:
        """Write the trace as a compressed ``.npz`` column store.

        Columnar float64/int64 arrays round-trip bit-exactly, unlike the
        human-readable JSON-lines format, which makes ``.npz`` the
        format of record for the on-disk trace cache.
        """
        target = Path(path)
        starts = np.array([c.start for c in self._contacts], dtype=np.float64)
        ends = np.array([c.end for c in self._contacts], dtype=np.float64)
        node_a = np.array([c.a for c in self._contacts], dtype=np.int64)
        node_b = np.array([c.b for c in self._contacts], dtype=np.int64)
        # Write through a handle so numpy cannot append its own ".npz"
        # suffix and silently change the destination path.
        with target.open("wb") as handle:
            np.savez_compressed(
                handle, starts=starts, ends=ends,
                node_a=node_a, node_b=node_b,
            )

    @classmethod
    def load_npz(cls, path: Union[str, Path]) -> "ContactTrace":
        """Read a trace previously written by :meth:`save_npz`."""
        source = Path(path)
        try:
            with np.load(source) as data:
                columns = [
                    data["starts"], data["ends"],
                    data["node_a"], data["node_b"],
                ]
        except (OSError, KeyError, ValueError) as exc:
            raise MobilityError(
                f"{source}: malformed npz contact trace: {exc}"
            ) from exc
        return cls(
            Contact(start=float(s), end=float(e), a=int(a), b=int(b))
            for s, e, a, b in zip(*columns)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ContactTrace({len(self._contacts)} contacts, "
            f"span={self.duration():.1f}s)"
        )
