"""Message layer: format, keyword universe, and workload generation."""

from repro.messages.keywords import KeywordUniverse
from repro.messages.message import Annotation, Message, Priority
from repro.messages.generator import MessageGenerator, MessageProfile

__all__ = [
    "Annotation",
    "Message",
    "Priority",
    "KeywordUniverse",
    "MessageGenerator",
    "MessageProfile",
]
