"""Keyword universe with ground-truth semantics.

The paper's Table 5.1 uses a pool of 200 social-interest keywords; every
node subscribes to 20 of them and every message is annotated with a
subset.  In the real system annotations come from Google Cloud Vision
plus human input; here each message carries a hidden set of *true
content keywords* drawn from the universe, so the system can judge — as
a human rater would — whether an added tag is relevant.

Keywords are plain strings such as ``"kw017"`` (or drawn from a small
thematic vocabulary when one is supplied).
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["KeywordUniverse", "DEFAULT_THEMES"]

#: A small thematic vocabulary used for readable examples (disaster /
#: battlefield scenarios from the paper's introduction).  When the pool
#: is larger than this list, synthetic ``kwNNN`` keywords fill the rest.
DEFAULT_THEMES: Tuple[str, ...] = (
    "flood", "fire", "earthquake", "collapsed-bridge", "road-blocked",
    "medical-aid", "food-supply", "water-supply", "shelter", "evacuation",
    "rescue-team", "helicopter", "convoy", "checkpoint", "sniper",
    "minefield", "enemy-patrol", "friendly-forces", "supply-drop",
    "radio-tower", "power-outage", "hospital", "casualty", "survivor",
    "landslide", "storm", "wildfire", "chemical-spill", "gas-leak",
    "building-damage", "tree", "car", "parking-lot", "garden", "books",
)


class KeywordUniverse:
    """A fixed pool of keywords with sampling helpers.

    Args:
        size: Number of keywords in the pool (paper default: 200).
        themes: Optional human-readable names used for the first
            ``len(themes)`` keywords.

    Example:
        >>> universe = KeywordUniverse(200)
        >>> len(universe)
        200
    """

    def __init__(self, size: int = 200, themes: Optional[Sequence[str]] = None):
        if size <= 0:
            raise ConfigurationError(f"keyword pool size must be > 0, got {size}")
        vocabulary = list(themes if themes is not None else DEFAULT_THEMES)
        if len(set(vocabulary)) != len(vocabulary):
            raise ConfigurationError("theme keywords must be unique")
        keywords: List[str] = vocabulary[:size]
        for index in range(len(keywords), size):
            keywords.append(f"kw{index:03d}")
        self._keywords: Tuple[str, ...] = tuple(keywords)
        self._index = {kw: i for i, kw in enumerate(self._keywords)}

    def __len__(self) -> int:
        return len(self._keywords)

    def __contains__(self, keyword: str) -> bool:
        return keyword in self._index

    def __iter__(self):
        return iter(self._keywords)

    @property
    def keywords(self) -> Tuple[str, ...]:
        """All keywords in the pool."""
        return self._keywords

    def index_of(self, keyword: str) -> int:
        """Position of ``keyword`` in the pool.

        Raises:
            ConfigurationError: If the keyword is not in the universe.
        """
        try:
            return self._index[keyword]
        except KeyError:
            raise ConfigurationError(
                f"keyword {keyword!r} is not in the universe"
            ) from None

    def sample(
        self, rng: np.random.Generator, count: int, *,
        exclude: Sequence[str] = (),
    ) -> List[str]:
        """Draw ``count`` distinct keywords uniformly without replacement.

        Args:
            rng: Source of randomness.
            count: Number of keywords to draw.
            exclude: Keywords that must not be drawn.

        Raises:
            ConfigurationError: If fewer than ``count`` keywords remain
                after exclusion.
        """
        excluded = set(exclude)
        candidates = [kw for kw in self._keywords if kw not in excluded]
        if count > len(candidates):
            raise ConfigurationError(
                f"cannot sample {count} keywords from a pool of "
                f"{len(candidates)} (after exclusions)"
            )
        if count < 0:
            raise ConfigurationError(f"count must be >= 0, got {count}")
        chosen = rng.choice(len(candidates), size=count, replace=False)
        return [candidates[i] for i in sorted(chosen)]

    def sample_interests(
        self, rng: np.random.Generator, count: int = 20
    ) -> FrozenSet[str]:
        """Draw a node's direct-interest subscription set (paper: 20)."""
        return frozenset(self.sample(rng, count))

    def sample_content(
        self, rng: np.random.Generator, count: int
    ) -> FrozenSet[str]:
        """Draw a message's ground-truth content keyword set."""
        return frozenset(self.sample(rng, count))

    def irrelevant_for(
        self,
        rng: np.random.Generator,
        content: Sequence[str],
        count: int,
    ) -> List[str]:
        """Draw keywords *not* describing ``content`` (malicious tags)."""
        return self.sample(rng, count, exclude=content)
