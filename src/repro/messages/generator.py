"""Workload generation: who creates which messages, when.

The evaluation scenarios create messages at a steady network-wide rate
with a configurable mix of quality/priority classes (Paper I, experiment
F uses 50 % high-quality/large/high-priority, 30 % medium, 20 % low).
Each message gets ground-truth content keywords from the universe and
source annotations that truthfully describe that content.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.messages.keywords import KeywordUniverse
from repro.messages.message import Message, Priority

__all__ = ["MessageProfile", "MessageGenerator", "DEFAULT_PROFILES"]


@dataclass(frozen=True)
class MessageProfile:
    """A message class in the workload mix.

    Attributes:
        name: Class label (e.g. ``"high"``).
        fraction: Share of messages drawn from this class; all profiles'
            fractions must sum to 1.
        priority: Source-set priority for the class.
        quality_range: ``(low, high)`` uniform quality range in [0, 1].
        size_range: ``(low, high)`` uniform size range in bytes.
    """

    name: str
    fraction: float
    priority: Priority
    quality_range: Tuple[float, float]
    size_range: Tuple[int, int]

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"profile {self.name!r}: fraction must be in [0, 1]"
            )
        low_q, high_q = self.quality_range
        if not (0.0 <= low_q <= high_q <= 1.0):
            raise ConfigurationError(
                f"profile {self.name!r}: invalid quality range"
            )
        low_s, high_s = self.size_range
        if not (0 < low_s <= high_s):
            raise ConfigurationError(
                f"profile {self.name!r}: invalid size range"
            )


#: Paper experiment F mix: higher-priority messages are also larger and
#: of higher quality (the paper states high-priority generators produce
#: "high quality larger size" messages).  Sizes centre on the 1 MB
#: Table 5.1 default.
DEFAULT_PROFILES: Tuple[MessageProfile, ...] = (
    MessageProfile("high", 0.5, Priority.HIGH, (0.75, 1.0),
                   (1_000_000, 1_500_000)),
    MessageProfile("medium", 0.3, Priority.MEDIUM, (0.4, 0.75),
                   (600_000, 1_000_000)),
    MessageProfile("low", 0.2, Priority.LOW, (0.05, 0.4),
                   (200_000, 600_000)),
)


class MessageGenerator:
    """Creates the message workload for a scenario.

    Args:
        universe: Keyword pool shared by interests and annotations.
        rng: Source of randomness.
        profiles: Workload mix (fractions must sum to 1).
        content_keywords: ``(min, max)`` number of ground-truth content
            keywords per message.
        annotated_fraction: Fraction of the content keywords the source
            actually annotates (sources rarely tag everything they see,
            which leaves room for relays to enrich).
    """

    def __init__(
        self,
        universe: KeywordUniverse,
        rng: np.random.Generator,
        *,
        profiles: Sequence[MessageProfile] = DEFAULT_PROFILES,
        content_keywords: Tuple[int, int] = (4, 8),
        annotated_fraction: float = 0.6,
    ):
        if not profiles:
            raise ConfigurationError("at least one message profile is required")
        total = sum(p.fraction for p in profiles)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"profile fractions must sum to 1, got {total!r}"
            )
        low, high = content_keywords
        if not (1 <= low <= high <= len(universe)):
            raise ConfigurationError(
                f"invalid content keyword range {content_keywords!r}"
            )
        if not 0.0 < annotated_fraction <= 1.0:
            raise ConfigurationError(
                f"annotated_fraction must be in (0, 1], got {annotated_fraction!r}"
            )
        self._universe = universe
        self._rng = rng
        self._profiles = tuple(profiles)
        self._fractions = np.array([p.fraction for p in profiles])
        self._content_range = (int(low), int(high))
        self._annotated_fraction = float(annotated_fraction)

    @property
    def profiles(self) -> Tuple[MessageProfile, ...]:
        """The workload mix."""
        return self._profiles

    def draw_profile(self) -> MessageProfile:
        """Draw a message class according to the mix fractions."""
        index = self._rng.choice(len(self._profiles), p=self._fractions)
        return self._profiles[index]

    def create_message(
        self,
        source: int,
        created_at: float,
        *,
        profile: "MessageProfile | None" = None,
        low_quality: bool = False,
    ) -> Message:
        """Create one message from ``source`` at ``created_at``.

        Args:
            source: Originating node id.
            created_at: Simulation time of creation.
            profile: Force a specific class; drawn from the mix when None.
            low_quality: Malicious-source override — clamp quality into
                the bottom of the scale regardless of class.
        """
        chosen = profile if profile is not None else self.draw_profile()
        low_q, high_q = chosen.quality_range
        quality = float(self._rng.uniform(low_q, high_q))
        if low_quality:
            quality = float(self._rng.uniform(0.0, 0.2))
        low_s, high_s = chosen.size_range
        size = int(self._rng.integers(low_s, high_s + 1))

        count = int(self._rng.integers(self._content_range[0],
                                       self._content_range[1] + 1))
        content = self._universe.sample_content(self._rng, count)
        n_annotated = max(1, round(len(content) * self._annotated_fraction))
        content_list = sorted(content)
        picked = self._rng.choice(len(content_list), size=n_annotated,
                                  replace=False)
        keywords = tuple(content_list[i] for i in sorted(picked))

        latitude = float(self._rng.uniform(-90.0, 90.0))
        longitude = float(self._rng.uniform(-180.0, 180.0))
        return Message(
            source=source,
            created_at=created_at,
            size=size,
            quality=quality,
            priority=chosen.priority,
            content=content,
            keywords=keywords,
            location=(latitude, longitude),
        )

    def schedule(
        self,
        node_ids: Sequence[int],
        *,
        duration: float,
        interval: float,
    ) -> List[Tuple[float, int]]:
        """Plan message creations over ``duration`` seconds.

        Every ``interval`` seconds one uniformly chosen node creates a
        message (jittered inside the slot so creations do not align with
        contact scans).

        Returns:
            A list of ``(time, source_node)`` pairs sorted by time.
        """
        if duration <= 0:
            raise ConfigurationError(f"duration must be > 0, got {duration!r}")
        if interval <= 0:
            raise ConfigurationError(f"interval must be > 0, got {interval!r}")
        if not node_ids:
            raise ConfigurationError("node_ids must be non-empty")
        plan: List[Tuple[float, int]] = []
        slot_start = 0.0
        ids = list(node_ids)
        while slot_start < duration:
            slot = min(interval, duration - slot_start)
            time = slot_start + float(self._rng.uniform(0.0, slot))
            source = ids[int(self._rng.integers(0, len(ids)))]
            plan.append((time, source))
            slot_start += interval
        plan.sort(key=lambda item: item[0])
        return plan
