"""repro — reputation and credit based incentives for data-centric DTNs.

A from-scratch Python reproduction of *"Reputation and Credit Based
Incentive Mechanism for Data-Centric Message Delivery in Delay Tolerant
Networks"* (Jethawa & Madria; ICDCS 2017 / MST thesis 2018): the
ChitChat data-centric routing substrate, the credit + reputation
incentive mechanism with content enrichment, the distributed reputation
model, a discrete-event DTN simulator replacing ONE, and the complete
evaluation harness for the paper's figures.

Quickstart::

    from repro.experiments import ScenarioConfig, run_scenario

    config = ScenarioConfig.small()
    result = run_scenario(config, scheme="incentive", seed=1)
    print(result.metrics.message_delivery_ratio())
"""

from repro.agents import BehaviorProfile, RoleHierarchy, assign_behaviors
from repro.agents.attacks import WhitewashAttack
from repro.core import (
    EnrichmentPolicy,
    IncentiveChitChatRouter,
    IncentiveLayer,
    IncentiveParams,
    Operators,
    RatingModel,
    ReputationBook,
    ReputationSystem,
    TokenLedger,
)
from repro.core.bayesian_reputation import BayesianReputationSystem
from repro.messages import (
    Annotation,
    KeywordUniverse,
    Message,
    MessageGenerator,
    MessageProfile,
    Priority,
)
from repro.metrics import MetricsCollector
from repro.mobility import (
    Contact,
    ContactTrace,
    ManhattanGrid,
    RandomWalk,
    RandomWaypoint,
    Stationary,
    detect_contacts,
    load_one_trace,
    save_one_trace,
)
from repro.network import EnergyModel, Link, MessageBuffer, Node
from repro.network.world import World
from repro.routing import (
    ChitChatRouter,
    DirectContactRouter,
    EpidemicRouter,
    ImmuneEpidemicRouter,
    NectarRouter,
    PriorityEpidemicRouter,
    ProphetRouter,
    RelicsRouter,
    SprayAndWaitRouter,
    TitForTatRouter,
    TwoHopRewardRouter,
    TwoHopRouter,
)
from repro.sim import Engine, RandomStreams

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # simulation engine
    "Engine",
    "RandomStreams",
    # mobility & contacts
    "RandomWaypoint",
    "RandomWalk",
    "Stationary",
    "ManhattanGrid",
    "Contact",
    "ContactTrace",
    "detect_contacts",
    "load_one_trace",
    "save_one_trace",
    # messages
    "Message",
    "Annotation",
    "Priority",
    "KeywordUniverse",
    "MessageGenerator",
    "MessageProfile",
    # network substrate
    "Node",
    "Link",
    "MessageBuffer",
    "EnergyModel",
    "World",
    # routing
    "ChitChatRouter",
    "EpidemicRouter",
    "PriorityEpidemicRouter",
    "ImmuneEpidemicRouter",
    "DirectContactRouter",
    "TwoHopRouter",
    "SprayAndWaitRouter",
    "ProphetRouter",
    "NectarRouter",
    "TitForTatRouter",
    "RelicsRouter",
    "TwoHopRewardRouter",
    # the paper's contribution
    "IncentiveParams",
    "IncentiveChitChatRouter",
    "IncentiveLayer",
    "TokenLedger",
    "ReputationBook",
    "ReputationSystem",
    "RatingModel",
    "EnrichmentPolicy",
    "Operators",
    "BayesianReputationSystem",
    # behaviours & attacks
    "BehaviorProfile",
    "assign_behaviors",
    "RoleHierarchy",
    "WhitewashAttack",
    # metrics
    "MetricsCollector",
]
