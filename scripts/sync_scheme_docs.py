#!/usr/bin/env python
"""Sync the documentation scheme tables with the scheme registry.

Rewrites the ``<!-- scheme-table-begin/end -->`` blocks in
EXPERIMENTS.md and README.md from ``repro.schemes``:

    python scripts/sync_scheme_docs.py          # rewrite stale tables
    python scripts/sync_scheme_docs.py --check  # exit 1 if stale (CI)

This is the registry-completeness gate for the *docs* surface; the CLI
choices and figure/sweep scheme lists are asserted against the registry
in tests/test_schemes.py.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.schemes.doctable import sync_file  # noqa: E402

DOC_FILES = (REPO_ROOT / "EXPERIMENTS.md", REPO_ROOT / "README.md")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check", action="store_true",
        help="report staleness without rewriting anything",
    )
    args = parser.parse_args(argv)

    stale = []
    for path in DOC_FILES:
        if not sync_file(path, check=args.check):
            stale.append(path)

    if not stale:
        print(f"scheme tables in sync across {len(DOC_FILES)} file(s)")
        return 0
    names = ", ".join(p.name for p in stale)
    if args.check:
        print(
            f"stale scheme table(s) in {names}; "
            f"run scripts/sync_scheme_docs.py to regenerate",
            file=sys.stderr,
        )
        return 1
    print(f"rewrote scheme table(s) in {names}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
