"""Benchmark E7 — Table 5.1: simulation parameters.

Verifies the default paper-scale configuration reproduces the paper's
parameter table verbatim, and times a single paper-parameterised run
component (contact-trace generation at full 500-node scale is exercised
in the microbenchmarks; here we only render and check the table).
"""

from benchmarks.conftest import save_figure
from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import table5_1_parameters


def test_table5_1(benchmark, output_dir):
    text = benchmark.pedantic(
        table5_1_parameters, rounds=3, iterations=1,
    )
    save_figure(output_dir, "table5_1", text)

    config = ScenarioConfig.paper_scale()
    assert config.n_nodes == 500
    assert config.keyword_pool == 200
    assert config.interests_per_node == 20
    assert config.link_speed == 250_000.0
    assert config.transmission_radius == 100.0
    assert config.buffer_capacity == 250_000_000
    assert round(config.area_km2, 2) == 5.0
    assert config.duration == 86_400.0
    assert config.incentive.relay_threshold == 0.8
    assert config.incentive.initial_tokens == 200.0

    for fragment in ("500", "200", "250 kBps", "100 meters", "250 MB",
                     "5.00 sq.km.", "24.0 hours", "0.8", "200 per node"):
        assert fragment in text, fragment
