"""Microbenchmarks for the simulator substrate.

These are genuine timing benchmarks (multiple rounds) for the hot paths
that determine whether the paper-scale scenario (500 nodes, 24 h) is
tractable: the event engine, vectorised mobility, grid-hashed contact
detection, and the ChitChat weight exchange.
"""

import numpy as np
import pytest

from repro.mobility.contact import pairs_in_range
from repro.mobility.random_waypoint import RandomWaypoint
from repro.routing.chitchat import InterestTable
from repro.sim.engine import Engine


def test_engine_event_throughput(benchmark):
    def run_10k_events():
        engine = Engine()
        for time in range(10_000):
            engine.schedule_at(float(time), lambda: None)
        engine.run()
        return engine.events_fired

    fired = benchmark(run_10k_events)
    assert fired == 10_000


def test_random_waypoint_advance_500_nodes(benchmark):
    rng = np.random.default_rng(1)
    model = RandomWaypoint(500, (2236.0, 2236.0), rng)

    def advance():
        model.advance(10.0)
        return model.positions[0, 0]

    benchmark(advance)


def test_contact_detection_500_nodes(benchmark):
    rng = np.random.default_rng(2)
    positions = rng.uniform(0.0, 2236.0, size=(500, 2))

    pairs = benchmark(pairs_in_range, positions, 100.0)
    assert isinstance(pairs, set)


def test_chitchat_weight_exchange(benchmark):
    keywords = [f"kw{i:03d}" for i in range(200)]
    mine = InterestTable(keywords[:20])
    peer = InterestTable(keywords[10:30])

    def exchange():
        mine.decay(100.0, set(), beta=0.01)
        mine.grow_from(peer, now=100.0, elapsed=60.0,
                       growth_scale=0.01, elapsed_cap=600.0)
        return mine.sum_for(keywords[:30])

    benchmark(exchange)


def test_interest_decay_legacy_per_table(benchmark):
    """256 per-node decay calls — the pre-fused-store hot path."""
    from repro.experiments.bench import _bench_interest_decay_legacy

    _name, run = _bench_interest_decay_legacy()
    benchmark(run)


def test_interest_decay_fused_store(benchmark):
    """The same 256 tables decayed in one fused-store call."""
    from repro.experiments.bench import _bench_interest_decay_fused

    _name, run = _bench_interest_decay_fused()
    benchmark(run)


def test_gossip_merge_legacy_per_subject(benchmark):
    """600 per-subject ``merge_opinion`` calls — the historical loop."""
    from repro.experiments.bench import _bench_gossip_merge_legacy

    _name, run = _bench_gossip_merge_legacy()
    benchmark(run)


def test_gossip_merge_fused_arrays(benchmark):
    """The same 600-subject merge as one whole-book array pass."""
    from repro.experiments.bench import _bench_gossip_merge_fused

    _name, run = _bench_gossip_merge_fused()
    benchmark(run)


def test_paper_scale_contact_trace_one_hour(benchmark):
    """Paper-scale mobility for one simulated hour (24x less than the
    full run, same per-second cost)."""
    from repro.mobility.contact import detect_contacts

    def build():
        rng = np.random.default_rng(3)
        model = RandomWaypoint(500, (2236.0, 2236.0), rng)
        return len(detect_contacts(
            model, radius=100.0, duration=3600.0, scan_interval=10.0,
        ))

    count = benchmark.pedantic(build, rounds=1, iterations=1)
    assert count > 0
