"""Benchmark E3 — Figure 5.3: initial tokens' variance.

Paper shape: MDR of the incentive scheme rises with the initial token
endowment (endowments stop exhausting) and falls with the selfish
fraction; with generous endowments the scheme approaches ChitChat.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import fig5_3_initial_tokens

TOKEN_GRID = (10.0, 30.0, 60.0, 120.0, 240.0)
SELFISH_LEVELS = (0.2, 0.4)
SEEDS = (1, 2)


def test_fig5_3(benchmark, base_config, output_dir):
    figure = benchmark.pedantic(
        fig5_3_initial_tokens,
        kwargs=dict(
            base=base_config, token_grid=TOKEN_GRID,
            selfish_levels=SELFISH_LEVELS, seeds=SEEDS,
        ),
        rounds=1, iterations=1,
    )
    save_figure(output_dir, "fig5_3", figure.format())

    low_selfish = figure.series_values("incentive selfish=20%")
    high_selfish = figure.series_values("incentive selfish=40%")
    # More tokens -> more MDR (clear gap between the grid's extremes).
    assert low_selfish[-1] > low_selfish[0]
    assert high_selfish[-1] > high_selfish[0]
    # More selfish nodes -> lower MDR at every token level.
    assert all(h <= l + 0.05 for h, l in zip(high_selfish, low_selfish))
