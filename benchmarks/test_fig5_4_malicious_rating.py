"""Benchmark E4 — Figure 5.4: recognising malicious nodes over time.

Paper shape: the average rating of malicious nodes held by non-malicious
nodes starts at the unknown-node default and falls as the DRM gossips
evidence around; more malicious nodes are exposed *faster* (more chances
to encounter one).
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import fig5_4_malicious_ratings

MALICIOUS_LEVELS = (0.1, 0.2, 0.3, 0.4)
SEEDS = (1, 2)


def test_fig5_4(benchmark, base_config, output_dir):
    figure = benchmark.pedantic(
        fig5_4_malicious_ratings,
        kwargs=dict(
            base=base_config, malicious_levels=MALICIOUS_LEVELS, seeds=SEEDS,
        ),
        rounds=1, iterations=1,
    )
    save_figure(output_dir, "fig5_4", figure.format())

    default = base_config.incentive.default_rating
    for name, series in figure.series.items():
        values = [y for _, y in series]
        # Ratings start at the unknown-node default and end clearly lower.
        assert values[0] == default
        assert values[-1] < default - 0.3, name

    # More malicious nodes -> faster recognition: the 40% curve reaches
    # a clearly-below-default rating no later than the 10% curve does.
    def first_drop_time(name, threshold):
        for time, value in figure.series[name]:
            if value < threshold:
                return time
        return float("inf")

    threshold = default - 0.3
    assert (
        first_drop_time("malicious=40%", threshold)
        <= first_drop_time("malicious=10%", threshold)
    )
