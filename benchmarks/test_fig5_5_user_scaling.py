"""Benchmark E5 — Figure 5.5: MDR vs number of users.

Paper shape: MDR grows with user density for both schemes (more
carriers, more paths), and the gap between ChitChat and the incentive
scheme shrinks as users multiply (the paper's gap nearly vanishes at
1500 users).  The grid 30/60/90 is the paper's 500/1000/1500 at the
scaled area.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import fig5_5_mdr_vs_users

USER_GRID = (30, 60, 90)
SEEDS = (1, 2)


def test_fig5_5(benchmark, base_config, output_dir):
    figure = benchmark.pedantic(
        fig5_5_mdr_vs_users,
        kwargs=dict(base=base_config, user_grid=USER_GRID, seeds=SEEDS),
        rounds=1, iterations=1,
    )
    save_figure(output_dir, "fig5_5", figure.format())

    chitchat = figure.series_values("chitchat")
    incentive = figure.series_values("incentive")
    # MDR grows with density for both schemes.
    assert chitchat[-1] >= chitchat[0]
    assert incentive[-1] >= incentive[0]
    # The ChitChat-vs-incentive gap narrows as users multiply.
    gap_sparse = chitchat[0] - incentive[0]
    gap_dense = chitchat[-1] - incentive[-1]
    assert gap_dense <= gap_sparse + 0.02
