"""Benchmark E2 — Figure 5.2: percentage of reduced traffic over ChitChat.

Paper shape: the incentive scheme saves traffic relative to ChitChat,
and the saving grows as the selfish fraction rises (selfish nodes burn
their endowment and get cut off).  Beyond ~80 % selfish the network
itself collapses (radios mostly off under both schemes), so the ratio
of two small counts turns noisy — the trend is asserted over the
economically meaningful range.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import fig5_2_traffic_reduction

SELFISH_GRID = (0.0, 0.2, 0.4, 0.6)
SEEDS = (1, 2)


def test_fig5_2(benchmark, base_config, output_dir):
    figure = benchmark.pedantic(
        fig5_2_traffic_reduction,
        kwargs=dict(base=base_config, selfish_grid=SELFISH_GRID, seeds=SEEDS),
        rounds=1, iterations=1,
    )
    save_figure(output_dir, "fig5_2", figure.format())

    reduction = figure.series_values("reduction")
    # Positive savings once selfish nodes exist...
    assert all(value > 0.0 for value in reduction[1:])
    # ...and the saving at 60% selfish clearly exceeds the 0% baseline.
    assert reduction[-1] > reduction[0]
