"""Benchmark: the thesis's averaging DRM vs REPSYS-style Bayesian
reputation, with and without collusive praise.

Both models must expose malicious nodes (Fig 5.4's job); the Bayesian
model's deviation test is the textbook defence against collusive
praise, while the averaging DRM leans on its alpha-weighting of own
observations.  This bench measures both defences on the same scenario.
"""

import pytest

from benchmarks.conftest import save_figure
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.metrics.reports import format_table

SEED = 1
SCHEMES = ("incentive", "incentive-bayesian", "incentive-collusion")


@pytest.fixture(scope="module")
def reputation_config():
    return ScenarioConfig.small(malicious_fraction=0.2)


def _malicious_view(result):
    reputation = result.router.reputation
    observers = sorted(result.honest_ids | result.selfish_ids)
    scores = [
        reputation.average_score_of(node, observers)
        for node in sorted(result.malicious_ids)
    ]
    return sum(scores) / len(scores)


def _honest_view(result):
    reputation = result.router.reputation
    observers = sorted(result.honest_ids | result.selfish_ids)
    scores = [
        reputation.average_score_of(node, observers)
        for node in sorted(result.honest_ids)
    ]
    return sum(scores) / len(scores)


def test_reputation_model_comparison(benchmark, reputation_config,
                                     output_dir):
    def run_all():
        return {
            scheme: run_scenario(reputation_config, scheme, seed=SEED)
            for scheme in SCHEMES
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        [scheme, results[scheme].mdr,
         _malicious_view(results[scheme]), _honest_view(results[scheme])]
        for scheme in SCHEMES
    ]
    save_figure(output_dir, "reputation_models", format_table(
        ["scheme", "mdr", "avg malicious rating", "avg honest rating"],
        rows, title="Reputation models under a 20% malicious population",
    ))

    for scheme in SCHEMES:
        malicious = _malicious_view(results[scheme])
        honest = _honest_view(results[scheme])
        # Every model separates malicious from honest nodes.
        assert malicious < honest, scheme

    # Collusive praise narrows the averaging DRM's separation but cannot
    # close it (alpha-weighted own observations dominate).
    clean_gap = _honest_view(results["incentive"]) - _malicious_view(
        results["incentive"]
    )
    collusion_gap = _honest_view(
        results["incentive-collusion"]
    ) - _malicious_view(results["incentive-collusion"])
    assert 0.0 < collusion_gap <= clean_gap + 0.25


def test_itrm_defense_under_collusion(benchmark, reputation_config,
                                      output_dir):
    """ITRM post-processing (related work [27]) audits a
    collusion-polluted rating table: it must keep the malicious/honest
    separation *and* name suspicious raters, which the averaging books
    cannot do.  (Measured note: the alpha-weighted books already damp
    collusion well, so ITRM's separation is comparable rather than
    larger — its added value here is the explicit colluder list.)"""
    from repro.core.itrm import RatingGraph, iterative_trust

    def run_and_audit():
        result = run_scenario(
            reputation_config.replace(malicious_fraction=0.3),
            "incentive-collusion", seed=SEED,
        )
        graph = RatingGraph()
        reputation = result.router.reputation
        for observer in range(reputation_config.n_nodes):
            book = reputation.book(observer)
            for subject in book.known_subjects():
                own = book.own_average(subject)
                if own is not None:
                    graph.add_rating(observer, subject, own)
        return result, iterative_trust(graph)

    result, itrm = benchmark.pedantic(run_and_audit, rounds=1, iterations=1)

    def mean_over(nodes, table):
        values = [table[n] for n in nodes if n in table]
        return sum(values) / len(values)

    malicious_itrm = mean_over(result.malicious_ids, itrm.subject_scores)
    honest_itrm = mean_over(result.honest_ids, itrm.subject_scores)
    malicious_books = _malicious_view(result)
    honest_books = _honest_view(result)

    save_figure(output_dir, "itrm_defense", format_table(
        ["view", "avg malicious score", "avg honest score", "separation"],
        [
            ["polluted books", malicious_books, honest_books,
             honest_books - malicious_books],
            ["ITRM audit", malicious_itrm, honest_itrm,
             honest_itrm - malicious_itrm],
        ],
        title="ITRM as a collusion defence (30% malicious, collusive praise)",
    ))
    # ITRM still separates the populations...
    assert malicious_itrm < honest_itrm
    # ...and discredits at least some raters (the colluders).
    assert len(itrm.suspicious_raters(0.6)) > 0
