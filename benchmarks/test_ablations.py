"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation removes one pillar of the proposed scheme and measures
what it bought:

* ``incentive-no-enrichment`` — no relay tag-addition: no bonus
  destinations, no tag incentives.
* ``incentive-no-reputation`` — nobody rates: every award falls back to
  the default reputation multiplier, so malicious nodes are never
  penalised.
* Baseline routers (epidemic / direct / two-hop / spray-and-wait /
  PRoPHET) bracket the data-centric schemes on the MDR/traffic plane.
"""

import pytest

from benchmarks.conftest import save_figure
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_comparison
from repro.metrics.reports import format_table

SEED = 1


@pytest.fixture(scope="module")
def ablation_config():
    return ScenarioConfig.small(selfish_fraction=0.2, malicious_fraction=0.1)


def test_enrichment_ablation(benchmark, ablation_config, output_dir):
    results = benchmark.pedantic(
        run_comparison,
        args=(ablation_config, ["incentive", "incentive-no-enrichment"]),
        kwargs=dict(seed=SEED),
        rounds=1, iterations=1,
    )
    full = results["incentive"]
    bare = results["incentive-no-enrichment"]
    rows = [
        [scheme, r.mdr, r.traffic,
         r.metrics.enrichment_tags, r.metrics.bonus_deliveries()]
        for scheme, r in results.items()
    ]
    save_figure(output_dir, "ablation_enrichment", format_table(
        ["scheme", "mdr", "traffic", "tags added", "bonus deliveries"],
        rows, title="Ablation: content enrichment",
    ))
    # Enrichment is what creates tags and bonus destinations.
    assert full.metrics.enrichment_tags > 0
    assert bare.metrics.enrichment_tags == 0
    assert full.metrics.bonus_deliveries() >= bare.metrics.bonus_deliveries()


def test_reputation_ablation(benchmark, ablation_config, output_dir):
    results = benchmark.pedantic(
        run_comparison,
        args=(ablation_config, ["incentive", "incentive-no-reputation"]),
        kwargs=dict(seed=SEED),
        rounds=1, iterations=1,
    )
    with_drm = results["incentive"]
    without = results["incentive-no-reputation"]

    def malicious_average(result):
        reputation = result.router.reputation
        observers = sorted(result.honest_ids | result.selfish_ids)
        scores = [
            reputation.average_score_of(node, observers)
            for node in sorted(result.malicious_ids)
        ]
        return sum(scores) / len(scores)

    rows = [
        [scheme, r.mdr, malicious_average(r)]
        for scheme, r in results.items()
    ]
    save_figure(output_dir, "ablation_reputation", format_table(
        ["scheme", "mdr", "avg malicious rating"],
        rows, title="Ablation: distributed reputation model",
    ))
    # Without ratings, malicious nodes keep the default reputation.
    default = ablation_config.incentive.default_rating
    assert malicious_average(without) == pytest.approx(default)
    assert malicious_average(with_drm) < default


def test_baseline_router_bracket(benchmark, ablation_config, output_dir):
    schemes = ["epidemic", "chitchat", "incentive", "two-hop",
               "spray-and-wait", "prophet", "direct"]
    results = benchmark.pedantic(
        run_comparison,
        args=(ablation_config, schemes),
        kwargs=dict(seed=SEED),
        rounds=1, iterations=1,
    )
    rows = [
        [scheme, results[scheme].mdr, results[scheme].traffic]
        for scheme in schemes
    ]
    save_figure(output_dir, "ablation_baselines", format_table(
        ["scheme", "mdr", "traffic"], rows,
        title="Baseline routers on the same scenario",
    ))
    # Epidemic flooding is the MDR/traffic ceiling; direct the floor.
    assert results["epidemic"].traffic == max(
        r.traffic for r in results.values()
    )
    assert results["epidemic"].mdr >= results["direct"].mdr
    assert results["direct"].traffic <= results["chitchat"].traffic
