"""Paper-scale smoke benchmark.

Runs the *verbatim* Table 5.1 configuration (500 nodes, 5 km², 200
tokens, 250 kBps, 100 m) for one simulated hour under the full incentive
scheme, proving the exact paper setup executes end-to-end and measuring
its wall-clock cost (≈45 s per simulated hour on a laptop core, so the
full 24 h evaluation is ≈15–20 min per run — see EXPERIMENTS.md).
"""

from benchmarks.conftest import save_figure
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.metrics.reports import format_table


def test_paper_scale_one_hour(benchmark, output_dir):
    config = ScenarioConfig.paper_scale(duration=3_600.0, ttl=3_600.0)

    result = benchmark.pedantic(
        run_scenario,
        args=(config, "incentive"),
        kwargs=dict(seed=1),
        rounds=1, iterations=1,
    )
    summary = result.summary()
    save_figure(output_dir, "paper_scale_smoke", format_table(
        ["metric", "value"],
        [
            ["nodes", config.n_nodes],
            ["area (km^2)", round(config.area_km2, 2)],
            ["simulated hours", 1.0],
            ["messages created", len(result.metrics.messages)],
            ["intended pairs", result.metrics.intended_pairs()],
            ["mdr", result.mdr],
            ["transfers", result.traffic],
            ["token supply", summary["token_supply"]],
        ],
        title="Table 5.1 configuration, 1 simulated hour",
    ))
    assert config.n_nodes == 500
    assert result.mdr > 0.3
    assert result.traffic > 1_000
    # The 200-token economy is live and conserved at full scale
    # (floating-point tolerance: thousands of settlements accumulate
    # ~1e-11 of rounding on a 100k-token supply).
    ledger = result.router.ledger
    assert abs(ledger.total_supply() - ledger.total_endowment()) < 1e-6
    assert ledger.transactions