"""Shared fixtures for the benchmark harness.

Every ``test_fig5_*`` benchmark regenerates one figure of the paper's
evaluation on the scaled (`ScenarioConfig.small`) scenario and writes
the series it produced to ``benchmarks/output/``.  Absolute numbers are
not expected to match the paper (our substrate is a custom simulator at
reduced scale); the *shapes* — who wins, roughly by what factor, where
trends bend — are asserted in EXPERIMENTS.md terms.

Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import trace_cache
from repro.experiments.config import ScenarioConfig

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session", autouse=True)
def shared_trace_cache(tmp_path_factory) -> trace_cache.TraceCache:
    """One contact-trace cache shared by every benchmark in the session.

    Many figure benchmarks re-derive traces for the same
    ``(ScenarioConfig.small(), seed)`` points; caching them cuts the
    suite's mobility cost to one detection per distinct point.  Honours
    ``REPRO_TRACE_CACHE`` so CI can persist the cache across jobs;
    otherwise a session-scoped temporary directory is used.
    """
    directory = os.environ.get(trace_cache.ENV_VAR) or tmp_path_factory.mktemp(
        "trace-cache"
    )
    cache = trace_cache.TraceCache(directory)
    previous = trace_cache.get_default_cache()
    trace_cache.set_default_cache(cache)
    yield cache
    trace_cache.set_default_cache(previous)


@pytest.fixture(scope="session")
def base_config() -> ScenarioConfig:
    """The scaled scenario every figure benchmark runs on."""
    return ScenarioConfig.small()


@pytest.fixture(scope="session")
def output_dir() -> Path:
    """Directory where benchmarks drop their figure text output."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


def save_figure(output_dir: Path, name: str, text: str) -> None:
    """Persist one figure's formatted series and echo it to stdout."""
    (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print()
    print(text)
