"""Benchmark: the proposed scheme against other incentive mechanisms.

The thesis's related work surveys TFT, RELICS and the Seregina two-hop
reward scheme as the credit/reciprocity alternatives; this bench runs
them all on the identical scenario (20 % selfish) and reports the
MDR/traffic trade-off each mechanism buys.
"""

import pytest

from benchmarks.conftest import save_figure
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_comparison
from repro.metrics.reports import format_table

SCHEMES = (
    "incentive", "chitchat", "tit-for-tat", "relics", "two-hop-reward",
)
SEED = 1


@pytest.fixture(scope="module")
def comparator_config():
    return ScenarioConfig.small(selfish_fraction=0.2)


def test_incentive_mechanism_comparison(benchmark, comparator_config,
                                        output_dir):
    results = benchmark.pedantic(
        run_comparison,
        args=(comparator_config, list(SCHEMES)),
        kwargs=dict(seed=SEED),
        rounds=1, iterations=1,
    )
    rows = [
        [scheme, results[scheme].mdr, results[scheme].traffic,
         int(results[scheme].summary().get("blocked_no_tokens", 0))]
        for scheme in SCHEMES
    ]
    save_figure(output_dir, "incentive_comparators", format_table(
        ["scheme", "mdr", "traffic", "blocked"],
        rows, title="Incentive mechanisms on the same scenario",
    ))

    # Every mechanism pays some MDR for its discipline relative to the
    # unconstrained ChitChat baseline...
    chitchat_mdr = results["chitchat"].mdr
    for scheme in ("incentive", "tit-for-tat", "relics"):
        assert results[scheme].mdr <= chitchat_mdr + 0.02, scheme
    # ...and all remain usable networks.
    for scheme in SCHEMES:
        assert results[scheme].mdr > 0.3, scheme
