"""Benchmark E6 — Figure 5.6: priority-segmented MDR.

Paper shape: under the incentive scheme high-priority (high-quality,
larger) messages are served preferentially — relays transfer them first
and rational buffers evict low-priority messages first — so within the
incentive scheme HIGH beats LOW, and the HIGH class gives up far less
versus ChitChat than the LOW class does.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import fig5_6_priority_mdr

SELFISH_LEVELS = (0.2, 0.4)
SEEDS = (1, 2)


def test_fig5_6(benchmark, base_config, output_dir):
    figure = benchmark.pedantic(
        fig5_6_priority_mdr,
        kwargs=dict(
            base=base_config, selfish_levels=SELFISH_LEVELS, seeds=SEEDS,
        ),
        rounds=1, iterations=1,
    )
    save_figure(output_dir, "fig5_6", figure.format())

    for selfish in ("20%", "40%"):
        chitchat = dict(figure.series[f"chitchat selfish={selfish}"])
        incentive = dict(figure.series[f"incentive selfish={selfish}"])
        # Within the incentive scheme: HIGH (x=1) beats LOW (x=3).
        assert incentive[1.0] > incentive[3.0], selfish
        # The incentive scheme protects HIGH far better than LOW: the
        # MDR it gives up vs ChitChat is smaller for the HIGH class.
        high_cost = chitchat[1.0] - incentive[1.0]
        low_cost = chitchat[3.0] - incentive[3.0]
        assert high_cost < low_cost, selfish
