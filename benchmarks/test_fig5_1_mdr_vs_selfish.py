"""Benchmark E1 — Figure 5.1: MDR vs percentage of selfish nodes.

Paper shape: MDR falls as the selfish fraction rises for both schemes;
the incentive scheme tracks ChitChat from slightly below (exhausted
tokens); MDR stays above zero even at 100 % selfish because a selfish
radio is still on for one in ten encounters.
"""

from benchmarks.conftest import save_figure
from repro.experiments.figures import fig5_1_mdr_vs_selfish

SELFISH_GRID = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
SEEDS = (1, 2)


def test_fig5_1(benchmark, base_config, output_dir):
    figure = benchmark.pedantic(
        fig5_1_mdr_vs_selfish,
        kwargs=dict(base=base_config, selfish_grid=SELFISH_GRID, seeds=SEEDS),
        rounds=1, iterations=1,
    )
    save_figure(output_dir, "fig5_1", figure.format())

    chitchat = figure.series_values("chitchat")
    incentive = figure.series_values("incentive")
    # Monotone-ish decline: the 100% point sits well below the 0% point.
    assert chitchat[-1] < chitchat[0] * 0.5
    assert incentive[-1] < incentive[0] * 0.5
    # The incentive scheme sits slightly below ChitChat on average.
    mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
    assert mean(incentive) <= mean(chitchat)
    assert mean(incentive) >= mean(chitchat) - 0.25
    # Nonzero delivery even at 100% selfish (1-in-10 participation).
    assert incentive[-1] > 0.0
