"""Sensitivity benchmarks: do the paper's conclusions survive changed
substrate assumptions?

* **Mobility** — the evaluation uses Random Waypoint; we repeat the
  headline comparison under Random Walk and Manhattan-grid mobility.
* **Reactive fragmentation** — ONE restarts aborted transfers from
  zero; resuming partial transfers should only help (more large
  messages survive short contacts).
* **Finite batteries** — with energy an actually scarce resource
  (the paper's stated reason nodes turn selfish), dead radios depress
  delivery for every scheme.
"""

import pytest

from benchmarks.conftest import save_figure
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_comparison, run_scenario
from repro.metrics.reports import format_table

SEED = 1


def test_mobility_sensitivity(benchmark, output_dir):
    def run_all():
        results = {}
        for mobility in ("random-waypoint", "random-walk", "manhattan"):
            config = ScenarioConfig.small(
                mobility=mobility, selfish_fraction=0.2,
            )
            results[mobility] = run_comparison(
                config, ["chitchat", "incentive"], seed=SEED,
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for mobility, pair in results.items():
        chitchat, incentive = pair["chitchat"], pair["incentive"]
        reduction = (
            100.0 * (chitchat.traffic - incentive.traffic)
            / max(chitchat.traffic, 1)
        )
        rows.append([
            mobility, chitchat.mdr, incentive.mdr, reduction,
        ])
    save_figure(output_dir, "sensitivity_mobility", format_table(
        ["mobility", "chitchat MDR", "incentive MDR", "traffic saved %"],
        rows, title="Mobility-model sensitivity (20% selfish)",
    ))
    # The headline ordering (incentive trades a little MDR for traffic)
    # holds under every mobility model.
    for mobility, pair in results.items():
        assert pair["incentive"].mdr <= pair["chitchat"].mdr + 0.02, mobility
        assert pair["incentive"].mdr > 0.3, mobility


def test_fragmentation_sensitivity(benchmark, output_dir):
    def run_both():
        plain = run_scenario(
            ScenarioConfig.small(), "incentive", seed=SEED,
        )
        resumed = run_scenario(
            ScenarioConfig.small(resume_partial_transfers=True),
            "incentive", seed=SEED,
        )
        return plain, resumed

    plain, resumed = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_figure(output_dir, "sensitivity_fragmentation", format_table(
        ["transfers", "mdr", "aborted"],
        [
            ["restart-from-zero", plain.mdr,
             plain.metrics.transfers_aborted],
            ["reactive-fragmentation", resumed.mdr,
             resumed.metrics.transfers_aborted],
        ],
        title="Reactive fragmentation",
    ))
    # Resuming partial transfers can only help delivery.
    assert resumed.mdr >= plain.mdr - 0.02


def test_battery_sensitivity(benchmark, output_dir):
    def run_both():
        mains = run_scenario(ScenarioConfig.small(), "chitchat", seed=SEED)
        battery = run_scenario(
            ScenarioConfig.small(battery_capacity=20.0), "chitchat",
            seed=SEED,
        )
        return mains, battery

    mains, battery = benchmark.pedantic(run_both, rounds=1, iterations=1)
    save_figure(output_dir, "sensitivity_battery", format_table(
        ["power", "mdr", "transfers"],
        [
            ["mains (paper setting)", mains.mdr, mains.traffic],
            ["20 J battery", battery.mdr, battery.traffic],
        ],
        title="Finite-battery sensitivity",
    ))
    # Scarce energy kills radios and with them deliveries.
    assert battery.mdr < mains.mdr
    assert battery.traffic < mains.traffic
