"""Unit tests for contact detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MobilityError
from repro.mobility.contact import ContactDetector, detect_contacts, pairs_in_range
from repro.mobility.stationary import Stationary
from repro.mobility.random_waypoint import RandomWaypoint


def brute_force_pairs(positions: np.ndarray, radius: float) -> set:
    """O(n^2) reference for pairs_in_range.

    Mirrors the grid hash's arithmetic exactly (squared component
    differences against ``radius * radius``) so pairs sitting exactly on
    the radius boundary compare identically in both implementations.
    """
    n = positions.shape[0]
    radius_sq = radius * radius
    pairs = set()
    for i in range(n):
        for j in range(i + 1, n):
            delta = positions[i] - positions[j]
            if delta[0] * delta[0] + delta[1] * delta[1] <= radius_sq:
                pairs.add((i, j))
    return pairs


class TestPairsInRange:
    def test_empty_and_single(self):
        assert pairs_in_range(np.zeros((0, 2)), 10.0) == set()
        assert pairs_in_range(np.zeros((1, 2)), 10.0) == set()

    def test_two_nodes_in_range(self):
        positions = np.array([[0.0, 0.0], [5.0, 0.0]])
        assert pairs_in_range(positions, 10.0) == {(0, 1)}

    def test_two_nodes_out_of_range(self):
        positions = np.array([[0.0, 0.0], [15.0, 0.0]])
        assert pairs_in_range(positions, 10.0) == set()

    def test_boundary_is_inclusive(self):
        positions = np.array([[0.0, 0.0], [10.0, 0.0]])
        assert pairs_in_range(positions, 10.0) == {(0, 1)}

    def test_matches_brute_force(self, rng):
        positions = rng.uniform(0, 500, size=(80, 2))
        radius = 60.0
        expected = set()
        for i in range(80):
            for j in range(i + 1, 80):
                if np.hypot(*(positions[i] - positions[j])) <= radius:
                    expected.add((i, j))
        assert pairs_in_range(positions, radius) == expected

    def test_pairs_across_grid_cells(self):
        # Nodes on either side of a cell boundary must still pair.
        positions = np.array([[9.9, 0.0], [10.1, 0.0]])
        assert pairs_in_range(positions, 10.0) == {(0, 1)}

    def test_invalid_radius_rejected(self):
        with pytest.raises(MobilityError):
            pairs_in_range(np.zeros((2, 2)), 0.0)


class TestPairsInRangeProperties:
    """Grid-hash result == O(n^2) brute force, over adversarial inputs."""

    # Coordinates and radii are quantised to multiples of 2**-10 so every
    # delta, square and comparison below is exact in float64.  Unrestricted
    # floats admit pathological magnitude spreads (e.g. 1.0 vs -1e-119 at
    # radius 1.0) where the rounded pairwise distance equals the radius
    # even though the true distance exceeds it — there the grid hash gives
    # the real-arithmetic answer while any float reference disagrees.
    _COORD = st.integers(
        min_value=-10_240_000, max_value=10_240_000
    ).map(lambda k: k / 1024.0)

    @settings(max_examples=60, deadline=None)
    @given(
        coords=st.lists(st.tuples(_COORD, _COORD), min_size=0, max_size=40),
        radius=st.integers(min_value=512, max_value=512_000).map(
            lambda k: k / 1024.0
        ),
    )
    def test_matches_brute_force_on_random_inputs(self, coords, radius):
        positions = np.array(coords, dtype=float).reshape(-1, 2)
        assert pairs_in_range(positions, radius) == brute_force_pairs(
            positions, radius
        )

    @pytest.mark.parametrize("loop_seed", range(8))
    def test_matches_brute_force_with_boundary_pairs(self, loop_seed):
        """Seeded sets salted with exact-radius, coincident and negative
        points — the cases a naive cell hash gets wrong."""
        rng = np.random.default_rng(1000 + loop_seed)
        radius = float(rng.uniform(20.0, 120.0))
        positions = rng.uniform(-400.0, 400.0, size=(30, 2))
        anchor = positions[0]
        salted = np.vstack([
            positions,
            anchor + np.array([radius, 0.0]),      # exactly at the boundary
            anchor + np.array([0.0, -radius]),     # boundary, below
            anchor,                                # coincident with anchor
            np.array([-radius, -radius]),          # negative coordinates
        ])
        assert pairs_in_range(salted, radius) == brute_force_pairs(
            salted, radius
        )

    def test_exact_boundary_pair_included(self):
        positions = np.array([[0.0, 0.0], [0.0, 73.0]])
        assert pairs_in_range(positions, 73.0) == {(0, 1)}

    def test_coincident_points_pair(self):
        positions = np.array([[5.0, -5.0], [5.0, -5.0], [5.0, -5.0]])
        assert pairs_in_range(positions, 1.0) == {(0, 1), (0, 2), (1, 2)}

    def test_negative_coordinates_across_cell_origin(self):
        # The pair straddles the (0, 0) cell corner; floor division on
        # negatives must still land them in adjacent cells.
        positions = np.array([[-0.5, -0.5], [0.5, 0.5]])
        assert pairs_in_range(positions, 10.0) == {(0, 1)}

    def test_all_nodes_in_one_cell(self):
        # Degenerate layout for the cell list: a cluster much tighter
        # than the radius collapses into a single grid cell, so every
        # pair comes from the same-cell branch of the candidate scan.
        rng = np.random.default_rng(42)
        positions = 500.0 + rng.uniform(0.0, 5.0, size=(25, 2))
        radius = 200.0
        assert pairs_in_range(positions, radius) == brute_force_pairs(
            positions, radius
        )
        # With the cluster tighter than the radius, all pairs connect.
        assert len(pairs_in_range(positions, radius)) == 25 * 24 // 2

    @pytest.mark.parametrize("width,height", [
        (10_000.0, 10.0),   # wide strip: one cell row, many columns
        (10.0, 10_000.0),   # tall strip: one cell column, many rows
        (5_000.0, 50.0),    # strongly rectangular
    ])
    def test_non_square_areas(self, width, height):
        # Extreme aspect ratios stress the linearised cell key: the
        # stride is derived from the y-extent, which is tiny here.
        rng = np.random.default_rng(int(width) % 97)
        positions = rng.uniform(
            [0.0, 0.0], [width, height], size=(60, 2)
        )
        radius = 80.0
        assert pairs_in_range(positions, radius) == brute_force_pairs(
            positions, radius
        )

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_populations(self, n):
        rng = np.random.default_rng(n)
        positions = rng.uniform(0.0, 50.0, size=(n, 2))
        radius = 40.0
        assert pairs_in_range(positions, radius) == brute_force_pairs(
            positions, radius
        )


class TestContactDetector:
    def test_contact_opens_and_closes(self):
        detector = ContactDetector(10.0)
        near = np.array([[0.0, 0.0], [5.0, 0.0]])
        far = np.array([[0.0, 0.0], [50.0, 0.0]])
        detector.scan(0.0, near)
        detector.scan(10.0, near)
        detector.scan(20.0, far)
        trace = detector.finish(30.0)
        assert len(trace) == 1
        assert trace[0].start == 0.0
        assert trace[0].end == 20.0

    def test_open_contact_closed_at_finish(self):
        detector = ContactDetector(10.0)
        near = np.array([[0.0, 0.0], [5.0, 0.0]])
        detector.scan(0.0, near)
        trace = detector.finish(25.0)
        assert len(trace) == 1
        assert trace[0].end == 25.0

    def test_reconnection_creates_two_contacts(self):
        detector = ContactDetector(10.0)
        near = np.array([[0.0, 0.0], [5.0, 0.0]])
        far = np.array([[0.0, 0.0], [50.0, 0.0]])
        for time, positions in [(0, near), (10, far), (20, near), (30, far)]:
            detector.scan(float(time), positions)
        trace = detector.finish(40.0)
        assert len(trace) == 2
        assert [(c.start, c.end) for c in trace] == [(0.0, 10.0), (20.0, 30.0)]

    def test_scan_times_must_increase(self):
        detector = ContactDetector(10.0)
        detector.scan(0.0, np.zeros((2, 2)))
        with pytest.raises(MobilityError):
            detector.scan(0.0, np.zeros((2, 2)))

    def test_open_pairs_property(self):
        detector = ContactDetector(10.0)
        detector.scan(0.0, np.array([[0.0, 0.0], [5.0, 0.0]]))
        assert detector.open_pairs == {(0, 1)}


class TestDetectorIncrementalConsistency:
    """The detector's sorted-array diff must agree with recomputing the
    in-range pair set from scratch at every scan, and the finished trace
    must match a naive dict-based reference detector."""

    @pytest.mark.parametrize("loop_seed", range(4))
    def test_open_pairs_match_scratch_recompute_every_scan(self, loop_seed):
        rng = np.random.default_rng(200 + loop_seed)
        radius = 75.0
        positions = rng.uniform(0.0, 600.0, size=(40, 2))
        detector = ContactDetector(radius)
        for step in range(25):
            detector.scan(float(step * 10), positions)
            assert detector.open_pairs == pairs_in_range(positions, radius)
            positions = positions + rng.normal(0.0, 25.0, size=positions.shape)

    @pytest.mark.parametrize("loop_seed", range(3))
    def test_trace_matches_naive_reference_detector(self, loop_seed):
        rng = np.random.default_rng(300 + loop_seed)
        radius = 90.0
        positions = rng.uniform(0.0, 500.0, size=(30, 2))
        detector = ContactDetector(radius)
        open_since: dict = {}
        reference: list = []
        for step in range(30):
            time = float(step * 5)
            detector.scan(time, positions)
            current = brute_force_pairs(positions, radius)
            for pair in list(open_since):
                if pair not in current:
                    reference.append((open_since.pop(pair), time, pair))
            for pair in current:
                open_since.setdefault(pair, time)
            positions = positions + rng.normal(0.0, 20.0, size=positions.shape)
        end = 30 * 5.0
        trace = detector.finish(end)
        for pair, start in open_since.items():
            reference.append((start, end, pair))
        reference.sort(key=lambda c: (c[0], c[1], c[2]))
        assert [(c.start, c.end, c.pair) for c in trace] == reference

    def test_scan_handles_population_appearing_and_vanishing(self):
        # All pairs closing at once exercises the bulk-close branch.
        detector = ContactDetector(50.0)
        clustered = np.full((10, 2), 100.0)
        scattered = np.arange(20, dtype=float).reshape(10, 2) * 1000.0
        detector.scan(0.0, clustered)
        assert len(detector.open_pairs) == 45
        detector.scan(10.0, scattered)
        assert detector.open_pairs == set()
        detector.scan(20.0, clustered)
        trace = detector.finish(30.0)
        assert len(trace) == 90
        assert {(c.start, c.end) for c in trace} == {
            (0.0, 10.0), (20.0, 30.0)
        }


class TestDetectContacts:
    def test_stationary_pair_yields_full_duration_contact(self, rng):
        model = Stationary(
            3, (1000.0, 1000.0), rng,
            positions=[[0, 0], [50, 0], [900, 900]],
        )
        trace = detect_contacts(model, radius=100.0, duration=500.0,
                                scan_interval=10.0)
        assert len(trace) == 1
        only = trace[0]
        assert only.pair == (0, 1)
        assert only.start == 0.0
        assert only.end == 500.0

    def test_random_waypoint_produces_contacts(self):
        model = RandomWaypoint(
            40, (600.0, 600.0), np.random.default_rng(3)
        )
        trace = detect_contacts(model, radius=100.0, duration=1200.0,
                                scan_interval=10.0)
        assert len(trace) > 0
        assert trace.duration() <= 1200.0
        for c in trace:
            assert 0.0 <= c.start < c.end <= 1200.0

    def test_invalid_parameters_rejected(self, rng):
        model = Stationary(2, (100.0, 100.0), rng)
        with pytest.raises(MobilityError):
            detect_contacts(model, radius=10.0, duration=0.0)
        with pytest.raises(MobilityError):
            detect_contacts(model, radius=10.0, duration=10.0,
                            scan_interval=0.0)

    def test_deterministic_given_seed(self):
        def build():
            model = RandomWaypoint(20, (500.0, 500.0),
                                   np.random.default_rng(9))
            return detect_contacts(model, radius=80.0, duration=600.0,
                                   scan_interval=10.0)

        first, second = build(), build()
        assert [(c.start, c.end, c.pair) for c in first] == [
            (c.start, c.end, c.pair) for c in second
        ]
