"""Tests for reactive fragmentation (partial-transfer resumption)."""

import pytest

from tests.helpers import contact, make_message, trace_of
from repro.network.node import Node
from repro.network.world import World
from repro.routing.epidemic import EpidemicRouter
from repro.sim.engine import Engine


def build_world(resume):
    nodes = [
        Node(0, [], buffer_capacity=1_000_000),
        Node(1, ["flood"], buffer_capacity=1_000_000),
    ]
    return World(
        Engine(), nodes, EpidemicRouter(),
        link_speed=1_000.0, resume_partial_transfers=resume,
    )


class TestReactiveFragmentation:
    def test_resumed_transfer_completes_in_split_contacts(self):
        # A 10 kB message needs 10 s at 1 kB/s; two 6-second contacts
        # suffice only when the second attempt resumes at byte 6000.
        world = build_world(resume=True)
        message = make_message(source=0, size=10_000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 16.0, 0, 1),
            contact(100.0, 106.0, 0, 1),
        ))
        world.run(200.0)
        assert message.uuid in world.node(1).delivered
        assert world.metrics.transfers_aborted == 1
        assert world.metrics.transfers_completed == 1

    def test_without_resume_restart_from_zero_fails(self):
        world = build_world(resume=False)
        message = make_message(source=0, size=10_000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 16.0, 0, 1),
            contact(100.0, 106.0, 0, 1),
        ))
        world.run(200.0)
        assert message.uuid not in world.node(1).delivered
        assert world.metrics.transfers_aborted == 2

    def test_partial_progress_accumulates_across_attempts(self):
        # Three 4-second contacts move 4 kB each; only their sum covers
        # the 10 kB message.
        world = build_world(resume=True)
        message = make_message(source=0, size=10_000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 14.0, 0, 1),
            contact(100.0, 104.0, 0, 1),
            contact(200.0, 204.0, 0, 1),
        ))
        world.run(300.0)
        assert message.uuid in world.node(1).delivered

    def test_progress_cleared_after_completion(self):
        world = build_world(resume=True)
        message = make_message(source=0, size=2_000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 20.0, 0, 1)))
        world.run(100.0)
        assert message.uuid in world.node(1).delivered
        assert world._partial_bytes == {}

    def test_queued_abort_records_no_progress(self):
        # Two messages share one direction; the second never starts
        # before the contact breaks, so it must not record progress.
        world = build_world(resume=True)
        first = make_message(source=0, size=4_000, keywords=("flood",))
        second = make_message(source=0, size=4_000, keywords=("flood",))
        world.inject_message(first)
        world.inject_message(second)
        world.load_contact_trace(trace_of(contact(10.0, 12.0, 0, 1)))
        world.run(100.0)
        assert world._partial_bytes.get((1, first.uuid), 0.0) > 0.0
        assert (1, second.uuid) not in world._partial_bytes
