"""Unit tests for contact links and transfers."""

import pytest

from tests.helpers import make_message
from repro.errors import ConfigurationError, SimulationError
from repro.network.link import Link
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def link(engine):
    return Link(engine, 0, 1, speed=100.0, distance=50.0)


class TestConstruction:
    def test_endpoints_canonicalised(self, engine):
        link = Link(engine, 5, 2, speed=10.0)
        assert link.pair == (2, 5)

    def test_peer_of(self, link):
        assert link.peer_of(0) == 1
        assert link.peer_of(1) == 0
        with pytest.raises(ConfigurationError):
            link.peer_of(9)

    def test_self_link_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            Link(engine, 1, 1, speed=10.0)

    def test_invalid_speed_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            Link(engine, 0, 1, speed=0.0)

    def test_transfer_time(self, link):
        assert link.transfer_time(make_message(size=250)) == pytest.approx(2.5)


class TestTransfers:
    def test_transfer_completes_after_duration(self, engine, link):
        done = []
        message = make_message(size=100)  # 1 second at 100 B/s
        link.send(0, message, on_complete=lambda t: done.append(engine.now))
        engine.run_until(0.5)
        assert done == []
        engine.run_until(1.0)
        assert done == [1.0]

    def test_transfers_in_one_direction_are_serial(self, engine, link):
        done = []
        link.send(0, make_message(size=100),
                  on_complete=lambda t: done.append(("a", engine.now)))
        link.send(0, make_message(size=100),
                  on_complete=lambda t: done.append(("b", engine.now)))
        engine.run_until(3.0)
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_directions_are_independent(self, engine, link):
        done = []
        link.send(0, make_message(size=100),
                  on_complete=lambda t: done.append(("fwd", engine.now)))
        link.send(1, make_message(size=100),
                  on_complete=lambda t: done.append(("rev", engine.now)))
        engine.run_until(1.0)
        assert sorted(done) == [("fwd", 1.0), ("rev", 1.0)]

    def test_busy_and_queued(self, engine, link):
        link.send(0, make_message(size=100), on_complete=lambda t: None)
        link.send(0, make_message(size=100), on_complete=lambda t: None)
        assert link.busy(0)
        assert link.queued(0) == 1
        assert not link.busy(1)

    def test_completed_transfers_recorded(self, engine, link):
        message = make_message(size=100)
        transfer = link.send(0, message, on_complete=lambda t: None)
        engine.run_until(1.0)
        assert transfer.completed
        assert link.completed_transfers == (transfer,)


class TestClosure:
    def test_close_aborts_in_flight_transfer(self, engine, link):
        completed, aborted = [], []
        link.send(
            0, make_message(size=1_000),
            on_complete=completed.append, on_abort=aborted.append,
        )
        engine.run_until(2.0)
        casualties = link.close()
        engine.run_until(20.0)
        assert completed == []
        assert len(aborted) == 1
        assert casualties[0].aborted

    def test_close_aborts_queued_transfers(self, engine, link):
        aborted = []
        link.send(0, make_message(size=1_000),
                  on_complete=lambda t: None, on_abort=aborted.append)
        link.send(0, make_message(size=1_000),
                  on_complete=lambda t: None, on_abort=aborted.append)
        link.close()
        assert len(aborted) == 2

    def test_send_on_closed_link_rejected(self, engine, link):
        link.close()
        with pytest.raises(SimulationError):
            link.send(0, make_message(size=10), on_complete=lambda t: None)

    def test_close_is_idempotent(self, engine, link):
        link.send(0, make_message(size=100), on_complete=lambda t: None)
        first = link.close()
        second = link.close()
        assert len(first) == 1
        assert second == []

    def test_completion_callback_closing_link_is_safe(self, engine, link):
        # A delivery may exhaust a token balance and close the contact.
        link.send(0, make_message(size=100),
                  on_complete=lambda t: link.close())
        link.send(0, make_message(size=100), on_complete=lambda t: None)
        engine.run_until(5.0)
        assert link.closed
