"""Unit tests for contact links and transfers."""

import pytest

from tests.helpers import make_message
from repro.errors import ConfigurationError, SimulationError
from repro.network.link import Link
from repro.sim.engine import Engine


@pytest.fixture
def engine():
    return Engine()


@pytest.fixture
def link(engine):
    return Link(engine, 0, 1, speed=100.0, distance=50.0)


class TestConstruction:
    def test_endpoints_canonicalised(self, engine):
        link = Link(engine, 5, 2, speed=10.0)
        assert link.pair == (2, 5)

    def test_peer_of(self, link):
        assert link.peer_of(0) == 1
        assert link.peer_of(1) == 0
        with pytest.raises(ConfigurationError):
            link.peer_of(9)

    def test_self_link_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            Link(engine, 1, 1, speed=10.0)

    def test_invalid_speed_rejected(self, engine):
        with pytest.raises(ConfigurationError):
            Link(engine, 0, 1, speed=0.0)

    def test_transfer_time(self, link):
        assert link.transfer_time(make_message(size=250)) == pytest.approx(2.5)


class TestTransfers:
    def test_transfer_completes_after_duration(self, engine, link):
        done = []
        message = make_message(size=100)  # 1 second at 100 B/s
        link.send(0, message, on_complete=lambda t: done.append(engine.now))
        engine.run_until(0.5)
        assert done == []
        engine.run_until(1.0)
        assert done == [1.0]

    def test_transfers_in_one_direction_are_serial(self, engine, link):
        done = []
        link.send(0, make_message(size=100),
                  on_complete=lambda t: done.append(("a", engine.now)))
        link.send(0, make_message(size=100),
                  on_complete=lambda t: done.append(("b", engine.now)))
        engine.run_until(3.0)
        assert done == [("a", 1.0), ("b", 2.0)]

    def test_directions_are_independent(self, engine, link):
        done = []
        link.send(0, make_message(size=100),
                  on_complete=lambda t: done.append(("fwd", engine.now)))
        link.send(1, make_message(size=100),
                  on_complete=lambda t: done.append(("rev", engine.now)))
        engine.run_until(1.0)
        assert sorted(done) == [("fwd", 1.0), ("rev", 1.0)]

    def test_busy_and_queued(self, engine, link):
        link.send(0, make_message(size=100), on_complete=lambda t: None)
        link.send(0, make_message(size=100), on_complete=lambda t: None)
        assert link.busy(0)
        assert link.queued(0) == 1
        assert not link.busy(1)

    def test_completed_transfers_recorded(self, engine, link):
        message = make_message(size=100)
        transfer = link.send(0, message, on_complete=lambda t: None)
        engine.run_until(1.0)
        assert transfer.completed
        assert link.completed_transfers == (transfer,)


class TestClosure:
    def test_close_aborts_in_flight_transfer(self, engine, link):
        completed, aborted = [], []
        link.send(
            0, make_message(size=1_000),
            on_complete=completed.append, on_abort=aborted.append,
        )
        engine.run_until(2.0)
        casualties = link.close()
        engine.run_until(20.0)
        assert completed == []
        assert len(aborted) == 1
        assert casualties[0].aborted

    def test_close_aborts_queued_transfers(self, engine, link):
        aborted = []
        link.send(0, make_message(size=1_000),
                  on_complete=lambda t: None, on_abort=aborted.append)
        link.send(0, make_message(size=1_000),
                  on_complete=lambda t: None, on_abort=aborted.append)
        link.close()
        assert len(aborted) == 2

    def test_send_on_closed_link_rejected(self, engine, link):
        link.close()
        with pytest.raises(SimulationError):
            link.send(0, make_message(size=10), on_complete=lambda t: None)

    def test_close_is_idempotent(self, engine, link):
        link.send(0, make_message(size=100), on_complete=lambda t: None)
        first = link.close()
        second = link.close()
        assert len(first) == 1
        assert second == []

    def test_completion_callback_closing_link_is_safe(self, engine, link):
        # A delivery may exhaust a token balance and close the contact.
        link.send(0, make_message(size=100),
                  on_complete=lambda t: link.close())
        link.send(0, make_message(size=100), on_complete=lambda t: None)
        engine.run_until(5.0)
        assert link.closed


class TestCloseReentrancy:
    """Regressions: on_abort callbacks that re-enter the link during
    close() must fail cleanly, never corrupt state or double-fire."""

    def test_abort_callback_calling_close_is_noop(self, engine, link):
        aborted = []

        def on_abort(transfer):
            aborted.append(transfer)
            assert link.close() == []  # already closed: no new casualties

        link.send(0, make_message(size=1_000),
                  on_complete=lambda t: None, on_abort=on_abort)
        casualties = link.close()
        assert len(casualties) == 1
        assert aborted == casualties

    def test_abort_callback_calling_send_fails_cleanly(self, engine, link):
        errors = []

        def on_abort(transfer):
            try:
                link.send(0, make_message(size=10),
                          on_complete=lambda t: None)
            except SimulationError as exc:
                errors.append(exc)

        link.send(0, make_message(size=1_000),
                  on_complete=lambda t: None, on_abort=on_abort)
        link.close()
        assert len(errors) == 1
        assert link.queued(0) == 0 and not link.busy(0)

    def test_abort_callbacks_never_double_fire(self, engine, link):
        fired = []
        # Three transfers: one in flight, two queued. The first abort
        # callback re-enters close(); every callback must still fire
        # exactly once.
        for tag in ("a", "b", "c"):
            link.send(
                0, make_message(size=1_000),
                on_complete=lambda t: None,
                on_abort=lambda t, tag=tag: (fired.append(tag),
                                             link.close()),
            )
        link.close()
        engine.run_until(60.0)
        assert fired == ["a", "b", "c"]

    def test_state_cleared_before_callbacks(self, engine, link):
        observed = []

        def on_abort(transfer):
            observed.append((link.busy(0), link.queued(0)))

        link.send(0, make_message(size=1_000),
                  on_complete=lambda t: None, on_abort=on_abort)
        link.send(0, make_message(size=1_000),
                  on_complete=lambda t: None, on_abort=on_abort)
        link.close()
        assert observed == [(False, 0), (False, 0)]

    def test_close_records_reason(self, engine, link):
        transfer = link.send(0, make_message(size=1_000),
                             on_complete=lambda t: None)
        link.close(reason="churn")
        assert transfer.aborted and transfer.abort_reason == "churn"

    def test_no_completion_after_close_during_abort(self, engine, link):
        completed = []
        link.send(0, make_message(size=100),
                  on_complete=completed.append,
                  on_abort=lambda t: link.close())
        link.close()
        engine.run_until(10.0)  # the cancelled completion must not fire
        assert completed == []


class TestFaultHook:
    def test_faulted_transfer_aborts_with_reason(self, engine):
        link = Link(engine, 0, 1, speed=100.0,
                    fault_hook=lambda t: "loss")
        completed, aborted = [], []
        transfer = link.send(0, make_message(size=100),
                             on_complete=completed.append,
                             on_abort=aborted.append)
        engine.run_until(1.0)
        assert completed == []
        assert aborted == [transfer]
        assert transfer.aborted and transfer.abort_reason == "loss"
        assert not link.closed  # faults do not tear the contact down

    def test_queue_continues_past_faulted_transfer(self, engine):
        verdicts = iter(["corruption", None])
        link = Link(engine, 0, 1, speed=100.0,
                    fault_hook=lambda t: next(verdicts))
        done = []
        link.send(0, make_message(size=100),
                  on_complete=lambda t: done.append("first"),
                  on_abort=lambda t: done.append("first-aborted"))
        link.send(0, make_message(size=100),
                  on_complete=lambda t: done.append("second"))
        engine.run_until(5.0)
        assert done == ["first-aborted", "second"]

    def test_clean_verdict_completes_normally(self, engine):
        link = Link(engine, 0, 1, speed=100.0, fault_hook=lambda t: None)
        transfer = link.send(0, make_message(size=100),
                             on_complete=lambda t: None)
        engine.run_until(1.0)
        assert transfer.completed and not transfer.aborted

    def test_abort_callback_can_resend_after_fault(self, engine):
        # The retransmission path: the link stays open after a loss, so
        # the abort callback may immediately queue the copy again.
        verdicts = iter(["loss"])
        link = Link(engine, 0, 1, speed=100.0,
                    fault_hook=lambda t: next(verdicts, None))
        delivered = []

        def on_abort(transfer):
            link.send(transfer.sender, transfer.message,
                      on_complete=lambda t: delivered.append(engine.now))

        link.send(0, make_message(size=100),
                  on_complete=lambda t: delivered.append(engine.now),
                  on_abort=on_abort)
        engine.run_until(5.0)
        assert delivered == [2.0]
