"""The population layer: heterogeneous node classes end to end.

Pins the contracts DESIGN.md §11 promises:

* spec/config validation names the offending field (satellite: config
  invariants raise :class:`ConfigurationError`, never asserts);
* class sizes come from largest-remainder apportionment, no RNG;
* assignment draws on per-class ``population:{name}`` streams, so a
  single class consumes **zero** RNG and editing one class never
  perturbs the draws of classes listed before it (stream isolation);
* the heterogeneous contact detector matches brute force under the
  ``max(r_a, r_b)`` semantics and degrades to the scalar cell list;
* a single-class population is **bit-identical** to the legacy scalar
  scenario (the golden parity gate the CI hetero-smoke job runs);
* the 3-class preset sweep runs every class-aware scheme with a clean
  conservation audit and per-class breakdowns.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, MobilityError
from repro.experiments.config import ScenarioConfig
from repro.mobility.contact import hetero_pairs, pair_arrays
from repro.population import (
    NodeClassSpec,
    PopulationMap,
    PRESET_CLASSES,
    assign_classes,
    class_counts,
    mixed_population,
    population_stream_names,
    preset_rows,
    resolve_population,
    validate_population,
)
from repro.routing.minority_game import MinorityGameChitChat
from repro.sim.rng import RandomStreams


def three_classes(fractions=(0.5, 0.3, 0.2), names=("a", "b", "c")):
    return tuple(
        NodeClassSpec(name, fraction)
        for name, fraction in zip(names, fractions)
    )


# ----------------------------------------------------------------------
# Spec and config validation
# ----------------------------------------------------------------------
class TestSpecValidation:
    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty string"):
            NodeClassSpec("", 1.0)

    def test_fraction_out_of_range_names_the_class(self):
        with pytest.raises(
            ConfigurationError, match=r"population\[walkers\].fraction"
        ):
            NodeClassSpec("walkers", 1.5)

    def test_unknown_mobility_rejected(self):
        with pytest.raises(
            ConfigurationError, match=r"population\[x\].mobility"
        ):
            NodeClassSpec("x", 1.0, mobility="teleport")

    def test_inverted_speed_range_rejected(self):
        with pytest.raises(
            ConfigurationError, match=r"population\[x\].speed_range"
        ):
            NodeClassSpec("x", 1.0, speed_range=(5.0, 2.0))

    def test_zero_speed_requires_static_mobility(self):
        with pytest.raises(
            ConfigurationError, match="must be > 0 for mobile classes"
        ):
            NodeClassSpec("x", 1.0, speed_range=(0.0, 0.0))
        # The same range is fine for declared-static infrastructure.
        NodeClassSpec("x", 1.0, mobility="static", speed_range=(0.0, 0.0))

    @pytest.mark.parametrize(
        "field",
        [
            "transmission_radius",
            "link_speed",
            "buffer_capacity",
            "battery_capacity",
            "recharge_amount",
            "interests_per_node",
        ],
    )
    def test_nonpositive_override_names_the_field(self, field):
        with pytest.raises(
            ConfigurationError, match=rf"population\[x\].{field}"
        ):
            NodeClassSpec("x", 1.0, **{field: 0})

    def test_nonpositive_reward_multiplier_rejected(self):
        with pytest.raises(
            ConfigurationError, match=r"population\[x\].reward_multiplier"
        ):
            NodeClassSpec("x", 1.0, reward_multiplier=0.0)

    def test_behaviour_fraction_out_of_range_rejected(self):
        with pytest.raises(
            ConfigurationError, match=r"population\[x\].selfish_fraction"
        ):
            NodeClassSpec("x", 1.0, selfish_fraction=1.2)

    def test_duplicate_class_names_rejected(self):
        with pytest.raises(ConfigurationError, match="defined twice"):
            validate_population(
                (NodeClassSpec("a", 0.5), NodeClassSpec("a", 0.5))
            )

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            validate_population(
                (NodeClassSpec("a", 0.5), NodeClassSpec("b", 0.4))
            )

    def test_non_spec_entry_rejected(self):
        with pytest.raises(ConfigurationError, match="NodeClassSpec"):
            validate_population(({"name": "a", "fraction": 1.0},))

    def test_scenario_config_validates_population(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            ScenarioConfig.small(
                population=(NodeClassSpec("a", 0.5), NodeClassSpec("b", 0.4))
            )

    def test_mixed_population_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="sum to 1"):
            mixed_population(pedestrian=0.5, vehicular=0.5, infrastructure=0.5)

    def test_mixed_population_drops_zero_fraction_classes(self):
        specs = mixed_population(
            pedestrian=0.7, vehicular=0.3, infrastructure=0.0
        )
        assert tuple(s.name for s in specs) == ("pedestrian", "vehicular")


# ----------------------------------------------------------------------
# Resolution: scalars are validated views onto the default class
# ----------------------------------------------------------------------
class TestResolution:
    def test_empty_population_resolves_to_one_default_class(self):
        config = ScenarioConfig.small()
        (cls0,) = config.resolved_population()
        assert cls0.name == "default"
        assert cls0.fraction == 1.0
        assert cls0.transmission_radius == config.transmission_radius
        assert cls0.link_speed == config.link_speed
        assert cls0.buffer_capacity == config.buffer_capacity
        assert cls0.speed_range == config.speed_range
        assert cls0.interests_per_node == config.interests_per_node

    def test_unset_overrides_inherit_scalars(self):
        config = ScenarioConfig.small(
            population=(
                NodeClassSpec("walk", 0.5),
                NodeClassSpec("kiosk", 0.5, mobility="static",
                              transmission_radius=200.0),
            )
        )
        walk, kiosk = config.resolved_population()
        assert walk.transmission_radius == config.transmission_radius
        assert kiosk.transmission_radius == 200.0
        assert kiosk.mobility == "static"
        assert kiosk.buffer_capacity == config.buffer_capacity

    def test_preset_mix_resolves_three_classes(self):
        config = ScenarioConfig.hetero()
        classes = config.resolved_population()
        assert [c.name for c in classes] == [
            "pedestrian", "vehicular", "infrastructure",
        ]
        assert [c.reward_multiplier for c in classes] == [1.0, 0.75, 0.5]

    def test_preset_rows_cover_the_catalog(self):
        rows = preset_rows()
        assert [row[0] for row in rows] == list(PRESET_CLASSES)
        assert all(len(row) == 6 for row in rows)


# ----------------------------------------------------------------------
# Apportionment: deterministic largest-remainder sizes
# ----------------------------------------------------------------------
class TestClassCounts:
    def test_preset_mix_at_120_nodes(self):
        assert class_counts(120, [0.6, 0.3, 0.1]) == [72, 36, 12]

    def test_remainders_go_to_largest_fraction(self):
        # 10 * [0.55, 0.45] = [5.5, 4.5]: the leftover seat goes to the
        # larger remainder; a tie resolves toward the earlier class.
        assert class_counts(10, [0.55, 0.45]) == [6, 4]
        assert class_counts(5, [0.5, 0.5]) == [3, 2]

    def test_thirds_sum_exactly(self):
        assert class_counts(10, [1 / 3, 1 / 3, 1 / 3]) == [4, 3, 3]

    @given(
        n_nodes=st.integers(min_value=2, max_value=500),
        weights=st.lists(
            st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=6
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_counts_always_total_n_nodes(self, n_nodes, weights):
        total = sum(weights)
        fractions = [w / total for w in weights]
        counts = class_counts(n_nodes, fractions)
        assert sum(counts) == n_nodes
        assert all(c >= 0 for c in counts)


# ----------------------------------------------------------------------
# Assignment: zero RNG for one class, per-class stream isolation
# ----------------------------------------------------------------------
class _ExplodingStreams:
    """A streams stand-in that fails the test if anything draws."""

    def get(self, name):
        raise AssertionError(f"unexpected RNG draw on stream {name!r}")


class TestAssignment:
    def test_single_class_consumes_zero_rng(self):
        classes = resolve_population(ScenarioConfig.small())
        class_id = assign_classes(60, classes, _ExplodingStreams())
        assert class_id.dtype == np.int64
        assert np.array_equal(class_id, np.zeros(60, dtype=np.int64))

    def test_counts_match_apportionment(self):
        classes = resolve_population(ScenarioConfig.hetero(n_nodes=120))
        class_id = assign_classes(120, classes, RandomStreams(7))
        counts = [int(np.count_nonzero(class_id == i)) for i in range(3)]
        assert counts == class_counts(120, [c.fraction for c in classes])

    def test_assignment_is_deterministic(self):
        classes = resolve_population(ScenarioConfig.hetero(n_nodes=90))
        one = assign_classes(90, classes, RandomStreams(3))
        two = assign_classes(90, classes, RandomStreams(3))
        assert np.array_equal(one, two)

    def test_stream_names_are_per_class(self):
        classes = resolve_population(ScenarioConfig.hetero())
        names = population_stream_names(classes)
        assert "population:vehicular" in names
        assert "mobility:infrastructure" in names
        assert "interests:pedestrian" in names
        assert "behavior-assignment:vehicular" in names
        assert len(names) == 4 * len(classes)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_editing_a_later_class_never_perturbs_earlier_draws(self, seed):
        """Satellite: per-class RNG stream isolation.

        Class membership is drawn on ``population:{name}`` streams keyed
        by the master seed and the class *name* alone, so renaming (=
        reseeding) the last class must leave the first two classes'
        member sets bit-identical.
        """
        n = 60
        base = resolve_population(
            ScenarioConfig.small(population=three_classes())
        )
        renamed = resolve_population(
            ScenarioConfig.small(
                population=three_classes(names=("a", "b", "zz"))
            )
        )
        before = assign_classes(n, base, RandomStreams(seed))
        after = assign_classes(n, renamed, RandomStreams(seed))
        for index in (0, 1):
            assert np.array_equal(
                np.nonzero(before == index)[0],
                np.nonzero(after == index)[0],
            )

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_stream_draws_independent_of_creation_order(self, seed):
        forward = RandomStreams(seed)
        reverse = RandomStreams(seed)
        a_first = forward.get("population:a").random(16)
        _ = forward.get("population:b").random(16)
        _ = reverse.get("population:b").random(16)
        a_second = reverse.get("population:a").random(16)
        assert np.array_equal(a_first, a_second)


# ----------------------------------------------------------------------
# PopulationMap: the per-node arrays the lower layers gather from
# ----------------------------------------------------------------------
class TestPopulationMap:
    def build(self, config, seed=0):
        return PopulationMap.build(config, RandomStreams(seed))

    def test_single_class_is_not_heterogeneous(self):
        pop = self.build(ScenarioConfig.small())
        assert not pop.heterogeneous
        assert pop.name_of(0) == "default"

    def test_gathered_arrays_follow_membership(self):
        config = ScenarioConfig.hetero(n_nodes=50)
        pop = self.build(config)
        assert pop.heterogeneous
        classes = pop.classes
        for node_id in range(50):
            cls = classes[int(pop.class_id[node_id])]
            assert pop.radii[node_id] == cls.transmission_radius
            assert pop.link_speeds[node_id] == cls.link_speed
            assert pop.buffer_capacities[node_id] == cls.buffer_capacity
            assert pop.name_of(node_id) == cls.name

    def test_members_partition_the_nodes(self):
        pop = self.build(ScenarioConfig.hetero(n_nodes=40))
        all_members = np.concatenate(
            [pop.members(i) for i in range(len(pop.classes))]
        )
        assert sorted(all_members.tolist()) == list(range(40))

    def test_names_by_node_matches_name_of(self):
        pop = self.build(ScenarioConfig.hetero(n_nodes=30))
        names = pop.names_by_node()
        assert set(names) == set(range(30))
        assert all(names[n] == pop.name_of(n) for n in range(30))

    def test_batteryless_population_has_no_battery_array(self):
        pop = self.build(ScenarioConfig.hetero(n_nodes=30))
        assert pop.battery_capacities is None

    def test_mixed_batteries_give_mains_classes_infinity(self):
        config = ScenarioConfig.small(
            n_nodes=30,
            population=(
                NodeClassSpec("phone", 0.5, battery_capacity=5_000.0),
                NodeClassSpec("kiosk", 0.5, mobility="static"),
            ),
        )
        pop = self.build(config)
        batteries = pop.battery_capacities
        assert batteries is not None
        for node_id in range(30):
            if pop.name_of(node_id) == "phone":
                assert batteries[node_id] == 5_000.0
            else:
                assert np.isinf(batteries[node_id])

    def test_recharge_amounts_fill_from_default(self):
        config = ScenarioConfig.small(
            n_nodes=20,
            population=(
                NodeClassSpec("solar", 0.5, recharge_amount=250.0),
                NodeClassSpec("plain", 0.5),
            ),
        )
        pop = self.build(config)
        amounts = pop.recharge_amounts(100.0)
        for node_id in range(20):
            expected = 250.0 if pop.name_of(node_id) == "solar" else 100.0
            assert amounts[node_id] == expected

    def test_reward_multipliers_keyed_by_class_name(self):
        pop = self.build(ScenarioConfig.hetero(n_nodes=30))
        assert pop.reward_multipliers() == {
            "pedestrian": 1.0, "vehicular": 0.75, "infrastructure": 0.5,
        }


# ----------------------------------------------------------------------
# Heterogeneous contact detection
# ----------------------------------------------------------------------
def hetero_pairs_bruteforce(positions, radii):
    found = set()
    n = positions.shape[0]
    for a in range(n):
        for b in range(a + 1, n):
            limit = max(radii[a], radii[b])
            dx = positions[a, 0] - positions[b, 0]
            dy = positions[a, 1] - positions[b, 1]
            if dx * dx + dy * dy <= limit * limit:
                found.add((a, b))
    return found


class TestHeteroPairs:
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_matches_bruteforce_under_max_radius_semantics(self, seed):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0.0, 500.0, size=(40, 2))
        radii = rng.choice([30.0, 90.0, 200.0], size=40)
        node_a, node_b = hetero_pairs(positions, radii)
        assert set(zip(node_a.tolist(), node_b.tolist())) == (
            hetero_pairs_bruteforce(positions, radii)
        )

    def test_equal_radii_match_the_scalar_cell_list(self):
        rng = np.random.default_rng(11)
        positions = rng.uniform(0.0, 400.0, size=(60, 2))
        radii = np.full(60, 75.0)
        hetero_a, hetero_b = hetero_pairs(positions, radii)
        scalar_a, scalar_b = pair_arrays(positions, 75.0)
        assert set(zip(hetero_a.tolist(), hetero_b.tolist())) == set(
            zip(scalar_a.tolist(), scalar_b.tolist())
        )

    def test_stronger_radio_carries_the_pair(self):
        positions = np.array([[0.0, 0.0], [100.0, 0.0]])
        # Only one endpoint reaches 100 m — still a contact.
        node_a, node_b = hetero_pairs(positions, np.array([150.0, 10.0]))
        assert node_a.tolist() == [0] and node_b.tolist() == [1]
        # Neither reaches: no contact.
        node_a, node_b = hetero_pairs(positions, np.array([50.0, 99.0]))
        assert node_a.size == 0

    def test_radii_length_mismatch_raises(self):
        with pytest.raises(MobilityError, match="one entry per node"):
            hetero_pairs(np.zeros((3, 2)), np.array([10.0, 10.0]))


# ----------------------------------------------------------------------
# Golden parity: a single-class population is the legacy scenario
# ----------------------------------------------------------------------
class TestSingleClassGoldenParity:
    def test_default_single_class_run_is_bit_identical(self):
        from repro.experiments.runner import run_scenario

        legacy = ScenarioConfig.small(n_nodes=20, duration=900.0)
        single = ScenarioConfig.small(
            n_nodes=20,
            duration=900.0,
            population=(NodeClassSpec("default", 1.0),),
        )
        before = run_scenario(legacy, "incentive", seed=1).summary()
        after = run_scenario(single, "incentive", seed=1).summary()
        assert before == after

    def test_renamed_single_class_is_still_bit_identical(self):
        # The guarantee is structural (one class, zero extra draws),
        # not tied to the "default" name.
        from repro.experiments.runner import run_scenario

        legacy = ScenarioConfig.tiny(duration=900.0)
        single = ScenarioConfig.tiny(
            duration=900.0,
            population=(NodeClassSpec("everyone", 1.0),),
        )
        before = run_scenario(legacy, "chitchat", seed=2).summary()
        after = run_scenario(single, "chitchat", seed=2).summary()
        assert before == after


# ----------------------------------------------------------------------
# The 3-class sweep: class-aware schemes, audits, breakdowns
# ----------------------------------------------------------------------
class TestHeteroSweep:
    @pytest.fixture(scope="class")
    def records(self):
        from repro.experiments.hetero import hetero_sweep

        config = ScenarioConfig.hetero(n_nodes=30, duration=600.0)
        return hetero_sweep(
            config,
            schemes=("incentive", "incentive-chitchat-hetero",
                     "minority-game"),
            seeds=(1,),
        )

    def test_every_scheme_ran_with_a_clean_audit(self, records):
        assert [r["scheme"] for r in records] == [
            "incentive", "incentive-chitchat-hetero", "minority-game",
        ]
        assert all(r["audit_ok"] for r in records)

    def test_per_class_breakdowns_cover_all_classes(self, records):
        for record in records:
            per_class = record["per_class"]
            assert set(per_class) == {
                "pedestrian", "vehicular", "infrastructure",
            }
            assert sum(row["nodes"] for row in per_class.values()) == 30
            for row in per_class.values():
                assert 0.0 <= row["mdr"] <= 1.0
                assert "mean_balance" in row

    def test_breakdown_rows_flatten_every_class(self, records):
        from repro.experiments.hetero import breakdown_rows

        rows = breakdown_rows(records)
        assert len(rows) == 3 * 3  # schemes x classes
        assert {row[0] for row in rows} == {r["scheme"] for r in records}

    def test_node_classes_reach_the_run_result(self, records):
        result = records[0]["result"]
        assert result.node_classes is not None
        assert set(result.node_classes.values()) == {
            "pedestrian", "vehicular", "infrastructure",
        }

    def test_sweep_requires_a_heterogeneous_base(self):
        from repro.experiments.hetero import hetero_sweep

        with pytest.raises(ConfigurationError, match="heterogeneous"):
            hetero_sweep(ScenarioConfig.small(), seeds=(1,))


# ----------------------------------------------------------------------
# Minority game mechanics
# ----------------------------------------------------------------------
class _GameWorld:
    """The minimal scheduler/streams surface the game binds to."""

    def __init__(self, n=10, seed=0):
        self._ids = list(range(n))
        self.streams = RandomStreams(seed)
        self.scheduled = []

    def node_ids(self):
        return list(self._ids)

    def schedule_in(self, delay, callback, label=None):
        self.scheduled.append((delay, callback, label))


class TestMinorityGame:
    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError, match="epoch_length"):
            MinorityGameChitChat(epoch_length=0.0)
        with pytest.raises(ConfigurationError, match="learning_rate"):
            MinorityGameChitChat(learning_rate=1.0)
        with pytest.raises(ConfigurationError, match="p_floor"):
            MinorityGameChitChat(p_floor=0.6, p_ceiling=0.4)

    def test_degrades_to_plain_chitchat_on_stub_worlds(self):
        class Stub:
            def node_ids(self):
                return [0, 1]

        router = MinorityGameChitChat()
        router.bind(Stub())
        assert router.participates(0)
        assert router.participation_rate() == 1.0
        assert router.epochs_played == 0

    def test_bind_draws_choices_and_schedules_the_first_epoch(self):
        world = _GameWorld(n=8, seed=5)
        router = MinorityGameChitChat(epoch_length=300.0)
        router.bind(world)
        assert router._choices is not None
        assert router._choices.size == 8
        (delay, _callback, label), = world.scheduled
        assert delay == 300.0
        assert label == "minority-game-epoch"

    def test_minority_side_is_reinforced(self):
        world = _GameWorld(n=10, seed=1)
        router = MinorityGameChitChat(learning_rate=0.1)
        router.bind(world)
        # Force a known split: 3 participants vs 7 defectors.
        router._choices = np.array([True] * 3 + [False] * 7)
        router._epoch_tick()
        assert router.epochs_played == 1
        # Participation won (strict minority): the minority repeats its
        # choice and the majority moves away from its own — in a binary
        # game both drift toward participating.
        assert np.all(router._p > 0.5)
        # A fresh epoch was drawn and the next tick scheduled.
        assert router._choices.size == 10
        assert len(world.scheduled) == 2

    def test_tie_rewards_the_defectors(self):
        world = _GameWorld(n=10, seed=2)
        router = MinorityGameChitChat(learning_rate=0.1)
        router.bind(world)
        router._choices = np.array([True] * 5 + [False] * 5)
        router._epoch_tick()
        # Defection won the tie (relaying costs energy): everyone
        # drifts toward defecting.
        assert np.all(router._p < 0.5)

    def test_probabilities_stay_clipped(self):
        world = _GameWorld(n=6, seed=3)
        router = MinorityGameChitChat(
            learning_rate=0.4, p_floor=0.2, p_ceiling=0.8
        )
        router.bind(world)
        for _ in range(10):
            router._choices = np.array([True] + [False] * 5)
            router._epoch_tick()
        assert np.all(router._p >= 0.2)
        assert np.all(router._p <= 0.8)

    def test_exactly_n_draws_per_epoch(self):
        world = _GameWorld(n=12, seed=4)
        router = MinorityGameChitChat()
        router.bind(world)
        # Replaying the stream: bind + one tick = exactly 2n variates.
        router._epoch_tick()
        shadow = RandomStreams(4).get("minority-game")
        shadow.random(2 * 12)
        live = world.streams.get("minority-game")
        assert np.array_equal(shadow.random(5), live.random(5))

    def test_defectors_refuse_relay_custody(self):
        world = _GameWorld(n=4, seed=6)
        router = MinorityGameChitChat()
        router.bind(world)
        router._choices = np.array([True, False, True, True])
        assert not router.participates(1)
        assert router.relay_affinity(1, None) == 0.0
        assert router.participation_rate() == 0.75

    def test_wiped_node_forgets_its_strategy(self):
        world = _GameWorld(n=5, seed=7)
        router = MinorityGameChitChat(learning_rate=0.2)
        router.bind(world)
        router._choices = np.array([True, False, False, False, False])
        router._epoch_tick()
        assert router._p[0] != 0.5
        router.on_node_wiped(0)
        assert router._p[0] == 0.5


# ----------------------------------------------------------------------
# Registry exposure of the class-aware schemes
# ----------------------------------------------------------------------
class TestClassAwareSchemes:
    def test_hetero_scheme_declares_class_multipliers(self):
        from repro.schemes.registry import resolve_scheme

        spec = resolve_scheme("incentive-chitchat-hetero")
        assert dict(spec.class_multipliers) == {
            "pedestrian": 1.0, "vehicular": 0.75, "infrastructure": 0.5,
        }

    def test_minority_game_scheme_builds_the_game_router(self):
        from repro.experiments.runner import make_router
        from repro.messages.keywords import KeywordUniverse

        config = ScenarioConfig.tiny()
        layer = make_router(
            "minority-game", config, KeywordUniverse(config.keyword_pool)
        )
        assert isinstance(layer.substrate, MinorityGameChitChat)

    def test_config_multipliers_override_the_preset(self):
        from repro.schemes.catalog import _hetero_multipliers

        vehicular = dataclasses.replace(
            PRESET_CLASSES["vehicular"], fraction=0.5, reward_multiplier=0.9
        )
        pedestrian = dataclasses.replace(
            PRESET_CLASSES["pedestrian"], fraction=0.5
        )
        config = ScenarioConfig.small(population=(pedestrian, vehicular))
        merged = _hetero_multipliers(config)
        assert merged["vehicular"] == 0.9
        assert merged["pedestrian"] == 1.0
        # Preset classes absent from the config keep their defaults.
        assert merged["infrastructure"] == 0.5
