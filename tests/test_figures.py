"""Tests for the figure generators (tiny scale — shapes, not numbers)."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.figures import (
    fig5_1_mdr_vs_selfish,
    fig5_2_traffic_reduction,
    fig5_3_initial_tokens,
    fig5_4_malicious_ratings,
    fig5_5_mdr_vs_users,
    fig5_6_priority_mdr,
    table5_1_parameters,
)


@pytest.fixture(scope="module")
def tiny():
    return ScenarioConfig.tiny()


class TestFig51:
    def test_series_and_shape(self, tiny):
        figure = fig5_1_mdr_vs_selfish(
            tiny, selfish_grid=(0.0, 0.8), seeds=(1,),
        )
        assert set(figure.series) == {"chitchat", "incentive"}
        for series in figure.series.values():
            assert [x for x, _ in series] == [0.0, 80.0]
            assert all(0.0 <= y <= 1.0 for _, y in series)
        # MDR falls as selfishness rises, for both schemes.
        for name in figure.series:
            values = figure.series_values(name)
            assert values[0] > values[-1]

    def test_format_renders(self, tiny):
        figure = fig5_1_mdr_vs_selfish(tiny, selfish_grid=(0.0,), seeds=(1,))
        text = figure.format()
        assert "Figure 5.1" in text
        assert "chitchat" in text


class TestFig52:
    def test_reduction_series(self, tiny):
        # Grid stops at 40%: beyond ~80% selfish the network itself
        # collapses (radios mostly off) and the ratio of two tiny traffic
        # counts is pure noise at this scale (see EXPERIMENTS.md).
        figure = fig5_2_traffic_reduction(
            tiny, selfish_grid=(0.0, 0.4), seeds=(1, 2, 3),
        )
        series = figure.series["reduction"]
        assert len(series) == 2
        # Traffic reduction grows with the selfish share (paper's shape);
        # averaged over three seeds to suppress tiny-scale noise.
        assert series[-1][1] >= series[0][1]
        assert series[0][1] > -100.0  # sanity: a finite percentage


class TestFig53:
    def test_more_tokens_more_mdr(self, tiny):
        figure = fig5_3_initial_tokens(
            tiny, token_grid=(2.0, 200.0), selfish_levels=(0.4,), seeds=(1,),
        )
        (name,) = figure.series
        values = figure.series_values(name)
        assert values[-1] >= values[0]


class TestFig54:
    def test_rating_declines_over_time(self, tiny):
        figure = fig5_4_malicious_ratings(
            tiny, malicious_levels=(0.3,), seeds=(1,),
        )
        (series,) = figure.series.values()
        assert len(series) >= 5
        start = series[0][1]
        end = series[-1][1]
        assert end < start  # the DRM exposes malicious nodes


class TestFig55:
    def test_mdr_grows_with_users(self, tiny):
        # The span 6 -> 30 users crosses from a sparse to a dense regime,
        # so the density effect dominates single-seed noise.
        figure = fig5_5_mdr_vs_users(
            tiny, user_grid=(6, 30), seeds=(1, 2),
        )
        for name in ("chitchat", "incentive"):
            values = figure.series_values(name)
            assert values[-1] >= values[0]


class TestFig56:
    def test_priority_series_structure(self, tiny):
        figure = fig5_6_priority_mdr(
            tiny, selfish_levels=(0.4,), seeds=(1,),
        )
        assert set(figure.series) == {
            "chitchat selfish=40%", "incentive selfish=40%",
        }
        for series in figure.series.values():
            assert [x for x, _ in series] == [1.0, 2.0, 3.0]


class TestTable51:
    def test_table_contains_paper_values(self):
        text = table5_1_parameters()
        assert "Table 5.1" in text
        assert "500" in text
        assert "250 kBps" in text
        assert "100 meters" in text
        assert "0.8" in text
