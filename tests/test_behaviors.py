"""Unit tests for behaviour profiles and role hierarchies."""

import numpy as np
import pytest

from repro.agents.behaviors import BehaviorProfile, assign_behaviors
from repro.agents.roles import RoleHierarchy
from repro.errors import ConfigurationError


class TestBehaviorProfile:
    def test_honest_always_participates(self, rng):
        honest = BehaviorProfile()
        assert all(honest.contact_enabled(rng) for _ in range(50))

    def test_honest_never_degrades_quality(self, rng):
        honest = BehaviorProfile()
        assert not any(honest.creates_low_quality(rng) for _ in range(50))

    def test_selfish_participation_rate_near_probability(self, rng):
        selfish = BehaviorProfile(selfish=True, participation_probability=0.1)
        rate = sum(
            selfish.contact_enabled(rng) for _ in range(5000)
        ) / 5000
        assert 0.07 <= rate <= 0.13  # paper: radio on 1 of 10 encounters

    def test_fully_selfish_never_participates(self, rng):
        hermit = BehaviorProfile(selfish=True, participation_probability=0.0)
        assert not any(hermit.contact_enabled(rng) for _ in range(50))

    def test_malicious_low_quality_rate(self, rng):
        bad = BehaviorProfile(malicious=True, low_quality_probability=1.0)
        assert all(bad.creates_low_quality(rng) for _ in range(50))

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            BehaviorProfile(participation_probability=1.5)
        with pytest.raises(ConfigurationError):
            BehaviorProfile(low_quality_probability=-0.1)


class TestAssignBehaviors:
    def test_fractions_are_honoured(self, rng):
        profiles = assign_behaviors(
            range(100), rng, selfish_fraction=0.3, malicious_fraction=0.2,
        )
        assert sum(p.selfish for p in profiles.values()) == 30
        assert sum(p.malicious for p in profiles.values()) == 20

    def test_selfish_and_malicious_are_disjoint(self, rng):
        profiles = assign_behaviors(
            range(100), rng, selfish_fraction=0.5, malicious_fraction=0.5,
        )
        both = [
            node for node, p in profiles.items() if p.selfish and p.malicious
        ]
        assert both == []

    def test_all_honest_by_default(self, rng):
        profiles = assign_behaviors(range(10), rng)
        assert all(
            not p.selfish and not p.malicious for p in profiles.values()
        )

    def test_everybody_selfish_at_full_fraction(self, rng):
        profiles = assign_behaviors(range(10), rng, selfish_fraction=1.0)
        assert all(p.selfish for p in profiles.values())

    def test_overcommitted_fractions_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            assign_behaviors(range(10), rng, selfish_fraction=0.7,
                             malicious_fraction=0.7)

    def test_deterministic_given_seed(self):
        a = assign_behaviors(range(50), np.random.default_rng(3),
                             selfish_fraction=0.4)
        b = assign_behaviors(range(50), np.random.default_rng(3),
                             selfish_fraction=0.4)
        assert all(a[i].selfish == b[i].selfish for i in range(50))


class TestRoleHierarchy:
    def test_rank_lookup(self):
        hierarchy = RoleHierarchy(("sergeant", "soldier"), (0.1, 0.9))
        assert hierarchy.rank_of("sergeant") == 1
        assert hierarchy.rank_of("soldier") == 2
        assert hierarchy.name_of(1) == "sergeant"

    def test_unknown_level_rejected(self):
        hierarchy = RoleHierarchy()
        with pytest.raises(ConfigurationError):
            hierarchy.rank_of("general")
        with pytest.raises(ConfigurationError):
            hierarchy.name_of(5)

    def test_assignment_distribution(self, rng):
        hierarchy = RoleHierarchy(("top", "bottom"), (0.2, 0.8))
        ranks = hierarchy.assign(range(1000), rng)
        top_share = sum(1 for r in ranks.values() if r == 1) / 1000
        assert 0.15 <= top_share <= 0.25

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            RoleHierarchy(("a", "b"), (0.5, 0.6))

    def test_levels_and_fractions_must_align(self):
        with pytest.raises(ConfigurationError):
            RoleHierarchy(("a", "b"), (1.0,))

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ConfigurationError):
            RoleHierarchy(("a", "a"), (0.5, 0.5))
