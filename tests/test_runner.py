"""Tests for the experiment runner (tiny scenarios for speed)."""

import pytest

from repro.core.protocol import IncentiveChitChatRouter
from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import (
    SCHEMES,
    build_contact_trace,
    make_router,
    run_averaged,
    run_comparison,
    run_scenario,
)
from repro.experiments.sweeps import sweep
from repro.messages.keywords import KeywordUniverse


@pytest.fixture(scope="module")
def tiny():
    return ScenarioConfig.tiny()


class TestMakeRouter:
    def test_all_schemes_instantiate(self, tiny):
        universe = KeywordUniverse(tiny.keyword_pool)
        for scheme in SCHEMES:
            router = make_router(scheme, tiny, universe)
            assert router is not None

    def test_unknown_scheme_rejected(self, tiny):
        with pytest.raises(ConfigurationError):
            make_router("carrier-pigeon", tiny, KeywordUniverse(30))

    def test_no_enrichment_variant(self, tiny):
        universe = KeywordUniverse(tiny.keyword_pool)
        router = make_router("incentive-no-enrichment", tiny, universe)
        assert isinstance(router, IncentiveChitChatRouter)
        assert router.enrichment is None

    def test_no_reputation_variant_never_rates(self, tiny):
        universe = KeywordUniverse(tiny.keyword_pool)
        router = make_router("incentive-no-reputation", tiny, universe)
        assert router.relay_rating_probability == 0.0
        assert router.destination_rating_probability == 0.0


class TestRunScenario:
    def test_run_produces_metrics(self, tiny):
        result = run_scenario(tiny, "chitchat", seed=1)
        assert result.scheme == "chitchat"
        assert len(result.metrics.messages) > 0
        assert 0.0 <= result.mdr <= 1.0
        assert result.traffic >= 0

    def test_same_seed_reproduces_exactly(self, tiny):
        first = run_scenario(tiny, "incentive", seed=3)
        second = run_scenario(tiny, "incentive", seed=3)
        assert first.summary() == second.summary()

    def test_different_seeds_differ(self, tiny):
        first = run_scenario(tiny, "chitchat", seed=1)
        second = run_scenario(tiny, "chitchat", seed=2)
        assert first.summary() != second.summary()

    def test_population_split_recorded(self, tiny):
        config = tiny.replace(selfish_fraction=0.2, malicious_fraction=0.2)
        result = run_scenario(config, "incentive", seed=1)
        assert len(result.selfish_ids) == 4
        assert len(result.malicious_ids) == 4
        assert not result.selfish_ids & result.malicious_ids
        total = (
            len(result.selfish_ids) + len(result.malicious_ids)
            + len(result.honest_ids)
        )
        assert total == config.n_nodes

    def test_token_conservation_end_to_end(self, tiny):
        result = run_scenario(tiny, "incentive", seed=1)
        ledger = result.router.ledger
        assert ledger.total_supply() == pytest.approx(
            ledger.total_endowment()
        )
        assert ledger.escrowed_total() == pytest.approx(0.0)

    def test_rating_sampling(self, tiny):
        config = tiny.replace(malicious_fraction=0.2)
        result = run_scenario(
            config, "incentive", seed=1,
            sample_ratings=True, rating_sample_interval=300.0,
        )
        assert len(result.metrics.rating_samples) >= 5
        time0, ratings0 = result.metrics.rating_samples[0]
        assert set(ratings0) == result.malicious_ids


class TestComparisonAndAveraging:
    def test_comparison_shares_contact_trace(self, tiny):
        results = run_comparison(tiny, ["chitchat", "epidemic"], seed=1)
        # Same workload on the same contacts: both register identical
        # message populations.
        chitchat = {r.uuid for r in results["chitchat"].metrics.messages}
        epidemic = {r.uuid for r in results["epidemic"].metrics.messages}
        assert len(chitchat) == len(epidemic) > 0

    def test_epidemic_dominates_direct_contact(self, tiny):
        results = run_comparison(tiny, ["epidemic", "direct"], seed=1)
        assert results["epidemic"].mdr >= results["direct"].mdr
        assert results["epidemic"].traffic >= results["direct"].traffic

    def test_run_averaged(self, tiny):
        averaged = run_averaged(tiny, "chitchat", seeds=[1, 2])
        assert 0.0 <= averaged["mdr"] <= 1.0

    def test_run_averaged_requires_seeds(self, tiny):
        with pytest.raises(ConfigurationError):
            run_averaged(tiny, "chitchat", seeds=[])

    def test_sweep_records_grid(self, tiny):
        records = sweep(
            tiny,
            lambda cfg, v: cfg.replace(selfish_fraction=v),
            [0.0, 0.5],
            schemes=["chitchat"],
            seeds=[1],
        )
        assert len(records) == 2
        assert [r["value"] for r in records] == [0.0, 0.5]
        assert all("mdr" in r and "traffic" in r for r in records)


class TestContactTraceBuilder:
    def test_trace_respects_duration(self, tiny):
        trace = build_contact_trace(tiny, seed=1)
        assert trace.duration() <= tiny.duration
        assert len(trace) > 0

    def test_trace_deterministic(self, tiny):
        a = build_contact_trace(tiny, seed=5)
        b = build_contact_trace(tiny, seed=5)
        assert [(c.start, c.pair) for c in a] == [(c.start, c.pair) for c in b]
