"""Integration tests: multi-component scenarios from the thesis."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.core.incentive import IncentiveParams
from repro.core.protocol import IncentiveChitChatRouter
from repro.core.reputation import RatingModel
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_comparison, run_scenario
from repro.messages.message import Priority


def make_protocol(initial_tokens):
    params = IncentiveParams(initial_tokens=initial_tokens)
    return IncentiveChitChatRouter(
        params=params,
        rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
    )


class TestPaperIIDemo:
    """The three-device Bluetooth demo of Paper II, Section 5.

    Devices A(0), B(1), C(2): A holds messages B and C are interested
    in; A-B are in range, B-C are in range, A-C are not.  B receives
    messages until its tokens run out, earns tokens by serving C, and
    only then can receive the remainder from A.
    """

    def build(self, initial_tokens=8.0, n_messages=12):
        router = make_protocol(initial_tokens)
        world = make_world(
            {0: [], 1: ["flood"], 2: ["flood"]}, router,
            link_speed=10_000.0,
        )
        messages = []
        for index in range(n_messages):
            message = make_message(
                source=0, size=1_000, quality=0.8,
                content=("flood",), keywords=("flood",),
            )
            world.inject_message(message)
            messages.append(message)
        return router, world, messages

    def test_token_exhaustion_blocks_then_earning_unblocks(self):
        router, world, messages = self.build()
        world.load_contact_trace(trace_of(
            contact(10.0, 500.0, 0, 1),     # A -> B until B runs dry
            contact(600.0, 1100.0, 1, 2),   # B serves C, earning tokens
            contact(1200.0, 1700.0, 0, 1),  # A -> B resumes
        ))
        world.run(2000.0)

        received_by_b = sum(
            1 for m in messages if m.uuid in world.node(1).delivered
        )
        received_by_c = sum(
            1 for m in messages if m.uuid in world.node(2).delivered
        )
        # B could not afford everything in the first contact...
        assert world.metrics.blocked_no_tokens > 0
        # ...but earned from C and received more in the second A-B contact.
        first_batch = sum(
            1 for m in messages
            if world.node(1).delivered.get(m.uuid, float("inf")) < 600.0
        )
        assert 0 < first_batch < received_by_b
        assert received_by_c > 0
        # Tokens are conserved across the whole demo.
        assert router.ledger.total_supply() == pytest.approx(
            router.ledger.total_endowment()
        )

    def test_a_and_c_never_talk_directly(self):
        router, world, messages = self.build()
        world.load_contact_trace(trace_of(
            contact(10.0, 500.0, 0, 1),
            contact(600.0, 1100.0, 1, 2),
        ))
        world.run(1500.0)
        for message in messages:
            if message.uuid in world.node(2).delivered:
                # Any copy at C must have come through B.
                assert world.link_between(0, 2) is None


class TestSchemeOrdering:
    """Cross-scheme sanity at tiny scale."""

    @pytest.fixture(scope="class")
    def results(self):
        config = ScenarioConfig.tiny()
        return run_comparison(
            config,
            ["epidemic", "chitchat", "incentive", "direct", "two-hop"],
            seed=2,
        )

    def test_epidemic_has_highest_traffic(self, results):
        epidemic = results["epidemic"].traffic
        for scheme, result in results.items():
            assert epidemic >= result.traffic

    def test_direct_contact_has_lowest_mdr(self, results):
        direct = results["direct"].mdr
        for scheme, result in results.items():
            assert result.mdr >= direct - 1e-9

    def test_chitchat_beats_direct_and_loses_to_epidemic(self, results):
        assert (
            results["epidemic"].mdr
            >= results["chitchat"].mdr
            >= results["direct"].mdr
        )

    def test_incentive_close_to_chitchat(self, results):
        # "slightly lower message delivery ratio compared to ChitChat"
        assert results["incentive"].mdr <= results["chitchat"].mdr + 0.05
        assert results["incentive"].mdr >= results["chitchat"].mdr - 0.25


class TestMaliciousDetectionEndToEnd:
    def test_honest_nodes_learn_to_distrust_malicious(self):
        config = ScenarioConfig.tiny(malicious_fraction=0.3)
        result = run_scenario(
            config, "incentive", seed=1,
            sample_ratings=True, rating_sample_interval=300.0,
        )
        samples = result.metrics.rating_samples
        assert samples
        start = sum(samples[0][1].values()) / len(samples[0][1])
        end = sum(samples[-1][1].values()) / len(samples[-1][1])
        assert end < start

    def test_malicious_nodes_rated_below_honest(self):
        config = ScenarioConfig.tiny(malicious_fraction=0.3)
        result = run_scenario(config, "incentive", seed=1)
        reputation = result.router.reputation
        observers = sorted(result.honest_ids)
        malicious_scores = [
            reputation.average_score_of(node, observers)
            for node in sorted(result.malicious_ids)
        ]
        honest_scores = [
            reputation.average_score_of(node, observers)
            for node in sorted(result.honest_ids)
        ]
        mean = lambda xs: sum(xs) / len(xs)  # noqa: E731
        assert mean(malicious_scores) < mean(honest_scores)


class TestPriorityEffect:
    def test_incentive_favours_high_priority_under_selfishness(self):
        config = ScenarioConfig.tiny(selfish_fraction=0.4)
        results = run_comparison(
            config, ["chitchat", "incentive"], seed=4,
        )
        incentive = results["incentive"].metrics.mdr_by_priority()
        # High-priority class should not be the worst-served class.
        assert incentive[Priority.HIGH] >= incentive[Priority.LOW] - 0.15


class TestEnergyAccountingEndToEnd:
    def test_energy_tracks_traffic(self):
        config = ScenarioConfig.tiny()
        result = run_scenario(config, "chitchat", seed=1)
        # Energy accounting is wired in the runner's world, which is not
        # exposed on the result; re-run a bare scenario to check wiring.
        router = make_protocol(50.0)
        world = make_world({0: [], 1: ["flood"]}, router)
        message = make_message(source=0, size=1_000, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 100.0, 0, 1)))
        world.run(200.0)
        assert world.energy.total_consumed() > 0.0
