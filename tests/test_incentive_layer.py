"""Unit tests for the composable :class:`IncentiveLayer`.

The behavioural equivalence of the composition rewrite is pinned by the
golden tests in ``test_schemes.py`` (bit-identical summaries for every
pre-registry scheme) and by ``test_protocol.py`` (the mechanism's
semantics through :class:`IncentiveChitChatRouter`).  This module tests
the *layer contract itself*: construction rules, name derivation,
substrate delegation, and the world proxy that keeps substrate-
initiated sends inside the payment pipeline.
"""

import pytest

from repro.core.incentive_layer import IncentiveLayer, _SubstrateContext
from repro.core.ledger import TokenLedger
from repro.core.protocol import IncentiveChitChatRouter
from repro.errors import ConfigurationError
from repro.experiments import ScenarioConfig, run_scenario
from repro.routing.base import Router
from repro.routing.chitchat import ChitChatRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.prophet import ProphetRouter


class TestConstruction:
    def test_name_derives_from_substrate(self):
        assert IncentiveLayer(EpidemicRouter()).name == "incentive-epidemic"
        assert IncentiveLayer(ProphetRouter()).name == "incentive-prophet"

    def test_stacking_layers_is_rejected(self):
        inner = IncentiveLayer(EpidemicRouter())
        with pytest.raises(ConfigurationError, match="stack"):
            IncentiveLayer(inner)

    def test_incentive_chitchat_is_a_layer_over_chitchat(self):
        router = IncentiveChitChatRouter()
        assert isinstance(router, IncentiveLayer)
        assert isinstance(router.substrate, ChitChatRouter)
        assert router.name == "incentive-chitchat"

    def test_defaults_are_created_when_omitted(self):
        layer = IncentiveLayer(EpidemicRouter())
        assert layer.ledger is not None
        assert layer.reputation is not None
        assert layer.rating_model is not None
        assert layer.enrichment is None

    def test_explicit_ledger_is_used(self):
        ledger = TokenLedger()
        layer = IncentiveLayer(EpidemicRouter(), ledger=ledger)
        assert layer.ledger is ledger

    def test_rating_probabilities_validated(self):
        with pytest.raises(ConfigurationError):
            IncentiveLayer(EpidemicRouter(), relay_rating_probability=1.5)
        with pytest.raises(ConfigurationError):
            IncentiveLayer(
                EpidemicRouter(), destination_rating_probability=-0.1
            )


class TestDelegation:
    def test_getattr_falls_through_to_substrate(self):
        # ChitChat-specific state (the RTSR weight table, beta) stays
        # reachable on the composed router, so pre-refactor inspection
        # code keeps working.
        router = IncentiveChitChatRouter(beta=0.7)
        assert router.beta == 0.7
        # Bound methods resolve on the substrate (== compares func+self).
        assert router.table == router.substrate.table

    def test_missing_attributes_still_raise(self):
        layer = IncentiveLayer(EpidemicRouter())
        with pytest.raises(AttributeError):
            layer.definitely_not_an_attribute

    def test_destinations_also_relay_reflects_substrate(self):
        class DestinationsRelayRouter(EpidemicRouter):
            destinations_also_relay = True

        assert IncentiveLayer(EpidemicRouter()).destinations_also_relay is (
            EpidemicRouter.destinations_also_relay
        )
        layer = IncentiveLayer(DestinationsRelayRouter())
        assert layer.destinations_also_relay is True


class TestSubstrateContext:
    def test_send_message_routes_through_the_layer(self):
        sent = []

        class FakeLayer:
            def offer_from_substrate(self, link, sender, message):
                sent.append((link, sender, message))
                return "transfer"

        class FakeWorld:
            now = 12.0

            def schedule_in(self, delay, fn):
                return "event"

        proxy = _SubstrateContext(FakeLayer(), FakeWorld())
        assert proxy.send_message("link", 3, "msg") == "transfer"
        assert sent == [("link", 3, "msg")]
        # Everything else passes through to the real world.
        assert proxy.now == 12.0
        assert proxy.schedule_in(5.0, None) == "event"


class TestCustomSubstrate:
    def test_layer_composes_over_a_novel_router(self):
        """A substrate written against the hook contract alone — no
        incentive knowledge, not shipped in the catalog — runs
        end-to-end under the layer via a one-call registration."""

        class NewestFirstRouter(Router):
            """Toy substrate: flood, but prefer younger messages."""

            name = "newest-first"

            def relay_affinity(self, node_id, message):
                return float(message.created_at)

            def on_message_received(self, transfer, link):
                raise AssertionError(
                    "under the layer, reception goes through the "
                    "layer's pipeline, never the substrate's hook"
                )

        from repro.schemes.registry import _REGISTRY, register

        config = ScenarioConfig.tiny()
        register(
            "incentive-newest-first",
            lambda c, u: IncentiveLayer(
                NewestFirstRouter(), params=c.incentive
            ),
            doc="test-only composition",
            tags=("token",),
        )
        try:
            result = run_scenario(config, "incentive-newest-first", 1)
        finally:
            del _REGISTRY["incentive-newest-first"]

        assert result.router.name == "incentive-newest-first"
        assert 0.0 <= result.mdr <= 1.0
        endowment = config.n_nodes * config.incentive.initial_tokens
        assert result.router.ledger.total_supply() == pytest.approx(endowment)
