"""Unit tests for the metrics collector and report formatting."""

import pytest

from tests.helpers import make_message
from repro.messages.message import Priority
from repro.metrics.collector import MetricsCollector
from repro.metrics.reports import format_series, format_table


class TestMdr:
    def test_empty_collector(self):
        metrics = MetricsCollector()
        assert metrics.message_delivery_ratio() == 0.0
        assert metrics.intended_pairs() == 0

    def test_basic_mdr(self):
        metrics = MetricsCollector()
        message = make_message()
        metrics.on_message_created(message, intended={1, 2})
        metrics.on_delivered(message, 1, now=10.0)
        assert metrics.intended_pairs() == 2
        assert metrics.delivered_pairs() == 1
        assert metrics.message_delivery_ratio() == 0.5

    def test_duplicate_delivery_not_double_counted(self):
        metrics = MetricsCollector()
        message = make_message()
        metrics.on_message_created(message, intended={1})
        metrics.on_delivered(message, 1, now=10.0)
        metrics.on_delivered(message, 1, now=20.0)
        assert metrics.delivered_pairs() == 1

    def test_bonus_deliveries_do_not_inflate_mdr(self):
        metrics = MetricsCollector()
        message = make_message()
        metrics.on_message_created(message, intended={1})
        metrics.on_delivered(message, 1, now=10.0)
        metrics.on_delivered(message, 9, now=20.0)  # enrichment-created
        assert metrics.message_delivery_ratio() == 1.0
        assert metrics.bonus_deliveries() == 1

    def test_delivery_for_unknown_message_ignored(self):
        metrics = MetricsCollector()
        metrics.on_delivered(make_message(), 1, now=0.0)
        assert metrics.delivered_pairs() == 0

    def test_mdr_by_priority(self):
        metrics = MetricsCollector()
        high = make_message(priority=Priority.HIGH)
        low = make_message(priority=Priority.LOW)
        metrics.on_message_created(high, intended={1, 2})
        metrics.on_message_created(low, intended={1})
        metrics.on_delivered(high, 1, now=1.0)
        by_priority = metrics.mdr_by_priority()
        assert by_priority[Priority.HIGH] == 0.5
        assert by_priority[Priority.LOW] == 0.0
        assert by_priority[Priority.MEDIUM] == 0.0


class TestTrafficAndDelay:
    def test_transfer_counters(self):
        metrics = MetricsCollector()
        message = make_message(size=500)
        metrics.on_transfer_started(message)
        metrics.on_transfer_completed(message)
        metrics.on_transfer_aborted(message)
        metrics.on_transfer_suppressed()
        assert metrics.transfers_started == 1
        assert metrics.transfers_completed == 1
        assert metrics.transfers_aborted == 1
        assert metrics.transfers_suppressed == 1
        assert metrics.bytes_transferred == 500

    def test_average_delay(self):
        metrics = MetricsCollector()
        message = make_message(created_at=10.0)
        metrics.on_message_created(message, intended={1, 2})
        metrics.on_delivered(message, 1, now=20.0)
        metrics.on_delivered(message, 2, now=40.0)
        assert metrics.average_delay() == pytest.approx(20.0)

    def test_average_delay_empty(self):
        assert MetricsCollector().average_delay() == 0.0

    def test_delivered_quality_mean(self):
        metrics = MetricsCollector()
        good = make_message(quality=0.9)
        bad = make_message(quality=0.1)
        metrics.on_message_created(good, intended={1})
        metrics.on_message_created(bad, intended={1})
        metrics.on_delivered(good, 1, now=1.0)
        assert metrics.delivered_quality_mean() == pytest.approx(0.9)

    def test_summary_contains_headlines(self):
        metrics = MetricsCollector()
        summary = metrics.summary()
        for key in ("mdr", "transfers_completed", "tokens_moved",
                    "blocked_no_tokens", "average_delay"):
            assert key in summary

    def test_token_and_enrichment_counters(self):
        metrics = MetricsCollector()
        metrics.on_payment(2.5)
        metrics.on_payment(1.5)
        metrics.on_blocked_no_tokens()
        metrics.on_enrichment(relevant=True)
        metrics.on_enrichment(relevant=False)
        assert metrics.token_payments == 2
        assert metrics.tokens_moved == pytest.approx(4.0)
        assert metrics.blocked_no_tokens == 1
        assert metrics.enrichment_tags == 2
        assert metrics.enrichment_relevant == 1

    def test_rating_samples_are_stored_copies(self):
        metrics = MetricsCollector()
        ratings = {1: 2.0}
        metrics.sample_ratings(10.0, ratings)
        ratings[1] = 5.0
        assert metrics.rating_samples == [(10.0, {1: 2.0})]


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["x", 1], ["long-name", 2.5]])
        lines = text.splitlines()
        assert len({len(line) for line in lines}) == 1  # all same width
        assert "long-name" in text

    def test_format_table_title(self):
        text = format_table(["a"], [[1]], title="Title")
        assert text.splitlines()[0] == "Title"

    def test_format_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_format_series(self):
        text = format_series("series", [(0, 1.0)], x_label="t", y_label="v")
        assert "series" in text
        assert "t" in text and "v" in text
