"""Unit tests for Manhattan-grid mobility."""

import numpy as np
import pytest

from repro.errors import MobilityError
from repro.mobility.contact import detect_contacts
from repro.mobility.manhattan import ManhattanGrid

AREA = (500.0, 500.0)
BLOCK = 100.0


def on_street(positions, block=BLOCK, tolerance=1e-6):
    """Every node must sit on a horizontal or vertical street line."""
    x_mod = np.minimum(positions[:, 0] % block, block - positions[:, 0] % block)
    y_mod = np.minimum(positions[:, 1] % block, block - positions[:, 1] % block)
    return ((x_mod <= tolerance) | (y_mod <= tolerance)).all()


class TestManhattanGrid:
    def test_initial_positions_on_intersections(self, rng):
        model = ManhattanGrid(50, AREA, rng, block_size=BLOCK)
        positions = model.positions
        assert ((positions % BLOCK) < 1e-9).all()

    def test_nodes_stay_on_streets(self, rng):
        model = ManhattanGrid(30, AREA, rng, block_size=BLOCK)
        for _ in range(50):
            model.advance(17.0)
            assert on_street(model.positions)

    def test_positions_stay_inside_area(self, rng):
        model = ManhattanGrid(30, AREA, rng, block_size=BLOCK)
        for _ in range(100):
            model.advance(25.0)
            positions = model.positions
            assert (positions >= -1e-9).all()
            assert (positions[:, 0] <= AREA[0] + 1e-9).all()
            assert (positions[:, 1] <= AREA[1] + 1e-9).all()

    def test_nodes_move(self, rng):
        model = ManhattanGrid(20, AREA, rng, block_size=BLOCK)
        before = model.positions.copy()
        model.advance(60.0)
        moved = np.hypot(*(model.positions - before).T)
        assert moved.mean() > 0.0

    def test_displacement_bounded_by_speed(self, rng):
        model = ManhattanGrid(
            20, AREA, rng, block_size=BLOCK, speed_min=1.0, speed_max=1.0,
        )
        before = model.positions.copy()
        model.advance(10.0)
        # Street distance >= euclidean displacement.
        moved = np.abs(model.positions - before).sum(axis=1)
        assert (moved <= 10.0 + 1e-6).all()

    def test_determinism(self):
        a = ManhattanGrid(20, AREA, np.random.default_rng(5), block_size=BLOCK)
        b = ManhattanGrid(20, AREA, np.random.default_rng(5), block_size=BLOCK)
        a.advance(100.0)
        b.advance(100.0)
        assert (a.positions == b.positions).all()

    def test_produces_contacts(self):
        model = ManhattanGrid(
            40, AREA, np.random.default_rng(2), block_size=BLOCK,
        )
        trace = detect_contacts(model, radius=80.0, duration=600.0,
                                scan_interval=10.0)
        assert len(trace) > 0

    def test_invalid_construction(self, rng):
        with pytest.raises(MobilityError):
            ManhattanGrid(5, AREA, rng, block_size=0.0)
        with pytest.raises(MobilityError):
            ManhattanGrid(5, AREA, rng, block_size=1e6)
        with pytest.raises(MobilityError):
            ManhattanGrid(5, AREA, rng, speed_min=0.0)
        with pytest.raises(MobilityError):
            ManhattanGrid(5, AREA, rng, turn_probability=1.5)
