"""Unit tests for the mobility models."""

import numpy as np
import pytest

from repro.errors import MobilityError
from repro.mobility.random_walk import RandomWalk
from repro.mobility.random_waypoint import RandomWaypoint
from repro.mobility.stationary import Stationary

AREA = (1000.0, 800.0)


def _in_area(positions, area=AREA):
    return (
        (positions[:, 0] >= 0).all()
        and (positions[:, 0] <= area[0]).all()
        and (positions[:, 1] >= 0).all()
        and (positions[:, 1] <= area[1]).all()
    )


class TestRandomWaypoint:
    def test_initial_positions_inside_area(self, rng):
        model = RandomWaypoint(100, AREA, rng)
        assert _in_area(model.positions)

    def test_positions_stay_inside_area(self, rng):
        model = RandomWaypoint(50, AREA, rng, pause_max=10.0)
        for _ in range(100):
            model.advance(30.0)
            assert _in_area(model.positions)

    def test_nodes_actually_move(self, rng):
        model = RandomWaypoint(20, AREA, rng, pause_min=0.0, pause_max=0.0)
        before = model.positions.copy()
        model.advance(60.0)
        moved = np.hypot(*(model.positions - before).T)
        assert (moved > 0).all()

    def test_displacement_bounded_by_max_speed(self, rng):
        model = RandomWaypoint(
            50, AREA, rng, speed_min=1.0, speed_max=2.0,
            pause_min=0.0, pause_max=0.0,
        )
        before = model.positions.copy()
        model.advance(10.0)
        moved = np.hypot(*(model.positions - before).T)
        # Straight-line displacement can never exceed speed_max * dt.
        assert (moved <= 2.0 * 10.0 + 1e-9).all()

    def test_zero_dt_is_noop(self, rng):
        model = RandomWaypoint(10, AREA, rng)
        before = model.positions.copy()
        model.advance(0.0)
        assert (model.positions == before).all()

    def test_negative_dt_rejected(self, rng):
        with pytest.raises(MobilityError):
            RandomWaypoint(10, AREA, rng).advance(-1.0)

    def test_determinism_under_same_seed(self):
        a = RandomWaypoint(20, AREA, np.random.default_rng(5))
        b = RandomWaypoint(20, AREA, np.random.default_rng(5))
        a.advance(100.0)
        b.advance(100.0)
        assert (a.positions == b.positions).all()

    def test_pausing_nodes_do_not_move(self, rng):
        model = RandomWaypoint(
            5, AREA, rng, speed_min=1.0, speed_max=1.0,
            pause_min=1e6, pause_max=1e6,
        )
        # The longest possible first leg is the area diagonal (~1281 m at
        # 1 m/s), so by t=2000 every node has arrived and is pausing.
        model.advance(2000.0)
        before = model.positions.copy()
        model.advance(100.0)
        assert np.allclose(model.positions, before)

    def test_invalid_speed_range_rejected(self, rng):
        with pytest.raises(MobilityError):
            RandomWaypoint(5, AREA, rng, speed_min=2.0, speed_max=1.0)
        with pytest.raises(MobilityError):
            RandomWaypoint(5, AREA, rng, speed_min=0.0)

    def test_invalid_pause_range_rejected(self, rng):
        with pytest.raises(MobilityError):
            RandomWaypoint(5, AREA, rng, pause_min=10.0, pause_max=1.0)

    def test_invalid_population_rejected(self, rng):
        with pytest.raises(MobilityError):
            RandomWaypoint(0, AREA, rng)

    def test_invalid_area_rejected(self, rng):
        with pytest.raises(MobilityError):
            RandomWaypoint(5, (0.0, 100.0), rng)

    def test_positions_view_is_readonly(self, rng):
        model = RandomWaypoint(5, AREA, rng)
        with pytest.raises(ValueError):
            model.positions[0, 0] = 1.0


class TestRandomWalk:
    def test_positions_stay_inside_area(self, rng):
        model = RandomWalk(50, AREA, rng)
        for _ in range(200):
            model.advance(20.0)
            assert _in_area(model.positions)

    def test_nodes_move(self, rng):
        model = RandomWalk(20, AREA, rng)
        before = model.positions.copy()
        model.advance(60.0)
        moved = np.hypot(*(model.positions - before).T)
        assert moved.mean() > 0

    def test_determinism_under_same_seed(self):
        a = RandomWalk(20, AREA, np.random.default_rng(5))
        b = RandomWalk(20, AREA, np.random.default_rng(5))
        for _ in range(10):
            a.advance(15.0)
            b.advance(15.0)
        assert (a.positions == b.positions).all()

    def test_invalid_leg_duration_rejected(self, rng):
        with pytest.raises(MobilityError):
            RandomWalk(5, AREA, rng, mean_leg_duration=0.0)

    def test_zero_dt_is_noop(self, rng):
        model = RandomWalk(10, AREA, rng)
        before = model.positions.copy()
        model.advance(0.0)
        assert (model.positions == before).all()


class TestStationary:
    def test_nodes_never_move(self, rng):
        model = Stationary(10, AREA, rng)
        before = model.positions.copy()
        model.advance(1e6)
        assert (model.positions == before).all()

    def test_explicit_positions(self, rng):
        placed = [[10.0, 20.0], [30.0, 40.0]]
        model = Stationary(2, AREA, rng, positions=placed)
        assert (model.positions == np.array(placed)).all()

    def test_wrong_shape_rejected(self, rng):
        with pytest.raises(MobilityError):
            Stationary(3, AREA, rng, positions=[[0.0, 0.0]])

    def test_move_node_teleports(self, rng):
        model = Stationary(2, AREA, rng, positions=[[0, 0], [1, 1]])
        model.move_node(0, 500.0, 400.0)
        assert tuple(model.positions[0]) == (500.0, 400.0)

    def test_move_node_bounds_checked(self, rng):
        model = Stationary(2, AREA, rng)
        with pytest.raises(MobilityError):
            model.move_node(5, 0.0, 0.0)

    def test_positions_clipped_into_area(self, rng):
        model = Stationary(1, AREA, rng, positions=[[-5.0, 9999.0]])
        assert _in_area(model.positions)
