"""Package-level consistency checks: public API, docstrings, examples,
and documentation artefacts."""

import importlib
import pathlib
import py_compile

import pytest

import repro

REPO_ROOT = pathlib.Path(repro.__file__).resolve().parents[2]

PUBLIC_MODULES = [
    "repro",
    "repro.sim",
    "repro.sim.engine",
    "repro.sim.events",
    "repro.sim.process",
    "repro.sim.rng",
    "repro.mobility",
    "repro.mobility.base",
    "repro.mobility.random_waypoint",
    "repro.mobility.random_walk",
    "repro.mobility.stationary",
    "repro.mobility.manhattan",
    "repro.mobility.contact",
    "repro.mobility.trace",
    "repro.mobility.one_trace",
    "repro.messages",
    "repro.messages.message",
    "repro.messages.keywords",
    "repro.messages.generator",
    "repro.network",
    "repro.network.node",
    "repro.network.buffer",
    "repro.network.link",
    "repro.network.energy",
    "repro.network.world",
    "repro.routing",
    "repro.routing.base",
    "repro.routing.chitchat",
    "repro.routing.epidemic",
    "repro.routing.epidemic_variants",
    "repro.routing.direct",
    "repro.routing.two_hop",
    "repro.routing.spray_and_wait",
    "repro.routing.prophet",
    "repro.routing.nectar",
    "repro.routing.tft",
    "repro.routing.relics",
    "repro.routing.two_hop_reward",
    "repro.core",
    "repro.core.ledger",
    "repro.core.incentive",
    "repro.core.reputation",
    "repro.core.bayesian_reputation",
    "repro.core.itrm",
    "repro.core.enrichment",
    "repro.core.operators",
    "repro.core.protocol",
    "repro.core.incentive_layer",
    "repro.schemes",
    "repro.schemes.registry",
    "repro.schemes.catalog",
    "repro.schemes.doctable",
    "repro.agents",
    "repro.agents.behaviors",
    "repro.agents.roles",
    "repro.agents.attacks",
    "repro.metrics",
    "repro.metrics.collector",
    "repro.metrics.reports",
    "repro.metrics.analysis",
    "repro.experiments",
    "repro.experiments.config",
    "repro.experiments.runner",
    "repro.experiments.figures",
    "repro.experiments.sweeps",
    "repro.cli",
    "repro.errors",
]


class TestPublicApi:
    def test_top_level_all_entries_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_imports_and_has_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", PUBLIC_MODULES)
    def test_module_all_entries_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_version_declared(self):
        assert repro.__version__


class TestExamples:
    def test_all_examples_compile(self):
        examples = sorted((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3  # the deliverable minimum
        for path in examples:
            py_compile.compile(str(path), doraise=True)

    def test_examples_have_docstrings_and_main(self):
        for path in sorted((REPO_ROOT / "examples").glob("*.py")):
            text = path.read_text(encoding="utf-8")
            assert '"""' in text, path.name
            assert "__main__" in text, path.name


class TestDocumentation:
    @pytest.mark.parametrize(
        "name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"],
    )
    def test_documents_exist_and_are_substantial(self, name):
        path = REPO_ROOT / name
        assert path.exists(), name
        assert len(path.read_text(encoding="utf-8")) > 2_000, name

    def test_design_covers_every_figure(self):
        text = (REPO_ROOT / "DESIGN.md").read_text(encoding="utf-8")
        for figure in ("5.1", "5.2", "5.3", "5.4", "5.5", "5.6"):
            assert f"Fig {figure}" in text or f"Figure {figure}" in text

    def test_experiments_covers_every_figure(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        for figure in ("5.1", "5.2", "5.3", "5.4", "5.5", "5.6"):
            assert f"Figure {figure}" in text

    def test_every_scheme_is_documented_or_benched(self):
        from repro.experiments.runner import SCHEMES

        corpus = "".join(
            (REPO_ROOT / name).read_text(encoding="utf-8")
            for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md")
        )
        benches = "".join(
            path.read_text(encoding="utf-8")
            for path in sorted((REPO_ROOT / "benchmarks").glob("*.py"))
        )
        tests = "".join(
            path.read_text(encoding="utf-8")
            for path in sorted((REPO_ROOT / "tests").glob("*.py"))
        )
        for scheme in SCHEMES:
            assert scheme in corpus + benches + tests, scheme
