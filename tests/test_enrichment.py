"""Unit tests for content enrichment."""

import numpy as np
import pytest

from tests.helpers import make_message
from repro.core.enrichment import EnrichmentPolicy
from repro.errors import ConfigurationError
from repro.messages.keywords import KeywordUniverse


@pytest.fixture
def policy(universe):
    return EnrichmentPolicy(
        universe, honest_probability=1.0, malicious_probability=1.0,
        max_tags=2,
    )


class TestHonestEnrichment:
    def test_tags_come_from_unannotated_content(self, policy, rng):
        message = make_message(content=("flood", "fire", "shelter"),
                               keywords=("flood",))
        tags = policy.honest_tags(message, rng)
        assert tags
        assert set(tags) <= {"fire", "shelter"}

    def test_no_tags_when_content_fully_annotated(self, policy, rng):
        message = make_message(content=("flood",), keywords=("flood",))
        assert policy.honest_tags(message, rng) == []

    def test_probability_zero_never_enriches(self, universe, rng):
        policy = EnrichmentPolicy(universe, honest_probability=0.0)
        message = make_message(content=("flood", "fire"), keywords=("flood",))
        assert all(
            policy.honest_tags(message, rng) == [] for _ in range(20)
        )

    def test_max_tags_respected(self, universe, rng):
        policy = EnrichmentPolicy(universe, honest_probability=1.0, max_tags=1)
        message = make_message(
            content=("flood", "fire", "shelter", "hospital"),
            keywords=("flood",),
        )
        for _ in range(20):
            assert len(policy.honest_tags(message, rng)) <= 1


class TestMaliciousEnrichment:
    def test_tags_are_irrelevant(self, policy, rng):
        message = make_message(content=("flood", "fire"), keywords=("flood",))
        tags = policy.malicious_tags(message, rng)
        assert tags
        for keyword in tags:
            assert not message.is_relevant(keyword)
            assert keyword not in message.keywords

    def test_probability_zero_never_injects(self, universe, rng):
        policy = EnrichmentPolicy(universe, malicious_probability=0.0)
        message = make_message()
        assert all(
            policy.malicious_tags(message, rng) == [] for _ in range(20)
        )


class TestDispatch:
    def test_tags_for_routes_by_flag(self, policy, rng):
        message = make_message(content=("flood", "fire"), keywords=("flood",))
        honest = policy.tags_for(message, malicious=False, rng=rng)
        assert all(message.is_relevant(k) for k in honest)
        injected = policy.tags_for(message, malicious=True, rng=rng)
        assert all(not message.is_relevant(k) for k in injected)

    def test_invalid_construction_rejected(self, universe):
        with pytest.raises(ConfigurationError):
            EnrichmentPolicy(universe, honest_probability=1.5)
        with pytest.raises(ConfigurationError):
            EnrichmentPolicy(universe, max_tags=0)
