"""Unit tests for the workload generator."""

import pytest

from repro.errors import ConfigurationError
from repro.messages.generator import (
    DEFAULT_PROFILES,
    MessageGenerator,
    MessageProfile,
)
from repro.messages.keywords import KeywordUniverse
from repro.messages.message import Priority


@pytest.fixture
def generator(universe, rng):
    return MessageGenerator(universe, rng)


class TestProfiles:
    def test_default_fractions_sum_to_one(self):
        assert sum(p.fraction for p in DEFAULT_PROFILES) == pytest.approx(1.0)

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageProfile("bad", 1.5, Priority.HIGH, (0.0, 1.0), (1, 2))

    def test_invalid_quality_range_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageProfile("bad", 0.5, Priority.HIGH, (0.9, 0.1), (1, 2))

    def test_invalid_size_range_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageProfile("bad", 0.5, Priority.HIGH, (0.0, 1.0), (0, 2))

    def test_fractions_must_sum_to_one(self, universe, rng):
        lopsided = (
            MessageProfile("a", 0.5, Priority.HIGH, (0.5, 1.0), (1, 2)),
        )
        with pytest.raises(ConfigurationError):
            MessageGenerator(universe, rng, profiles=lopsided)


class TestCreateMessage:
    def test_message_fields_within_profile(self, universe, rng):
        profile = MessageProfile(
            "only", 1.0, Priority.HIGH, (0.6, 0.9), (100, 200)
        )
        generator = MessageGenerator(universe, rng, profiles=(profile,))
        message = generator.create_message(3, 10.0)
        assert message.source == 3
        assert message.created_at == 10.0
        assert message.priority is Priority.HIGH
        assert 0.6 <= message.quality <= 0.9
        assert 100 <= message.size <= 200

    def test_annotations_are_subset_of_content(self, generator):
        for _ in range(20):
            message = generator.create_message(0, 0.0)
            assert message.keywords <= message.content
            assert len(message.keywords) >= 1

    def test_content_keyword_count_in_range(self, universe, rng):
        generator = MessageGenerator(universe, rng, content_keywords=(3, 5))
        for _ in range(20):
            message = generator.create_message(0, 0.0)
            assert 3 <= len(message.content) <= 5

    def test_low_quality_override(self, generator):
        message = generator.create_message(0, 0.0, low_quality=True)
        assert message.quality <= 0.2

    def test_location_attached(self, generator):
        message = generator.create_message(0, 0.0)
        latitude, longitude = message.location
        assert -90.0 <= latitude <= 90.0
        assert -180.0 <= longitude <= 180.0

    def test_profile_mix_roughly_respected(self, universe, rng):
        generator = MessageGenerator(universe, rng)
        priorities = [
            generator.create_message(0, 0.0).priority for _ in range(300)
        ]
        high_share = priorities.count(Priority.HIGH) / len(priorities)
        assert 0.35 <= high_share <= 0.65  # nominal 0.5


class TestSchedule:
    def test_one_message_per_interval(self, generator):
        plan = generator.schedule([0, 1, 2], duration=600.0, interval=60.0)
        assert len(plan) == 10

    def test_times_sorted_and_in_range(self, generator):
        plan = generator.schedule([0, 1], duration=500.0, interval=50.0)
        times = [t for t, _ in plan]
        assert times == sorted(times)
        assert all(0.0 <= t <= 500.0 for t in times)

    def test_sources_drawn_from_population(self, generator):
        plan = generator.schedule([4, 9], duration=1000.0, interval=10.0)
        assert {source for _, source in plan} <= {4, 9}

    def test_invalid_parameters_rejected(self, generator):
        with pytest.raises(ConfigurationError):
            generator.schedule([], duration=100.0, interval=10.0)
        with pytest.raises(ConfigurationError):
            generator.schedule([0], duration=0.0, interval=10.0)
        with pytest.raises(ConfigurationError):
            generator.schedule([0], duration=100.0, interval=0.0)
